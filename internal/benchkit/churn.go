package benchkit

import (
	"testing"
	"time"

	"pdagent/internal/churnsim"
)

// G5 — scale and churn (DESIGN.md §8): the reconnect-storm scenario on
// virtual time, and the hub's marginal per-device memory cost. The
// scenario logic lives in internal/churnsim; these wrappers exist so
// cmd/bench and the -bench suite drive exactly the same code.

// ChurnStorm runs the canonical reconnect storm — the fleet's mail
// accumulates while it is dark, then every device reconnects inside a
// 30-second virtual window — and returns the full result. Seed-pinned:
// the drain percentiles are virtual-time quantities, deterministic
// across machines, which is what makes them safe to gate in CI.
func ChurnStorm(devices, members int) (*churnsim.StormResult, error) {
	return churnsim.ReconnectStorm(churnsim.StormConfig{
		Devices: devices,
		Members: members,
		Window:  30 * time.Second,
		Seed:    1,
	})
}

// ChurnStormBench adapts the storm to testing.B: each iteration replays
// the same seed-pinned storm, and the virtual drain percentiles are
// reported as custom metrics next to the wall-clock cost of simulating
// it.
func ChurnStormBench(b *testing.B, devices int) {
	b.ReportAllocs()
	b.ResetTimer()
	var last *churnsim.StormResult
	for i := 0; i < b.N; i++ {
		res, err := ChurnStorm(devices, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Drain.Quantile(0.50))/1e6, "vp50ms")
	b.ReportMetric(float64(last.Drain.Quantile(0.99))/1e6, "vp99ms")
	b.ReportMetric(float64(last.Drain.Quantile(0.999))/1e6, "vp999ms")
}

// IdleDeviceBytes is the marginal live-heap cost of a fresh idle
// device (Touch + parked long-poll, no mail ever).
func IdleDeviceBytes(devices int) (float64, error) {
	return churnsim.IdleDeviceBytes(devices)
}

// DrainedDeviceBytes is the steady-state live-heap cost of a device
// that received and acknowledged `history` entries and now sits idle,
// after dedup aging has run.
func DrainedDeviceBytes(devices, history int) (float64, error) {
	return churnsim.DrainedDeviceBytes(devices, history)
}

// IdleSweepDuration times one SweepExpired pass over n idle mailboxes
// with nothing to reclaim (the dirty set makes it O(0) regardless of n).
func IdleSweepDuration(devices int) (time.Duration, error) {
	return churnsim.IdleSweepDuration(devices)
}

package benchkit

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"

	"pdagent/internal/cluster"
	"pdagent/internal/compress"
	"pdagent/internal/gateway"
	"pdagent/internal/netsim"
	"pdagent/internal/pisec"
	"pdagent/internal/transport"
	"pdagent/internal/wire"
)

// G3 — gateway federation benchmarks. The drivers build an n-member
// clustered middle tier over the simulated wired fabric and measure
// the dispatch pipeline end to end: ClusterDispatch for aggregate
// throughput (parallel), ClusterJourney for complete dispatch→result
// latency including cross-member forwarding and the result relay.

// benchOwners spreads subscription keys over the ring so every member
// owns a share.
const benchOwners = 64

// benchCluster is an n-member federation wired for benchmarking.
type benchCluster struct {
	net      *netsim.Network
	queue    *netsim.Queue
	gws      []*gateway.Gateway
	nodes    []*cluster.Node
	handlers []transport.Handler
	// homeIdx maps each bench owner to the member index owning its
	// subscription key (the routed client's placement table).
	homeIdx []int
	key     string
}

// newBenchCluster builds n federated gateways sharing one RSA key and
// one program cache, with the echo package and every bench owner's
// secret registered fleet-wide (the edge does the §3.2 security check
// wherever the dispatch lands). serial=true wires the embedded MAS
// spawns through a drainable queue (ClusterJourney); serial=false
// drops agent execution (ClusterDispatch measures the gateway
// pipeline, like DispatchE2E).
func newBenchCluster(n int, serial bool) (*benchCluster, error) {
	kp, err := keyPair()
	if err != nil {
		return nil, err
	}
	c := &benchCluster{net: netsim.New(1), queue: &netsim.Queue{}}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("gw-%d", i)
	}
	spawn := func(func()) {}
	if serial {
		spawn = c.queue.Go
	}
	for _, addr := range addrs {
		node := cluster.NewNode(cluster.Config{
			Self:           addr,
			Seeds:          addrs,
			Transport:      c.net.Transport(netsim.ZoneWired),
			Secret:         "bench-cluster-secret",
			NoLocationPush: true, // isolate forwarding cost; piggyback still replicates
		})
		gw, err := gateway.New(gateway.Config{
			Addr:      addr,
			KeyPair:   kp,
			Transport: c.net.Transport(netsim.ZoneWired),
			Spawn:     spawn,
			Cluster:   node,
		})
		if err != nil {
			return nil, err
		}
		if err := gw.AddCodePackage(&wire.CodePackage{
			CodeID: "echo", Name: "Echo", Version: "1", Source: EchoSource,
		}); err != nil {
			return nil, err
		}
		c.net.AddHost(addr, netsim.ZoneWired, gw.Handler())
		c.gws = append(c.gws, gw)
		c.nodes = append(c.nodes, node)
		c.handlers = append(c.handlers, gw.Handler())
	}
	secret := []byte("bench-secret")
	c.key = pisec.DispatchKey("echo", secret)
	c.homeIdx = make([]int, benchOwners)
	for o := 0; o < benchOwners; o++ {
		owner := benchOwner(o)
		for _, gw := range c.gws {
			gw.Registry().SetSecret("echo", owner, secret)
		}
		home := c.nodes[0].Home(cluster.SubscriptionKey("echo", owner))
		for i, addr := range addrs {
			if addr == home {
				c.homeIdx[o] = i
			}
		}
	}
	return c, nil
}

func (c *benchCluster) close() {
	for _, gw := range c.gws {
		gw.Close()
	}
}

func benchOwner(o int) string { return "dev-" + strconv.Itoa(o) }

// appendBenchPI packs an echo PI for one owner with a unique nonce
// into dst (unsealed, like DispatchE2E — G3 measures routing, not RSA).
func (c *benchCluster) appendBenchPI(dst []byte, owner string, n uint64) ([]byte, error) {
	var nonce [24]byte
	nb := strconv.AppendUint(append(nonce[:0], 'n', '-'), n, 10)
	pi := &wire.PackedInformation{
		CodeID:      "echo",
		DispatchKey: c.key,
		Owner:       owner,
		Nonce:       string(nb),
		Source:      EchoSource,
	}
	return wire.AppendPack(dst, pi, compress.LZSS, nil)
}

// ClusterDispatch measures aggregate dispatch throughput over an
// n-member federation in parallel. routed=true models devices that
// probed the live directory and upload to their key's home member
// (every dispatch is admitted where it lands — the fleet's aggregate
// fast path, which is what must scale with members). routed=false
// sprays members round-robin, so most dispatches pay a cross-member
// forward hop — the mis-homed worst case.
func ClusterDispatch(b *testing.B, nGateways int, routed bool) {
	c, err := newBenchCluster(nGateways, false)
	if err != nil {
		b.Fatal(err)
	}
	defer c.close()
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var body []byte
		for pb.Next() {
			n := seq.Add(1)
			o := int(n) % benchOwners
			var err error
			body, err = c.appendBenchPI(body[:0], benchOwner(o), n)
			if err != nil {
				panic(err)
			}
			idx := c.homeIdx[o]
			if !routed {
				idx = int(n) % len(c.handlers)
			}
			resp := c.handlers[idx].Serve(context.Background(), &transport.Request{
				Path: "/pdagent/dispatch", Body: body,
			})
			if !resp.IsOK() {
				panic(fmt.Sprintf("dispatch: %d %s", resp.Status, resp.Text()))
			}
		}
	})
}

// ClusterJourney measures one complete dispatch→result round trip:
// upload at an edge member, agent execution at the home member's MAS,
// result relay back to the edge, result download from the edge.
// forwarded=false picks an edge that IS the home (single-member fast
// path); forwarded=true always uploads at a mis-homed edge, adding the
// forward and relay hops.
func ClusterJourney(b *testing.B, nGateways int, forwarded bool) {
	c, err := newBenchCluster(nGateways, true)
	if err != nil {
		b.Fatal(err)
	}
	defer c.close()
	// Pick an owner + edge pair with the wanted homing relationship.
	owner, edge := -1, -1
	for o := 0; o < benchOwners && owner < 0; o++ {
		for i := range c.handlers {
			if (c.homeIdx[o] == i) != forwarded {
				owner, edge = o, i
				break
			}
		}
	}
	if owner < 0 {
		b.Fatal("no owner/edge pair with the requested homing")
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var body []byte
	for i := 0; i < b.N; i++ {
		body, err = c.appendBenchPI(body[:0], benchOwner(owner), uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		resp := c.handlers[edge].Serve(ctx, &transport.Request{Path: "/pdagent/dispatch", Body: body})
		if !resp.IsOK() {
			b.Fatalf("dispatch: %d %s", resp.Status, resp.Text())
		}
		agentID := resp.GetHeader("agent")
		c.queue.Drain() // the agent journey, incl. the result relay
		rreq := &transport.Request{Path: "/pdagent/result"}
		rreq.SetHeader("agent", agentID)
		rresp := c.handlers[edge].Serve(ctx, rreq)
		if !rresp.IsOK() {
			b.Fatalf("result at edge: %d %s", rresp.Status, rresp.Text())
		}
	}
}

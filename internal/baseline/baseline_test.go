package baseline

import (
	"context"
	"strings"
	"testing"
	"time"

	"pdagent/internal/netsim"
	"pdagent/internal/services"
	"pdagent/internal/transport"
)

func setup(t *testing.T) (*netsim.Network, *services.Bank) {
	t.Helper()
	net := netsim.New(9)
	net.SetLinkBoth(netsim.ZoneWireless, netsim.ZoneWired, netsim.Link{Latency: 100 * time.Millisecond})
	bank := services.NewBank("bank-a", map[string]int64{"alice": 1000, "bob": 0})
	net.AddHost("web-bank-a", netsim.ZoneWired, NewServer(bank).Handler())
	return net, bank
}

func txns(n int) []Transaction {
	out := make([]Transaction, n)
	for i := range out {
		out[i] = Transaction{Bank: "web-bank-a", From: "alice", To: "bob", Amount: 10}
	}
	return out
}

func TestClientServerSession(t *testing.T) {
	net, bank := setup(t)
	client := &Client{Transport: net.Transport(netsim.ZoneWireless)}
	clock := netsim.NewClock()
	ctx := netsim.WithClock(context.Background(), clock)

	ids, err := client.RunClientServer(ctx, txns(5))
	if err != nil {
		t.Fatalf("RunClientServer: %v", err)
	}
	if len(ids) != 5 {
		t.Fatalf("ids = %v", ids)
	}
	for _, id := range ids {
		if !strings.HasPrefix(id, "bank-a-tx-") {
			t.Fatalf("txid = %q", id)
		}
	}
	if bal, _ := bank.Balance("bob"); bal != 50 {
		t.Fatalf("bob = %d", bal)
	}
	// Login + 5 round trips at 200 ms each.
	if clock.Now() != 6*200*time.Millisecond {
		t.Fatalf("online time = %v", clock.Now())
	}
}

func TestWebBasedSessionCostsMore(t *testing.T) {
	netCS, _ := setup(t)
	clockCS := netsim.NewClock()
	client := &Client{Transport: netCS.Transport(netsim.ZoneWireless)}
	if _, err := client.RunClientServer(netsim.WithClock(context.Background(), clockCS), txns(3)); err != nil {
		t.Fatal(err)
	}

	netWeb, bank := setup(t)
	clockWeb := netsim.NewClock()
	clientWeb := &Client{Transport: netWeb.Transport(netsim.ZoneWireless)}
	ids, err := clientWeb.RunWebBased(netsim.WithClock(context.Background(), clockWeb), txns(3))
	if err != nil {
		t.Fatalf("RunWebBased: %v", err)
	}
	if len(ids) != 3 || ids[0] == "" {
		t.Fatalf("ids = %v", ids)
	}
	if bal, _ := bank.Balance("bob"); bal != 30 {
		t.Fatalf("bob = %d", bal)
	}
	// Web adds page loads: strictly more online time for the same work.
	if clockWeb.Now() <= clockCS.Now() {
		t.Fatalf("web %v <= client-server %v", clockWeb.Now(), clockCS.Now())
	}
}

func TestOnlineTimeGrowsLinearly(t *testing.T) {
	measure := func(n int) time.Duration {
		net, _ := setup(t)
		clock := netsim.NewClock()
		client := &Client{Transport: net.Transport(netsim.ZoneWireless)}
		if _, err := client.RunClientServer(netsim.WithClock(context.Background(), clock), txns(n)); err != nil {
			t.Fatal(err)
		}
		return clock.Now()
	}
	t2, t4, t8 := measure(2), measure(4), measure(8)
	// Slope: doubling transactions roughly doubles the marginal time.
	if t4 <= t2 || t8 <= t4 {
		t.Fatalf("not increasing: %v %v %v", t2, t4, t8)
	}
	if (t8-t4)-(t4-t2) > (t4-t2)/2+(t4-t2) { // allow slack, but must be ~linear
		t.Fatalf("not linear: %v %v %v", t2, t4, t8)
	}
}

func TestBaselineErrors(t *testing.T) {
	net, _ := setup(t)
	client := &Client{Transport: net.Transport(netsim.ZoneWireless)}
	ctx := context.Background()

	// Insufficient funds propagates as an error mid-session.
	bad := []Transaction{{Bank: "web-bank-a", From: "alice", To: "bob", Amount: 99999}}
	if _, err := client.RunClientServer(ctx, bad); err == nil {
		t.Fatal("overdraft session succeeded")
	}
	// Unknown host.
	ghost := []Transaction{{Bank: "nowhere", From: "alice", To: "bob", Amount: 1}}
	if _, err := client.RunClientServer(ctx, ghost); err == nil {
		t.Fatal("unknown host session succeeded")
	}
	if _, err := client.RunWebBased(ctx, ghost); err == nil {
		t.Fatal("unknown host web session succeeded")
	}
	// Empty session is a no-op.
	ids, err := client.RunClientServer(ctx, nil)
	if err != nil || len(ids) != 0 {
		t.Fatalf("empty session: %v %v", ids, err)
	}
}

func TestHandlerValidation(t *testing.T) {
	net, _ := setup(t)
	tr := net.Transport(netsim.ZoneWireless)
	ctx := context.Background()

	resp, err := tr.RoundTrip(ctx, "web-bank-a", &transport.Request{Path: "/cs/transfer", Body: []byte("junk")})
	if err != nil || resp.Status != transport.StatusBadRequest {
		t.Fatalf("junk body: %v %v", resp, err)
	}
	resp, err = tr.RoundTrip(ctx, "web-bank-a", &transport.Request{Path: "/cs/login"})
	if err != nil || resp.Status != transport.StatusUnauthorized {
		t.Fatalf("login without user: %v %v", resp, err)
	}
	req := &transport.Request{Path: "/cs/balance"}
	req.SetHeader("account", "alice")
	resp, err = tr.RoundTrip(ctx, "web-bank-a", req)
	if err != nil || !resp.IsOK() || !strings.Contains(resp.Text(), "1000") {
		t.Fatalf("balance: %v %v", resp, err)
	}
	req2 := &transport.Request{Path: "/cs/balance"}
	req2.SetHeader("account", "ghost")
	resp, _ = tr.RoundTrip(ctx, "web-bank-a", req2)
	if resp.Status != transport.StatusNotFound {
		t.Fatalf("ghost balance: %d", resp.Status)
	}
}

// Package baseline implements the two comparison approaches of the
// paper's evaluation (Figure 1, Figure 12):
//
//   - the Client-Server model, where the mobile client "has to keep
//     the connection with the wired network until the service is
//     completed": every transaction is a request/response pair over
//     the wireless link against a bank-facing web server;
//   - the Web-based approach, "accessing Internet services through a
//     web browser": each transaction additionally fetches form and
//     confirmation pages, so the per-transaction payload is two HTML
//     pages rather than a compact request.
//
// Both share the same bank service state as the mobile-agent path, so
// every approach performs identical work — only the communication
// pattern differs, which is exactly what Figures 12 and 13 measure.
package baseline

import (
	"context"
	"fmt"
	"strings"

	"pdagent/internal/kxml"
	"pdagent/internal/services"
	"pdagent/internal/transport"
)

// Server is the bank-facing web server of the baseline approaches
// (one per bank site, alongside the MAS).
type Server struct {
	bank *services.Bank
	mux  *transport.Mux
}

// htmlPadding approximates the markup overhead of a browser page
// versus a compact client-server response. 2004-era banking pages ran
// a few kilobytes.
const htmlPadding = 4096

// NewServer wraps a bank with client-server and web endpoints.
func NewServer(bank *services.Bank) *Server {
	s := &Server{bank: bank}
	m := transport.NewMux()
	m.HandleFunc("/cs/login", s.handleLogin)
	m.HandleFunc("/cs/transfer", s.handleTransfer)
	m.HandleFunc("/cs/balance", s.handleBalance)
	m.HandleFunc("/web/login", s.handleWebLogin)
	m.HandleFunc("/web/form", s.handleForm)
	m.HandleFunc("/web/transfer", s.handleWebTransfer)
	s.mux = m
	return s
}

// handleLogin establishes a session (the paper's Figure 11a login
// screen); the compact variant for the client-server model.
func (s *Server) handleLogin(_ context.Context, req *transport.Request) *transport.Response {
	user := req.GetHeader("user")
	if user == "" {
		return transport.Errorf(transport.StatusUnauthorized, "missing user")
	}
	out := kxml.NewElement("session").SetAttr("token", "sess-"+user)
	return transport.OK(out.EncodeDocument())
}

// handleWebLogin serves the browser login page.
func (s *Server) handleWebLogin(_ context.Context, _ *transport.Request) *transport.Response {
	page := "<html><body><form action=\"/web/login\">" +
		strings.Repeat("<!-- login page boilerplate -->", htmlPadding/32) +
		"</form></body></html>"
	return transport.OK([]byte(page))
}

// Handler returns the transport handler for this server.
func (s *Server) Handler() transport.Handler { return s.mux }

// parseTransfer reads the compact XML request body.
func parseTransfer(body []byte) (from, to string, amount int64, err error) {
	root, err := kxml.ParseBytes(body)
	if err != nil {
		return "", "", 0, err
	}
	if root.Name != "transfer" {
		return "", "", 0, fmt.Errorf("baseline: unexpected root <%s>", root.Name)
	}
	from = root.AttrDefault("from", "")
	to = root.AttrDefault("to", "")
	var amt int64
	if _, err := fmt.Sscanf(root.AttrDefault("amount", ""), "%d", &amt); err != nil {
		return "", "", 0, fmt.Errorf("baseline: bad amount: %w", err)
	}
	return from, to, amt, nil
}

func (s *Server) handleTransfer(_ context.Context, req *transport.Request) *transport.Response {
	from, to, amount, err := parseTransfer(req.Body)
	if err != nil {
		return transport.Errorf(transport.StatusBadRequest, "%v", err)
	}
	txid, err := s.bank.Transfer(from, to, amount)
	if err != nil {
		return transport.Errorf(transport.StatusConflict, "%v", err)
	}
	out := kxml.NewElement("receipt").SetAttr("txid", txid)
	return transport.OK(out.EncodeDocument())
}

func (s *Server) handleBalance(_ context.Context, req *transport.Request) *transport.Response {
	account := req.GetHeader("account")
	bal, ok := s.bank.Balance(account)
	if !ok {
		return transport.Errorf(transport.StatusNotFound, "no account %q", account)
	}
	out := kxml.NewElement("balance").SetAttr("amount", fmt.Sprint(bal))
	return transport.OK(out.EncodeDocument())
}

// handleForm serves the transaction form page the browser must load
// before each submission.
func (s *Server) handleForm(_ context.Context, _ *transport.Request) *transport.Response {
	page := "<html><body><form action=\"/web/transfer\">" +
		strings.Repeat("<!-- styling and boilerplate -->", htmlPadding/32) +
		"</form></body></html>"
	return transport.OK([]byte(page))
}

// handleWebTransfer executes the transaction and returns a full
// confirmation page.
func (s *Server) handleWebTransfer(_ context.Context, req *transport.Request) *transport.Response {
	from, to, amount, err := parseTransfer(req.Body)
	if err != nil {
		return transport.Errorf(transport.StatusBadRequest, "%v", err)
	}
	txid, err := s.bank.Transfer(from, to, amount)
	if err != nil {
		return transport.Errorf(transport.StatusConflict, "%v", err)
	}
	page := "<html><body><h1>Transaction complete</h1><p>" + txid + "</p>" +
		strings.Repeat("<!-- confirmation boilerplate -->", htmlPadding/32) +
		"</body></html>"
	return transport.OK([]byte(page))
}

// Transaction describes one transfer request in a baseline session.
type Transaction struct {
	Bank   string // bank server address
	From   string
	To     string
	Amount int64
}

func transferBody(t Transaction) []byte {
	n := kxml.NewElement("transfer")
	n.SetAttr("from", t.From)
	n.SetAttr("to", t.To)
	n.SetAttr("amount", fmt.Sprint(t.Amount))
	return n.EncodeDocument()
}

// Client drives baseline sessions from the device side.
type Client struct {
	// Transport is the wireless-side round-tripper.
	Transport transport.RoundTripper
}

// RunClientServer performs the Client-Server session: the device stays
// online for the whole loop — a login exchange, then one
// request/response per transaction. It returns the transaction ids.
func (c *Client) RunClientServer(ctx context.Context, txns []Transaction) ([]string, error) {
	ids := make([]string, 0, len(txns))
	if len(txns) > 0 {
		login := &transport.Request{Path: "/cs/login"}
		login.SetHeader("user", txns[0].From)
		resp, err := c.Transport.RoundTrip(ctx, txns[0].Bank, login)
		if err != nil {
			return nil, fmt.Errorf("baseline: login: %w", err)
		}
		if !resp.IsOK() {
			return nil, fmt.Errorf("baseline: login: %w", resp.Err())
		}
	}
	for i, t := range txns {
		resp, err := c.Transport.RoundTrip(ctx, t.Bank, &transport.Request{
			Path: "/cs/transfer",
			Body: transferBody(t),
		})
		if err != nil {
			return ids, fmt.Errorf("baseline: transaction %d: %w", i, err)
		}
		if !resp.IsOK() {
			return ids, fmt.Errorf("baseline: transaction %d: %w", i, resp.Err())
		}
		root, err := kxml.ParseBytes(resp.Body)
		if err != nil {
			return ids, err
		}
		ids = append(ids, root.AttrDefault("txid", ""))
	}
	return ids, nil
}

// RunWebBased performs the browser session: the browser loads the
// login page, then for each transaction loads the form page, submits
// it and receives the confirmation page.
func (c *Client) RunWebBased(ctx context.Context, txns []Transaction) ([]string, error) {
	ids := make([]string, 0, len(txns))
	if len(txns) > 0 {
		if _, err := c.Transport.RoundTrip(ctx, txns[0].Bank, &transport.Request{Path: "/web/login"}); err != nil {
			return nil, fmt.Errorf("baseline: login page: %w", err)
		}
	}
	for i, t := range txns {
		if _, err := c.Transport.RoundTrip(ctx, t.Bank, &transport.Request{Path: "/web/form"}); err != nil {
			return ids, fmt.Errorf("baseline: form load %d: %w", i, err)
		}
		resp, err := c.Transport.RoundTrip(ctx, t.Bank, &transport.Request{
			Path: "/web/transfer",
			Body: transferBody(t),
		})
		if err != nil {
			return ids, fmt.Errorf("baseline: transaction %d: %w", i, err)
		}
		if !resp.IsOK() {
			return ids, fmt.Errorf("baseline: transaction %d: %w", i, resp.Err())
		}
		// Extract the txid from the confirmation page.
		body := resp.Text()
		start := strings.Index(body, "<p>")
		end := strings.Index(body, "</p>")
		if start >= 0 && end > start {
			ids = append(ids, body[start+3:end])
		} else {
			ids = append(ids, "")
		}
	}
	return ids, nil
}

// Package metrics is PDAgent's zero-dependency observability kit:
// atomic counters and gauges, a concurrent log-linear latency
// histogram (the same bucket geometry as churnsim's, §8), per-member
// trace-span rings for itinerary reconstruction, and a leveled
// component-tagged logger. A Registry renders everything in Prometheus
// text exposition format for the `/metrics` endpoint both daemons
// mount (DESIGN.md §11).
//
// The kit is built for hot paths: counters and gauges are single
// atomics, histograms record into a fixed bucket array without
// allocating, and gauge *functions* defer all computation to scrape
// time — registering one costs nothing per operation, which is how
// the dispatch path stays at its 39 allocs/op budget while fully
// instrumented.
package metrics

import (
	"context"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"pdagent/internal/transport"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// CounterVec is a family of counters split by one label (e.g. a
// per-tenant dispatch count). With resolves a label value to its
// counter once; hot paths cache the returned *Counter handle so the
// per-operation cost is the same single atomic as an unlabeled
// counter.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the counter for one label value, creating it if
// needed. Cache the handle on hot paths.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// snapshot returns the label values sorted, for a stable scrape.
func (v *CounterVec) snapshot() ([]string, map[string]*Counter) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.m))
	m := make(map[string]*Counter, len(v.m))
	for k, c := range v.m {
		keys = append(keys, k)
		m[k] = c
	}
	sort.Strings(keys)
	return keys, m
}

// metricKind discriminates what a registered name renders as.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindCounterVec
	kindGaugeVecFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeFunc, kindGaugeVecFunc:
		return "gauge"
	default:
		return "summary"
	}
}

type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	cvec    *CounterVec
	vecFn   func() map[string]float64
	label   string
}

// Registry holds named metrics and renders them as Prometheus text.
// Registration is lazy get-or-create: asking for an existing name of
// the same kind returns the existing instrument, so instrumentation
// sites do not need to coordinate. Registering an existing name as a
// different kind panics — that is a programming error, and silently
// splitting a name across kinds would corrupt the exposition.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// lookup returns the metric registered under name, creating it with
// mk if absent. The kind must match an existing registration.
func (r *Registry) lookup(name string, kind metricKind, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic("metrics: " + name + " registered as both " + m.kind.String() + " and " + kind.String())
		}
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, kindCounter, func() *metric {
		return &metric{name: name, help: help, kind: kindCounter, counter: &Counter{}}
	}).counter
}

// Gauge returns the gauge registered under name, creating it if
// needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, kindGauge, func() *metric {
		return &metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the instrumented code pays nothing per operation. Re-register
// under the same name replaces the function (the latest closure wins,
// so a rebuilt component re-pointing its gauges is harmless).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.lookup(name, kindGaugeFunc, func() *metric {
		return &metric{name: name, help: help, kind: kindGaugeFunc}
	})
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// CounterVec returns the one-label counter family registered under
// name, creating it if needed. All registrations of a name must use
// the same label key.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := r.lookup(name, kindCounterVec, func() *metric {
		return &metric{name: name, help: help, kind: kindCounterVec, label: label, cvec: &CounterVec{m: map[string]*Counter{}}}
	})
	if m.label != label {
		panic("metrics: " + name + " registered with labels " + m.label + " and " + label)
	}
	return m.cvec
}

// GaugeVecFunc registers a one-label gauge family computed by fn at
// scrape time: fn returns label value -> gauge value. Like GaugeFunc,
// re-registering replaces the callback.
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	m := r.lookup(name, kindGaugeVecFunc, func() *metric {
		return &metric{name: name, help: help, kind: kindGaugeVecFunc, label: label}
	})
	if m.label != label {
		panic("metrics: " + name + " registered with labels " + m.label + " and " + label)
	}
	r.mu.Lock()
	m.vecFn = fn
	r.mu.Unlock()
}

// Histogram returns the latency histogram registered under name,
// creating it if needed. It renders as a Prometheus summary
// (quantiles + _sum + _count) in microseconds.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.lookup(name, kindHistogram, func() *metric {
		return &metric{name: name, help: help, kind: kindHistogram, hist: &Histogram{}}
	}).hist
}

// summaryQuantiles are the quantile series every histogram exports.
var summaryQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.9", 0.90},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// AppendPrometheus renders every registered metric in Prometheus text
// exposition format, sorted by name for a stable scrape. Values are
// read with atomic loads — scraping concurrent updates is safe, each
// sample is merely from "around now" rather than one instant.
func (r *Registry) AppendPrometheus(dst []byte) []byte {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	for _, m := range ms {
		dst = append(dst, "# HELP "...)
		dst = append(dst, m.name...)
		dst = append(dst, ' ')
		dst = append(dst, m.help...)
		dst = append(dst, "\n# TYPE "...)
		dst = append(dst, m.name...)
		dst = append(dst, ' ')
		dst = append(dst, m.kind.String()...)
		dst = append(dst, '\n')
		switch m.kind {
		case kindCounter:
			dst = append(dst, m.name...)
			dst = append(dst, ' ')
			dst = strconv.AppendUint(dst, m.counter.Value(), 10)
			dst = append(dst, '\n')
		case kindGauge:
			dst = append(dst, m.name...)
			dst = append(dst, ' ')
			dst = strconv.AppendInt(dst, m.gauge.Value(), 10)
			dst = append(dst, '\n')
		case kindGaugeFunc:
			r.mu.Lock()
			fn := m.fn
			r.mu.Unlock()
			var v float64
			if fn != nil {
				v = fn()
			}
			// The exposition format forbids NaN for anything a gate
			// might read; a broken callback renders as 0, not NaN.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			dst = append(dst, m.name...)
			dst = append(dst, ' ')
			dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
			dst = append(dst, '\n')
		case kindCounterVec:
			keys, vals := m.cvec.snapshot()
			for _, k := range keys {
				dst = appendLabeled(dst, m.name, m.label, k)
				dst = strconv.AppendUint(dst, vals[k].Value(), 10)
				dst = append(dst, '\n')
			}
		case kindGaugeVecFunc:
			r.mu.Lock()
			fn := m.vecFn
			r.mu.Unlock()
			if fn == nil {
				break
			}
			vals := fn()
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				v := vals[k]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				dst = appendLabeled(dst, m.name, m.label, k)
				dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
				dst = append(dst, '\n')
			}
		case kindHistogram:
			count, sum := m.hist.Count(), m.hist.SumUS()
			for _, sq := range summaryQuantiles {
				dst = append(dst, m.name...)
				dst = append(dst, `{quantile="`...)
				dst = append(dst, sq.label...)
				dst = append(dst, `"} `...)
				dst = strconv.AppendUint(dst, m.hist.Quantile(sq.q), 10)
				dst = append(dst, '\n')
			}
			dst = append(dst, m.name...)
			dst = append(dst, "_sum "...)
			dst = strconv.AppendUint(dst, sum, 10)
			dst = append(dst, '\n')
			dst = append(dst, m.name...)
			dst = append(dst, "_count "...)
			dst = strconv.AppendUint(dst, count, 10)
			dst = append(dst, '\n')
		}
	}
	return dst
}

// appendLabeled writes `name{label="value"} ` with the label value
// escaped per the exposition format (backslash, quote, newline).
func appendLabeled(dst []byte, name, label, value string) []byte {
	dst = append(dst, name...)
	dst = append(dst, '{')
	dst = append(dst, label...)
	dst = append(dst, `="`...)
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '\\':
			dst = append(dst, `\\`...)
		case '"':
			dst = append(dst, `\"`...)
		case '\n':
			dst = append(dst, `\n`...)
		default:
			dst = append(dst, c)
		}
	}
	dst = append(dst, `"} `...)
	return dst
}

// Handler returns a transport handler serving the registry as
// Prometheus text (the `/metrics` endpoint).
func (r *Registry) Handler() transport.Handler {
	return transport.HandlerFunc(func(context.Context, *transport.Request) *transport.Response {
		resp := transport.OK(r.AppendPrometheus(nil))
		resp.SetHeader("content-type", "text/plain; version=0.0.4; charset=utf-8")
		return resp
	})
}

package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a concurrent log-linear latency histogram in
// microseconds. It uses the same bucket geometry as churnsim's
// single-threaded histogram (§8): exact below 32µs, then 32 sub-
// buckets per power of two, bounding quantile error to ~3%. Unlike
// churnsim's, the bucket array is fixed-size atomics — Observe is
// lock-free, allocation-free, and safe to call concurrently with
// scrapes, which is what the dispatch path needs.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total µs observed
	max     atomic.Uint64 // largest µs observed
	buckets [histBuckets]atomic.Uint64
}

// histSubBits gives 2^5 = 32 sub-buckets per power of two.
const histSubBits = 5

// histBuckets is bucketOf(math.MaxUint64) + 1: (64-5)<<5 + 31 + 1.
const histBuckets = (64-histSubBits)<<histSubBits + (1 << histSubBits)

// bucketOf maps a microsecond value to its bucket index.
func bucketOf(us uint64) int {
	if us < 1<<histSubBits {
		return int(us)
	}
	k := bits.Len64(us) - histSubBits
	return k<<histSubBits + int(us>>uint(k))
}

// bucketMid returns a representative value for a bucket.
func bucketMid(b int) uint64 {
	if b < 1<<histSubBits {
		return uint64(b)
	}
	k := uint(b >> histSubBits)
	sub := uint64(b & (1<<histSubBits - 1))
	return sub<<k + 1<<(k-1)
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.RecordUS(uint64(d / time.Microsecond))
}

// RecordUS records one microsecond value.
func (h *Histogram) RecordUS(us uint64) {
	h.buckets[bucketOf(us)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumUS returns the total of all observations in microseconds.
func (h *Histogram) SumUS() uint64 { return h.sum.Load() }

// MaxUS returns the largest observation in microseconds.
func (h *Histogram) MaxUS() uint64 { return h.max.Load() }

// Quantile returns the q-quantile (0 < q <= 1) in microseconds, 0 for
// an empty histogram. Concurrent observers may land between the count
// load and the bucket scan; the result is a sample from "around now".
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank >= total {
		// The top rank is the maximum itself — more precise than the
		// top occupied bucket's midpoint.
		return h.max.Load()
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			mid := bucketMid(i)
			if m := h.max.Load(); mid > m {
				// The top occupied bucket's midpoint can overshoot the
				// true maximum; never report a quantile above it.
				mid = m
			}
			return mid
		}
	}
	return h.max.Load()
}

// MeanUS returns the mean observation in microseconds.
func (h *Histogram) MeanUS() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

package metrics

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// loggerCore is the state shared by a logger family: the sink, the
// level, and the once-keys. Component loggers derived with With share
// one core, so a daemon sets the level in one place and "logged once"
// latches are global to the process, not per component.
type loggerCore struct {
	sink  func(format string, args ...any)
	level atomic.Int32

	mu   sync.Mutex
	once map[string]bool
}

// Logger is a leveled, component-tagged logger. Every line carries
// `[component] level:` so daemon logs are grep-able by subsystem —
// this is the one place the previously scattered ad-hoc log.Printf
// and "logged once" sites (gateway health gates, cluster fencing,
// repl degradation) now route through.
//
// A nil *Logger is valid and silent, so libraries can log
// unconditionally without nil checks at every site.
type Logger struct {
	component string
	core      *loggerCore
}

// NewLogger returns a logger tagged with component writing to sink
// (log.Printf when sink is nil), at LevelInfo.
func NewLogger(component string, sink func(format string, args ...any)) *Logger {
	if sink == nil {
		sink = log.Printf
	}
	core := &loggerCore{sink: sink, once: map[string]bool{}}
	core.level.Store(int32(LevelInfo))
	return &Logger{component: component, core: core}
}

// With returns a logger for another component sharing this logger's
// sink, level, and once-latches.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{component: component, core: l.core}
}

// SetLevel sets the minimum level emitted by the whole logger family.
func (l *Logger) SetLevel(v Level) {
	if l != nil {
		l.core.level.Store(int32(v))
	}
}

// Enabled reports whether lines at level v are emitted.
func (l *Logger) Enabled(v Level) bool {
	return l != nil && int32(v) >= l.core.level.Load()
}

func (l *Logger) emit(v Level, format string, args ...any) {
	if !l.Enabled(v) {
		return
	}
	l.core.sink("[%s] %s: %s", l.component, v, fmt.Sprintf(format, args...))
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.emit(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.emit(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.emit(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.emit(LevelError, format, args...) }

// Oncef logs at warn level the first time key is seen, then suppresses
// repeats until ResetOnce(key). It replaces the per-site atomic.Bool /
// sync.Once latches: a wedged store or a raised fence logs once, not
// once per request, and a recovery can re-arm the latch.
func (l *Logger) Oncef(key, format string, args ...any) {
	if l == nil {
		return
	}
	l.core.mu.Lock()
	seen := l.core.once[key]
	if !seen {
		l.core.once[key] = true
	}
	l.core.mu.Unlock()
	if !seen {
		l.emit(LevelWarn, format, args...)
	}
}

// ResetOnce re-arms a Oncef key (e.g. the condition it reported has
// cleared). It reports whether the key had fired.
func (l *Logger) ResetOnce(key string) bool {
	if l == nil {
		return false
	}
	l.core.mu.Lock()
	seen := l.core.once[key]
	delete(l.core.once, key)
	l.core.mu.Unlock()
	return seen
}

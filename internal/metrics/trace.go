package metrics

import (
	"sync"
	"time"
)

// Span is one hop of an agent journey as seen by one member. The
// trace id is the agent id minted at dispatch (§11): it already rides
// every wire document on the journey's path — the dispatch response's
// "agent" header, the ATP image, the result document, the mailbox
// event id — so tracing adds no bytes to the protocol and no
// allocations to the hot path.
type Span struct {
	// Trace is the journey's trace id (the agent id).
	Trace string
	// Member is the member that recorded the span (gateway or MAS
	// host address).
	Member string
	// Op names the hop: dispatch, forward, admit, transfer-out,
	// transfer-in, deliver, result, relay-result, adopt-result,
	// mailbox, shed.
	Op string
	// Detail carries the op's object: a code id, a target address,
	// an origin member, an owner, a shed reason.
	Detail string
	// At is the wall clock at record time, unix nanoseconds.
	At int64
	// Seq orders spans recorded by the same member at the same
	// nanosecond.
	Seq uint64
}

// DefaultTraceCap is the span capacity of a ring when the caller does
// not choose one: 4096 spans ≈ a few hundred recent journeys.
const DefaultTraceCap = 4096

// TraceRing is a fixed-capacity ring of recent spans, one per member.
// Record copies value fields under a short mutex — no allocation, so
// hot paths (dispatch, transfer) can record unconditionally. When the
// ring wraps, the oldest spans fall off: tracing is an operational
// flight recorder, not an audit log.
type TraceRing struct {
	member string
	now    func() time.Time

	mu    sync.Mutex
	spans []Span
	n     uint64 // total spans ever recorded
}

// NewTraceRing returns a ring identified as member with the given
// span capacity (DefaultTraceCap if cap <= 0).
func NewTraceRing(member string, capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceRing{member: member, now: time.Now, spans: make([]Span, 0, capacity)}
}

// SetNow replaces the ring's clock (virtual-time tests).
func (r *TraceRing) SetNow(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Member returns the member name spans are recorded under.
func (r *TraceRing) Member() string { return r.member }

// Record appends one span. The strings are retained as-is (callers
// pass ids and addresses that already exist — never concatenate on a
// hot path).
func (r *TraceRing) Record(trace, op, detail string) {
	r.mu.Lock()
	sp := Span{
		Trace:  trace,
		Member: r.member,
		Op:     op,
		Detail: detail,
		At:     r.now().UnixNano(),
		Seq:    r.n,
	}
	if len(r.spans) < cap(r.spans) {
		r.spans = append(r.spans, sp)
	} else {
		r.spans[int(r.n)%cap(r.spans)] = sp
	}
	r.n++
	r.mu.Unlock()
}

// Spans returns this member's spans for a trace id, oldest first.
func (r *TraceRing) Spans(trace string) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	n := len(r.spans)
	start := 0
	if uint64(n) == r.n || n == 0 {
		// Not wrapped: spans[0] is the oldest.
	} else {
		start = int(r.n) % cap(r.spans)
	}
	for i := 0; i < n; i++ {
		sp := r.spans[(start+i)%n]
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	return out
}

// Total returns how many spans were ever recorded; Dropped how many
// fell off the ring. Both feed scrape-time gauges.
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns the number of spans evicted by ring wrap-around.
func (r *TraceRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n - uint64(len(r.spans))
}

package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Lazy registration from every goroutine must converge on
			// one instrument per name.
			c := r.Counter("pdagent_test_total", "test counter")
			g := r.Gauge("pdagent_test_gauge", "test gauge")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("pdagent_test_total", "").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("pdagent_test_gauge", "").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for us := uint64(1); us <= 10000; us++ {
		h.RecordUS(us)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.MaxUS() != 10000 {
		t.Fatalf("max = %d", h.MaxUS())
	}
	// The log-linear geometry bounds relative error to 1/2^histSubBits.
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := q * 10000
		if err := math.Abs(got-want) / want; err > 0.04 {
			t.Errorf("q%.3f = %.0f, want ~%.0f (err %.3f)", q, got, want, err)
		}
	}
	if h.Quantile(1) != 10000 {
		t.Errorf("q1 = %d, want max 10000", h.Quantile(1))
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 || empty.MeanUS() != 0 {
		t.Errorf("empty histogram quantile/mean not 0")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.Observe(1500 * time.Microsecond)
	h.Observe(-time.Second) // clamps to 0
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.SumUS() != 1500 {
		t.Fatalf("sum = %d", h.SumUS())
	}
}

func TestScrapeDuringUpdate(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pdagent_test_us", "test latency")
	c := r.Counter("pdagent_scrape_total", "test")
	r.GaugeFunc("pdagent_live", "live view", func() float64 { return float64(c.Value()) })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.RecordUS(seed*1000 + i%5000)
				c.Inc()
			}
		}(uint64(w))
	}
	for i := 0; i < 50; i++ {
		out := string(r.AppendPrometheus(nil))
		if strings.Contains(out, "NaN") {
			t.Fatalf("scrape contains NaN:\n%s", out)
		}
	}
	close(stop)
	wg.Wait()
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdagent_b_total", "b counter").Add(3)
	r.Gauge("pdagent_a_gauge", "a gauge").Set(-7)
	r.GaugeFunc("pdagent_c", "c func", func() float64 { return math.NaN() })
	h := r.Histogram("pdagent_d_us", "d latency")
	h.RecordUS(10)
	h.RecordUS(20)
	out := string(r.AppendPrometheus(nil))

	for _, want := range []string{
		"# TYPE pdagent_a_gauge gauge\npdagent_a_gauge -7\n",
		"# TYPE pdagent_b_total counter\npdagent_b_total 3\n",
		"# TYPE pdagent_c gauge\npdagent_c 0\n", // NaN renders as 0
		"# TYPE pdagent_d_us summary\n",
		"pdagent_d_us_sum 30\n",
		"pdagent_d_us_count 2\n",
		`pdagent_d_us{quantile="0.99"} 20`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// Sorted by name, each name typed exactly once.
	ia := strings.Index(out, "# TYPE pdagent_a_gauge")
	ib := strings.Index(out, "# TYPE pdagent_b_total")
	if ia > ib {
		t.Errorf("scrape not sorted by name")
	}
	if strings.Count(out, "# TYPE pdagent_b_total") != 1 {
		t.Errorf("duplicate TYPE lines")
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("pdagent_tenant_dispatch_total", "per-tenant dispatches", "tenant")
	vec.With("default").Add(5)
	vec.With("acme").Inc()
	// Re-registration returns the same family; handles stay live.
	if r.CounterVec("pdagent_tenant_dispatch_total", "per-tenant dispatches", "tenant").With("acme") != vec.With("acme") {
		t.Fatal("re-registration built a new family")
	}
	r.GaugeVecFunc("pdagent_tenant_inflight", "per-tenant in-flight", "tenant", func() map[string]float64 {
		return map[string]float64{"acme": 2, "esc\"ape\\me": math.NaN()}
	})
	out := string(r.AppendPrometheus(nil))

	for _, want := range []string{
		"# TYPE pdagent_tenant_dispatch_total counter\n",
		"pdagent_tenant_dispatch_total{tenant=\"acme\"} 1\n",
		"pdagent_tenant_dispatch_total{tenant=\"default\"} 5\n",
		"# TYPE pdagent_tenant_inflight gauge\n",
		"pdagent_tenant_inflight{tenant=\"acme\"} 2\n",
		`pdagent_tenant_inflight{tenant="esc\"ape\\me"} 0` + "\n", // NaN renders 0, value escaped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE per family, label rows sorted under it.
	if strings.Count(out, "# TYPE pdagent_tenant_dispatch_total") != 1 {
		t.Errorf("duplicate TYPE lines for labeled family:\n%s", out)
	}
	if strings.Index(out, `{tenant="acme"} 1`) > strings.Index(out, `{tenant="default"} 5`) {
		t.Errorf("label rows not sorted:\n%s", out)
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("pdagent_vec_total", "vec", "tenant")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := vec.With("t" + strconv.Itoa(w%2))
			for i := 0; i < 1000; i++ {
				h.Inc()
				vec.With("t2").Inc()
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		_ = r.AppendPrometheus(nil)
	}
	wg.Wait()
	if got := vec.With("t2").Value(); got != 8000 {
		t.Fatalf("t2 = %d, want 8000", got)
	}
	if got := vec.With("t0").Value() + vec.With("t1").Value(); got != 8000 {
		t.Fatalf("t0+t1 = %d, want 8000", got)
	}
}

func TestVecLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("pdagent_y", "y", "tenant")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a vec with a different label did not panic")
		}
	}()
	r.CounterVec("pdagent_y", "y", "member")
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdagent_x", "x")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("pdagent_x", "x")
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing("gw-0", 4)
	ring.Record("ag-1", "dispatch", "echo")
	ring.Record("ag-2", "dispatch", "echo")
	ring.Record("ag-1", "admit", "echo")
	got := ring.Spans("ag-1")
	if len(got) != 2 || got[0].Op != "dispatch" || got[1].Op != "admit" {
		t.Fatalf("spans = %+v", got)
	}
	if got[0].Member != "gw-0" {
		t.Fatalf("member = %q", got[0].Member)
	}
	// Wrap: 4-capacity ring drops the oldest spans.
	for i := 0; i < 6; i++ {
		ring.Record("ag-3", "hop", "")
	}
	if n := len(ring.Spans("ag-3")); n != 4 {
		t.Fatalf("after wrap: %d spans, want 4", n)
	}
	if ring.Spans("ag-1") != nil {
		t.Fatalf("wrapped-out trace still visible")
	}
	if ring.Total() != 9 || ring.Dropped() != 5 {
		t.Fatalf("total=%d dropped=%d", ring.Total(), ring.Dropped())
	}
	// Wrapped rings keep spans oldest-first.
	sp := ring.Spans("ag-3")
	for i := 1; i < len(sp); i++ {
		if sp[i].Seq <= sp[i-1].Seq {
			t.Fatalf("spans out of order: %+v", sp)
		}
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing("gw-0", 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("ag-%d", w)
			for i := 0; i < 200; i++ {
				ring.Record(id, "hop", "")
				ring.Spans(id)
			}
		}(w)
	}
	wg.Wait()
	if ring.Total() != 800 {
		t.Fatalf("total = %d", ring.Total())
	}
}

func TestLoggerLevelsAndOnce(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	sink := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	root := NewLogger("gateway", sink)
	root.Debugf("hidden at info level")
	root.Infof("hello %d", 1)
	repl := root.With("repl")
	repl.Warnf("degraded")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	if lines[0] != "[gateway] info: hello 1" || lines[1] != "[repl] warn: degraded" {
		t.Fatalf("lines = %q", lines)
	}
	root.SetLevel(LevelError)
	repl.Warnf("suppressed") // level shared via With
	if len(lines) != 2 {
		t.Fatalf("level not shared: %q", lines)
	}
	root.SetLevel(LevelDebug)

	for i := 0; i < 3; i++ {
		root.Oncef("wedged", "store wedged: %d", i)
	}
	if len(lines) != 3 || !strings.Contains(lines[2], "store wedged: 0") {
		t.Fatalf("Oncef fired %d times: %q", len(lines)-2, lines)
	}
	if !root.ResetOnce("wedged") {
		t.Fatalf("ResetOnce reported unfired")
	}
	root.Oncef("wedged", "store wedged again")
	if len(lines) != 4 {
		t.Fatalf("Oncef after reset did not fire: %q", lines)
	}

	// nil logger is silent, not a crash.
	var nilLog *Logger
	nilLog.Infof("no-op")
	nilLog.Oncef("k", "no-op")
	nilLog.With("x").Errorf("no-op")
}

func TestLoggerOnceConcurrent(t *testing.T) {
	var count int
	var mu sync.Mutex
	l := NewLogger("x", func(string, ...any) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Oncef("key", "once")
			}
		}()
	}
	wg.Wait()
	if count != 1 {
		t.Fatalf("Oncef fired %d times", count)
	}
}

// Package tenant is the multi-tenant control plane (DESIGN.md §12):
// tenant accounts with shared secrets and resource limits, a registry
// persisted over any rms.Store (so it rides the WAL and replication
// tiers like the agent journal does), per-tenant token-bucket rate
// limits, weighted-fair admission, and a usage ledger whose snapshots
// are gossiped on cluster heartbeats so quotas hold cluster-wide.
//
// The zero value of everything here is the single-tenant deployment:
// a gateway without an Admission layer behaves exactly as before, and
// the empty tenant id ("") names the default account every
// unclaimed subscription belongs to.
package tenant

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"

	"pdagent/internal/kxml"
	"pdagent/internal/rms"
)

// DefaultID is the account unclaimed subscriptions belong to. It is
// rendered as "default" in metric labels (metric label values must be
// non-empty) but stored as "" so single-tenant deployments never pay
// a map lookup keyed on a constant string.
const DefaultID = ""

// DefaultLabel is how the default tenant appears in metric labels and
// gossip rows.
const DefaultLabel = "default"

// Label renders a tenant id for metrics and wire rows.
func Label(id string) string {
	if id == DefaultID {
		return DefaultLabel
	}
	return id
}

// Limits bounds one tenant's resource consumption. Zero fields mean
// unlimited — the default tenant of a single-tenant deployment has no
// limits at all.
type Limits struct {
	// Weight is the tenant's share under weighted-fair admission
	// (default 1). A weight-4 tenant is protected up to 4× the
	// in-flight share of a weight-1 tenant when the shed watermark
	// trips.
	Weight int
	// RatePerSec refills the tenant's dispatch token bucket; 0 means
	// no rate limit.
	RatePerSec float64
	// Burst is the bucket depth (defaults to max(1, RatePerSec)).
	Burst int
	// MaxInFlight caps dispatched-but-unfinished agents, cluster-wide.
	MaxInFlight int64
	// MaxResidents caps agents resident on MAS servers, cluster-wide.
	MaxResidents int64
	// MaxMailboxBytes caps pending mailbox payload bytes, cluster-wide.
	MaxMailboxBytes int64
	// MaxJournalBytes caps journaled agent bytes, cluster-wide.
	MaxJournalBytes int64
}

// EffectiveWeight is the WFQ weight with the default applied.
func (l Limits) EffectiveWeight() int {
	if l.Weight <= 0 {
		return 1
	}
	return l.Weight
}

// Tenant is one account: who may subscribe under it, and how much of
// the cluster it may consume.
type Tenant struct {
	ID     string
	Secret string
	Limits Limits
}

// Registry is the tenant account table. When opened over an rms.Store
// every Put is persisted as one record per tenant, so the table rides
// whatever durability tier the store provides (MemStore in simulated
// worlds, the group-commit WAL — and with it §10 replication — in the
// daemons).
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
	store   rms.Store      // nil for a memory-only registry
	recs    map[string]int // tenant id -> store record id
}

// NewRegistry returns an empty, memory-only registry.
func NewRegistry() *Registry {
	return &Registry{tenants: map[string]*Tenant{}, recs: map[string]int{}}
}

// OpenRegistry builds a registry over a store, loading every persisted
// tenant record. Records that do not decode are dropped rather than
// resurrected half-written.
func OpenRegistry(store rms.Store) (*Registry, error) {
	r := NewRegistry()
	r.store = store
	ids, err := store.IDs()
	if err != nil {
		return nil, fmt.Errorf("tenant: scanning registry store: %w", err)
	}
	for _, recID := range ids {
		data, err := store.Get(recID)
		if err != nil {
			return nil, fmt.Errorf("tenant: reading record %d: %w", recID, err)
		}
		t, err := decodeTenant(data)
		if err != nil {
			_ = store.Delete(recID)
			continue
		}
		if old, ok := r.recs[t.ID]; ok {
			_ = store.Delete(old)
		}
		r.tenants[t.ID] = t
		r.recs[t.ID] = recID
	}
	return r, nil
}

// Put inserts or replaces a tenant, persisting it when the registry is
// store-backed.
func (r *Registry) Put(t *Tenant) error {
	if t.ID == "" {
		return fmt.Errorf("tenant: tenant needs an id")
	}
	cp := *t
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tenants[cp.ID] = &cp
	if r.store == nil {
		return nil
	}
	data := encodeTenant(&cp)
	if recID, ok := r.recs[cp.ID]; ok {
		return r.store.Set(recID, data)
	}
	recID, err := r.store.Add(data)
	if err != nil {
		return err
	}
	r.recs[cp.ID] = recID
	return nil
}

// Get looks a tenant up by id. The default id ("") always resolves to
// an unlimited account, so single-tenant traffic needs no registration.
func (r *Registry) Get(id string) (*Tenant, bool) {
	if id == DefaultID {
		return &Tenant{ID: DefaultID}, true
	}
	r.mu.RLock()
	t, ok := r.tenants[id]
	r.mu.RUnlock()
	return t, ok
}

// Registered reports whether the id names an explicitly registered
// tenant (false for the implicit default account).
func (r *Registry) Registered(id string) bool {
	r.mu.RLock()
	_, ok := r.tenants[id]
	r.mu.RUnlock()
	return ok
}

// Len reports how many tenants are registered (the default account is
// not counted).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// All returns the registered tenants sorted by id.
func (r *Registry) All() []*Tenant {
	r.mu.RLock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- wire encoding -------------------------------------------------------

// encodeTenant renders one tenant as an XML record:
//
//	<tenant id="acme" secret="s" weight="4" rate="100" burst="200"
//	        max-inflight="500" max-residents="1000"
//	        max-mailbox-bytes="1048576" max-journal-bytes="1048576"/>
func encodeTenant(t *Tenant) []byte {
	n := kxml.NewElement("tenant")
	n.SetAttr("id", t.ID)
	n.SetAttr("secret", t.Secret)
	l := t.Limits
	if l.Weight > 0 {
		n.SetAttr("weight", strconv.Itoa(l.Weight))
	}
	if l.RatePerSec > 0 {
		n.SetAttr("rate", strconv.FormatFloat(l.RatePerSec, 'g', -1, 64))
	}
	if l.Burst > 0 {
		n.SetAttr("burst", strconv.Itoa(l.Burst))
	}
	if l.MaxInFlight > 0 {
		n.SetAttr("max-inflight", strconv.FormatInt(l.MaxInFlight, 10))
	}
	if l.MaxResidents > 0 {
		n.SetAttr("max-residents", strconv.FormatInt(l.MaxResidents, 10))
	}
	if l.MaxMailboxBytes > 0 {
		n.SetAttr("max-mailbox-bytes", strconv.FormatInt(l.MaxMailboxBytes, 10))
	}
	if l.MaxJournalBytes > 0 {
		n.SetAttr("max-journal-bytes", strconv.FormatInt(l.MaxJournalBytes, 10))
	}
	return n.EncodeDocument()
}

func decodeTenant(data []byte) (*Tenant, error) {
	root, err := kxml.ParseBytes(data)
	if err != nil {
		return nil, err
	}
	return tenantFromNode(root)
}

func tenantFromNode(n *kxml.Node) (*Tenant, error) {
	if n.Name != "tenant" {
		return nil, fmt.Errorf("tenant: record root is %q, want tenant", n.Name)
	}
	id := n.AttrDefault("id", "")
	if id == "" {
		return nil, fmt.Errorf("tenant: record missing id")
	}
	t := &Tenant{ID: id, Secret: n.AttrDefault("secret", "")}
	t.Limits = Limits{
		Weight:          atoi(n.AttrDefault("weight", "")),
		RatePerSec:      atof(n.AttrDefault("rate", "")),
		Burst:           atoi(n.AttrDefault("burst", "")),
		MaxInFlight:     atoi64(n.AttrDefault("max-inflight", "")),
		MaxResidents:    atoi64(n.AttrDefault("max-residents", "")),
		MaxMailboxBytes: atoi64(n.AttrDefault("max-mailbox-bytes", "")),
		MaxJournalBytes: atoi64(n.AttrDefault("max-journal-bytes", "")),
	}
	return t, nil
}

func atoi(s string) int     { n, _ := strconv.Atoi(s); return n }
func atoi64(s string) int64 { n, _ := strconv.ParseInt(s, 10, 64); return n }
func atof(s string) float64 { f, _ := strconv.ParseFloat(s, 64); return f }

// ParseConfig parses a tenants config document — the payload of the
// daemons' -tenants flag:
//
//	<tenants>
//	  <tenant id="acme" secret="s3" weight="4" rate="100" .../>
//	  <tenant id="hog"  secret="s7" weight="1" rate="20"  burst="5"/>
//	</tenants>
func ParseConfig(doc []byte) ([]*Tenant, error) {
	root, err := kxml.ParseBytes(doc)
	if err != nil {
		return nil, fmt.Errorf("tenant: parsing config: %w", err)
	}
	if root.Name != "tenants" {
		return nil, fmt.Errorf("tenant: config root is %q, want tenants", root.Name)
	}
	var out []*Tenant
	for _, child := range root.FindAll("tenant") {
		t, err := tenantFromNode(child)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// LoadFile reads a -tenants config file into a memory registry.
func LoadFile(path string) (*Registry, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ts, err := ParseConfig(doc)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", path, err)
	}
	r := NewRegistry()
	for _, t := range ts {
		if err := r.Put(t); err != nil {
			return nil, fmt.Errorf("tenant: %s: %w", path, err)
		}
	}
	return r, nil
}

package tenant

import "sync"

// Bucket is a token bucket on an injectable nanosecond clock: the
// daemons feed it time.Now().UnixNano(), the benches and experiments
// their virtual clock, so refill behaviour is identical (and
// deterministic) in both worlds.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64 // bucket depth
	tokens float64
	lastNs int64
	primed bool
}

// NewBucket builds a bucket refilling at ratePerSec with the given
// depth (burst <= 0 defaults to max(1, ratePerSec)). A nil return
// means no limit at all.
func NewBucket(ratePerSec float64, burst int) *Bucket {
	if ratePerSec <= 0 {
		return nil
	}
	depth := float64(burst)
	if depth <= 0 {
		depth = ratePerSec
		if depth < 1 {
			depth = 1
		}
	}
	return &Bucket{rate: ratePerSec, burst: depth, tokens: depth}
}

// Take consumes one token at nowNs, reporting whether one was
// available. A nil bucket always admits.
func (b *Bucket) Take(nowNs int64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(nowNs)
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// RetryAfterNs reports how long after nowNs the next token arrives
// (0 when one is already available).
func (b *Bucket) RetryAfterNs(nowNs int64) int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(nowNs)
	if b.tokens >= 1 {
		return 0
	}
	need := 1 - b.tokens
	return int64(need / b.rate * 1e9)
}

// refillLocked credits tokens for the time elapsed since the last
// observation. Clocks that step backwards (a restarted virtual clock)
// simply re-prime instead of crediting a negative interval.
func (b *Bucket) refillLocked(nowNs int64) {
	if !b.primed || nowNs < b.lastNs {
		b.lastNs = nowNs
		b.primed = true
		return
	}
	elapsed := nowNs - b.lastNs
	b.lastNs = nowNs
	b.tokens += float64(elapsed) / 1e9 * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

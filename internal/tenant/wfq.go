package tenant

import (
	"container/heap"
	"sync"
)

// WFQ is a weighted-fair queue over opaque items: each tenant's
// backlog drains in arrival order, and across tenants service is
// interleaved in proportion to weight using virtual finish times
// (classic start-time fair queueing: an item's virtual finish is
// max(virtual clock, tenant's last finish) + 1/weight, and Dequeue
// always serves the smallest finish). A weight-4 tenant therefore
// gets 4 items served for every 1 of a weight-1 tenant while both
// are backlogged, yet an idle tenant's unused share is redistributed
// instead of wasted.
//
// The experiments use it to contrast weighted-fair admission with
// FIFO under a noisy neighbour; the admission layer uses the same
// virtual-time bookkeeping for its fair-share shed decisions.
type WFQ struct {
	mu     sync.Mutex
	items  wfqHeap
	vtime  float64            // virtual clock: finish tag of the last dequeued item
	finish map[string]float64 // tenant -> last assigned finish tag
	seq    uint64             // FIFO tie-break within equal finish tags
}

// NewWFQ returns an empty weighted-fair queue.
func NewWFQ() *WFQ {
	return &WFQ{finish: map[string]float64{}}
}

// Enqueue adds an item for a tenant with the given weight (values < 1
// are treated as 1).
func (q *WFQ) Enqueue(tenantID string, weight int, payload any) {
	if weight < 1 {
		weight = 1
	}
	q.mu.Lock()
	start := q.vtime
	if f, ok := q.finish[tenantID]; ok && f > start {
		start = f
	}
	finish := start + 1/float64(weight)
	q.finish[tenantID] = finish
	q.seq++
	heap.Push(&q.items, wfqItem{tenant: tenantID, payload: payload, finish: finish, seq: q.seq})
	q.mu.Unlock()
}

// Dequeue removes and returns the item with the smallest virtual
// finish time; ok is false when the queue is empty.
func (q *WFQ) Dequeue() (tenantID string, payload any, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return "", nil, false
	}
	it := heap.Pop(&q.items).(wfqItem)
	q.vtime = it.finish
	if len(q.items) == 0 {
		// Empty queue: reset the virtual clock so tag magnitudes stay
		// bounded over a long-running gateway.
		q.vtime = 0
		for k := range q.finish {
			delete(q.finish, k)
		}
	}
	return it.tenant, it.payload, true
}

// Len reports the queued item count.
func (q *WFQ) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

type wfqItem struct {
	tenant  string
	payload any
	finish  float64
	seq     uint64
}

type wfqHeap []wfqItem

func (h wfqHeap) Len() int { return len(h) }
func (h wfqHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h wfqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wfqHeap) Push(x any)   { *h = append(*h, x.(wfqItem)) }
func (h *wfqHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

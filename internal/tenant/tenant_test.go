package tenant

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pdagent/internal/rms"
)

func TestRegistryStoreRoundTrip(t *testing.T) {
	store := rms.NewMemStore("tenants", 0)
	reg, err := OpenRegistry(store)
	if err != nil {
		t.Fatal(err)
	}
	want := &Tenant{ID: "acme", Secret: "s3", Limits: Limits{
		Weight: 4, RatePerSec: 100, Burst: 200,
		MaxInFlight: 500, MaxResidents: 1000,
		MaxMailboxBytes: 1 << 20, MaxJournalBytes: 2 << 20,
	}}
	if err := reg.Put(want); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put(&Tenant{ID: "hog", Secret: "s7", Limits: Limits{RatePerSec: 20, Burst: 5}}); err != nil {
		t.Fatal(err)
	}
	// Replace acme in place: the record must be overwritten, not doubled.
	want.Limits.Weight = 8
	if err := reg.Put(want); err != nil {
		t.Fatal(err)
	}

	re, err := OpenRegistry(store)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened registry has %d tenants, want 2", re.Len())
	}
	got, ok := re.Get("acme")
	if !ok {
		t.Fatal("acme missing after reopen")
	}
	if *got != *want {
		t.Fatalf("acme round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, ok := re.Get("hog"); !ok {
		t.Fatal("hog missing after reopen")
	}
	// The default account always resolves, unlimited.
	def, ok := re.Get(DefaultID)
	if !ok || def.Limits != (Limits{}) {
		t.Fatalf("default tenant = %+v, %v; want unlimited", def, ok)
	}
}

func TestParseConfig(t *testing.T) {
	doc := []byte(`<tenants>
  <tenant id="acme" secret="a" weight="4" rate="100"/>
  <tenant id="hog" secret="b" rate="20" burst="5" max-inflight="16"/>
</tenants>`)
	ts, err := ParseConfig(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("parsed %d tenants, want 2", len(ts))
	}
	if ts[0].ID != "acme" || ts[0].Limits.Weight != 4 || ts[0].Limits.RatePerSec != 100 {
		t.Fatalf("acme parsed as %+v", ts[0])
	}
	if ts[1].Limits.MaxInFlight != 16 || ts[1].Limits.Burst != 5 {
		t.Fatalf("hog parsed as %+v", ts[1])
	}
	if _, err := ParseConfig([]byte(`<nope/>`)); err == nil {
		t.Fatal("wrong root accepted")
	}
	if _, err := ParseConfig([]byte(`<tenants><tenant secret="x"/></tenants>`)); err == nil {
		t.Fatal("tenant without id accepted")
	}
}

func TestBucketRefill(t *testing.T) {
	b := NewBucket(10, 2) // 10 tokens/s, depth 2
	now := int64(0)
	if !b.Take(now) || !b.Take(now) {
		t.Fatal("burst of 2 refused")
	}
	if b.Take(now) {
		t.Fatal("third token granted from an empty bucket")
	}
	if ra := b.RetryAfterNs(now); ra <= 0 || ra > int64(100*time.Millisecond) {
		t.Fatalf("retry-after %dns, want (0, 100ms]", ra)
	}
	now += int64(100 * time.Millisecond) // one token refilled
	if !b.Take(now) {
		t.Fatal("refilled token refused")
	}
	if b.Take(now) {
		t.Fatal("token granted beyond refill")
	}
	// A long idle period credits at most the burst depth.
	now += int64(time.Hour)
	for i := 0; i < 2; i++ {
		if !b.Take(now) {
			t.Fatalf("token %d refused after idle", i)
		}
	}
	if b.Take(now) {
		t.Fatal("burst depth exceeded after idle")
	}
}

// TestBucketConcurrent hammers one bucket from many goroutines under
// -race: exactly burst+refill tokens may be granted, never more.
func TestBucketConcurrent(t *testing.T) {
	const (
		workers = 8
		tries   = 1000
	)
	b := NewBucket(1000, 100) // depth 100
	var granted sync.Map
	var wg sync.WaitGroup
	var count int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < tries; i++ {
				// Frozen clock: no refill, so grants are bounded by depth.
				if b.Take(0) {
					mu.Lock()
					count++
					mu.Unlock()
					granted.Store(fmt.Sprintf("%d-%d", w, i), true)
				}
			}
		}(w)
	}
	wg.Wait()
	if count != 100 {
		t.Fatalf("granted %d tokens from a depth-100 bucket on a frozen clock", count)
	}
}

func TestWFQWeightedOrdering(t *testing.T) {
	q := NewWFQ()
	// Backlog both tenants, then drain: heavy (weight 3) must receive
	// ~3 services for every light one.
	for i := 0; i < 30; i++ {
		q.Enqueue("heavy", 3, fmt.Sprintf("h%d", i))
	}
	for i := 0; i < 30; i++ {
		q.Enqueue("light", 1, fmt.Sprintf("l%d", i))
	}
	heavyFirst12 := 0
	var order []string
	for {
		tenant, _, ok := q.Dequeue()
		if !ok {
			break
		}
		order = append(order, tenant)
		if len(order) <= 12 && tenant == "heavy" {
			heavyFirst12++
		}
	}
	if len(order) != 60 {
		t.Fatalf("drained %d items, want 60", len(order))
	}
	// In the first 12 services a 3:1 split means ~9 heavy.
	if heavyFirst12 < 8 || heavyFirst12 > 10 {
		t.Fatalf("heavy got %d of the first 12 services, want ~9 (3:1 weights)", heavyFirst12)
	}
	// Per-tenant FIFO: heavy's own items must drain in order.
	q2 := NewWFQ()
	q2.Enqueue("a", 1, 1)
	q2.Enqueue("a", 1, 2)
	q2.Enqueue("a", 1, 3)
	for want := 1; want <= 3; want++ {
		_, p, ok := q2.Dequeue()
		if !ok || p.(int) != want {
			t.Fatalf("tenant-local order broken: got %v want %d", p, want)
		}
	}
}

// TestWFQConcurrent exercises enqueue/dequeue races under -race and
// checks conservation.
func TestWFQConcurrent(t *testing.T) {
	q := NewWFQ()
	const n = 500
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				q.Enqueue(fmt.Sprintf("t%d", w), w+1, i)
			}
		}(w)
	}
	var got int64
	var mu sync.Mutex
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, _, ok := q.Dequeue()
				if !ok {
					mu.Lock()
					done := got
					mu.Unlock()
					if done == 4*n {
						return
					}
					continue
				}
				mu.Lock()
				got++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if got != 4*n {
		t.Fatalf("dequeued %d items, want %d", got, 4*n)
	}
}

func TestAdmissionRateAndQuota(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Put(&Tenant{ID: "hog", Secret: "s", Limits: Limits{RatePerSec: 10, Burst: 2, MaxInFlight: 3}}); err != nil {
		t.Fatal(err)
	}
	led := NewLedger()
	now := int64(0)
	ad := NewAdmission(reg, led)
	ad.Now = func() int64 { return now }

	// Burst admits, then the bucket refuses with a Retry-After hint.
	for i := 0; i < 2; i++ {
		if d := ad.Admit("hog"); !d.OK {
			t.Fatalf("burst dispatch %d refused: %s", i, d.Reason)
		}
	}
	d := ad.Admit("hog")
	if d.OK {
		t.Fatal("over-rate dispatch admitted")
	}
	if d.RetryAfterNs <= 0 {
		t.Fatalf("over-rate refusal missing Retry-After: %+v", d)
	}
	// Refill one token, then hit the in-flight quota instead.
	now += int64(100 * time.Millisecond)
	led.AddInFlight("hog", 3)
	d = ad.Admit("hog")
	if d.OK {
		t.Fatal("over-quota dispatch admitted")
	}
	led.AddInFlight("hog", -1)
	now += int64(100 * time.Millisecond)
	if d := ad.Admit("hog"); !d.OK {
		t.Fatalf("in-quota dispatch refused: %s", d.Reason)
	}
	// Unknown tenants are refused outright.
	if d := ad.Admit("ghost"); d.OK {
		t.Fatal("unknown tenant admitted")
	}
	// The default account is unlimited.
	if d := ad.Admit(DefaultID); !d.OK {
		t.Fatalf("default tenant refused: %s", d.Reason)
	}
}

func TestAdmissionClusterWideQuota(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Put(&Tenant{ID: "acme", Secret: "s", Limits: Limits{MaxInFlight: 10}}); err != nil {
		t.Fatal(err)
	}
	led := NewLedger()
	ad := NewAdmission(reg, led)
	remote := map[string]Usage{}
	ad.Remote = func() map[string]Usage { return remote }

	led.AddInFlight("acme", 4)
	if d := ad.Admit("acme"); !d.OK {
		t.Fatalf("local 4/10 refused: %s", d.Reason)
	}
	// The rest of the cluster reports 6 more: the quota is now full.
	remote["acme"] = Usage{Tenant: "acme", InFlight: 6}
	if d := ad.Admit("acme"); d.OK {
		t.Fatal("cluster-wide 10/10 admitted")
	}
}

func TestAdmissionSlowUsageSupplier(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Put(&Tenant{ID: "acme", Secret: "s", Limits: Limits{MaxResidents: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put(&Tenant{ID: "beta", Secret: "s", Limits: Limits{MaxInFlight: 5}}); err != nil {
		t.Fatal(err)
	}
	ad := NewAdmission(reg, NewLedger())
	slowCalls := 0
	ad.Slow = func(id string) Usage {
		slowCalls++
		return Usage{Tenant: Label(id), Residents: 5}
	}
	// acme has a residents quota: the slow walk runs and refuses.
	if d := ad.Admit("acme"); d.OK {
		t.Fatal("acme admitted at residents quota")
	}
	if slowCalls != 1 {
		t.Fatalf("slow supplier called %d times, want 1", slowCalls)
	}
	// beta has only an in-flight quota: no walk, and the slow-side
	// residents count must not block it.
	if d := ad.Admit("beta"); !d.OK {
		t.Fatalf("beta refused: %s", d.Reason)
	}
	if slowCalls != 1 {
		t.Fatalf("slow supplier called %d times for quota-free check", slowCalls)
	}
}

func TestProtectedFairShare(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Put(&Tenant{ID: "calm", Secret: "a", Limits: Limits{Weight: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put(&Tenant{ID: "noisy", Secret: "b", Limits: Limits{Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	led := NewLedger()
	ad := NewAdmission(reg, led)
	// Watermark 16, weights 3:1 → shares 12 and 4.
	led.AddInFlight("noisy", 10)
	led.AddInFlight("calm", 2)
	if ad.Protected("noisy", 16) {
		t.Fatal("noisy (10 >= share 4) protected")
	}
	if !ad.Protected("calm", 16) {
		t.Fatal("calm (2 < share 12) not protected")
	}
	// Nobody is protected without a watermark.
	if ad.Protected("calm", 0) {
		t.Fatal("protected with no watermark")
	}
}

func TestLedgerSnapshot(t *testing.T) {
	led := NewLedger()
	led.AddInFlight("b", 2)
	led.AddMailboxBytes("a", 100)
	led.AddJournalBytes("", 50)
	snap := led.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d rows, want 3", len(snap))
	}
	// Sorted by label; "" renders as "default".
	if snap[0].Tenant != "a" || snap[1].Tenant != "b" || snap[2].Tenant != "default" {
		t.Fatalf("snapshot order %v", []string{snap[0].Tenant, snap[1].Tenant, snap[2].Tenant})
	}
	if snap[2].JournalBytes != 50 {
		t.Fatalf("default journal bytes = %d, want 50", snap[2].JournalBytes)
	}
	// Negative tallies clamp.
	led.AddInFlight("b", -5)
	if got := led.UsageOf("b").InFlight; got != 0 {
		t.Fatalf("negative in-flight surfaced as %d", got)
	}
}

package tenant

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Usage is one tenant's resource consumption snapshot — the quantity
// gossiped on cluster heartbeats and compared against Limits.
type Usage struct {
	Tenant       string // label form ("" is rendered as "default")
	InFlight     int64  // dispatched-but-unfinished agents
	Residents    int64  // agents resident on this member's MAS
	MailboxBytes int64  // pending mailbox payload bytes
	JournalBytes int64  // journaled agent bytes
}

// Add accumulates another snapshot (used when summing cluster-wide
// usage across members).
func (u *Usage) Add(o Usage) {
	u.InFlight += o.InFlight
	u.Residents += o.Residents
	u.MailboxBytes += o.MailboxBytes
	u.JournalBytes += o.JournalBytes
}

// counters is one tenant's live tally. The hot-path fields are
// atomics: the registry bumps InFlight on every dispatch/complete,
// the hub MailboxBytes on every enqueue/ack, the journal
// JournalBytes on every put/drop.
type counters struct {
	inFlight     atomic.Int64
	residents    atomic.Int64
	mailboxBytes atomic.Int64
	journalBytes atomic.Int64
}

// Ledger is the per-tenant usage table for one member. The empty
// tenant id is the default account; a get-or-create map guarded by a
// RWMutex keeps lookups cheap (read lock + atomic bump on the hot
// path).
type Ledger struct {
	mu sync.RWMutex
	m  map[string]*counters
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{m: map[string]*counters{}} }

func (l *Ledger) get(id string) *counters {
	l.mu.RLock()
	c := l.m[id]
	l.mu.RUnlock()
	if c != nil {
		return c
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if c = l.m[id]; c == nil {
		c = &counters{}
		l.m[id] = c
	}
	return c
}

// AddInFlight adjusts a tenant's in-flight agent count.
func (l *Ledger) AddInFlight(id string, delta int64) { l.get(id).inFlight.Add(delta) }

// InFlight reads a tenant's in-flight agent count.
func (l *Ledger) InFlight(id string) int64 {
	n := l.get(id).inFlight.Load()
	if n < 0 {
		return 0
	}
	return n
}

// AddResidents adjusts a tenant's resident-agent count.
func (l *Ledger) AddResidents(id string, delta int64) { l.get(id).residents.Add(delta) }

// SetResidents overwrites a tenant's resident-agent count (used by
// embedders that derive it from a scrape-time walk).
func (l *Ledger) SetResidents(id string, n int64) { l.get(id).residents.Store(n) }

// AddMailboxBytes adjusts a tenant's pending mailbox byte tally.
func (l *Ledger) AddMailboxBytes(id string, delta int64) { l.get(id).mailboxBytes.Add(delta) }

// AddJournalBytes adjusts a tenant's journaled byte tally.
func (l *Ledger) AddJournalBytes(id string, delta int64) { l.get(id).journalBytes.Add(delta) }

// UsageOf snapshots one tenant (negative tallies clamp to zero — a
// release racing an admission must not turn a quota check negative).
func (l *Ledger) UsageOf(id string) Usage {
	c := l.get(id)
	return Usage{
		Tenant:       Label(id),
		InFlight:     clamp(c.inFlight.Load()),
		Residents:    clamp(c.residents.Load()),
		MailboxBytes: clamp(c.mailboxBytes.Load()),
		JournalBytes: clamp(c.journalBytes.Load()),
	}
}

func clamp(n int64) int64 {
	if n < 0 {
		return 0
	}
	return n
}

// Snapshot returns every tenant's usage sorted by label — the rows a
// cluster heartbeat gossips.
func (l *Ledger) Snapshot() []Usage {
	l.mu.RLock()
	ids := make([]string, 0, len(l.m))
	for id := range l.m {
		ids = append(ids, id)
	}
	l.mu.RUnlock()
	out := make([]Usage, 0, len(ids))
	for _, id := range ids {
		out = append(out, l.UsageOf(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

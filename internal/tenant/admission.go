package tenant

import (
	"fmt"
	"sync"
	"time"
)

// Decision is the outcome of one admission check. A refused dispatch
// carries the reason and a Retry-After hint; the gateway maps
// refusals to 429 (the tenant exceeded its own rate or quota — the
// device should back off and retry later) as opposed to the 503 the
// overload shedder answers (the member is saturated — the device
// should try another member or retry soon).
type Decision struct {
	OK           bool
	Reason       string
	RetryAfterNs int64
}

// defaultRetryAfter is the Retry-After hint when the refusal has no
// natural horizon (quota refusals: the device cannot know when the
// tenant's agents will finish).
const defaultRetryAfter = time.Second

// Admission is the per-member tenant admission layer: token-bucket
// rate limits, cluster-wide quota checks against the local ledger
// plus gossiped remote usage, and the weighted-fair shed decision
// used when an overload watermark trips.
type Admission struct {
	// Registry resolves tenant ids to their limits. Required.
	Registry *Registry
	// Ledger is this member's live usage. Required.
	Ledger *Ledger
	// Now is the nanosecond clock (default time.Now().UnixNano();
	// benches inject their virtual clock).
	Now func() int64
	// Remote, when set, returns the rest of the cluster's last-known
	// per-tenant usage (summed over members, keyed by tenant label) so
	// quotas hold cluster-wide, not just per member.
	Remote func() map[string]Usage
	// Slow, when set, supplies the usage halves the ledger cannot
	// track cheaply — resident-agent counts and journal bytes (MAS
	// table walks) and pending mailbox bytes (the hub's own tally).
	// It is consulted only when a tenant actually has one of those
	// quotas configured, so unlimited tenants never pay for the walk.
	// The ledger's InFlight wins over Slow's (expected zero there);
	// fields add, so suppliers must not overlap.
	Slow func(id string) Usage

	mu      sync.Mutex
	buckets map[string]*Bucket
}

// NewAdmission builds an admission layer over a registry and ledger.
func NewAdmission(reg *Registry, led *Ledger) *Admission {
	if reg == nil {
		reg = NewRegistry()
	}
	if led == nil {
		led = NewLedger()
	}
	return &Admission{Registry: reg, Ledger: led, buckets: map[string]*Bucket{}}
}

func (a *Admission) now() int64 {
	if a.Now != nil {
		return a.Now()
	}
	return time.Now().UnixNano()
}

// bucket returns the tenant's rate bucket, building it lazily from
// the registered limits (nil when the tenant has no rate limit).
func (a *Admission) bucket(t *Tenant) *Bucket {
	if t.Limits.RatePerSec <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[t.ID]
	if !ok {
		b = NewBucket(t.Limits.RatePerSec, t.Limits.Burst)
		a.buckets[t.ID] = b
	}
	return b
}

// usage returns the tenant's cluster-wide usage: the local ledger,
// the slow supplier (MAS/hub walks), plus whatever the heartbeats
// last gossiped about other members. wantSlow skips the walk for
// tenants with no residents/mailbox/journal quota.
func (a *Admission) usage(id string, wantSlow bool) Usage {
	u := a.Ledger.UsageOf(id)
	if wantSlow && a.Slow != nil {
		u.Add(a.Slow(id))
	}
	if a.Remote != nil {
		if remote, ok := a.Remote()[Label(id)]; ok {
			u.Add(remote)
		}
	}
	return u
}

// Admit runs the rate and quota checks for one dispatch of a tenant.
// It does not consume quota — the ledger moves when the dispatch
// actually admits — but it does consume a rate token.
func (a *Admission) Admit(id string) Decision {
	t, ok := a.Registry.Get(id)
	if !ok {
		return Decision{Reason: fmt.Sprintf("unknown tenant %q", id), RetryAfterNs: int64(defaultRetryAfter)}
	}
	if b := a.bucket(t); b != nil {
		now := a.now()
		if !b.Take(now) {
			retry := b.RetryAfterNs(now)
			if retry <= 0 {
				retry = int64(defaultRetryAfter)
			}
			return Decision{
				Reason:       fmt.Sprintf("tenant %s over dispatch rate (%.6g/s)", Label(id), t.Limits.RatePerSec),
				RetryAfterNs: retry,
			}
		}
	}
	l := t.Limits
	if l.MaxInFlight > 0 || l.MaxResidents > 0 || l.MaxMailboxBytes > 0 || l.MaxJournalBytes > 0 {
		u := a.usage(id, l.MaxResidents > 0 || l.MaxJournalBytes > 0 || l.MaxMailboxBytes > 0)
		switch {
		case l.MaxInFlight > 0 && u.InFlight >= l.MaxInFlight:
			return quotaRefusal(id, "in-flight agents", u.InFlight, l.MaxInFlight)
		case l.MaxResidents > 0 && u.Residents >= l.MaxResidents:
			return quotaRefusal(id, "resident agents", u.Residents, l.MaxResidents)
		case l.MaxMailboxBytes > 0 && u.MailboxBytes >= l.MaxMailboxBytes:
			return quotaRefusal(id, "mailbox bytes", u.MailboxBytes, l.MaxMailboxBytes)
		case l.MaxJournalBytes > 0 && u.JournalBytes >= l.MaxJournalBytes:
			return quotaRefusal(id, "journal bytes", u.JournalBytes, l.MaxJournalBytes)
		}
	}
	return Decision{OK: true}
}

func quotaRefusal(id, what string, have, max int64) Decision {
	return Decision{
		Reason:       fmt.Sprintf("tenant %s over quota: %s %d >= %d", Label(id), what, have, max),
		RetryAfterNs: int64(defaultRetryAfter),
	}
}

// Protected reports whether a tenant's dispatches should survive an
// overload shed: while the member is over its watermark, tenants
// consuming less than their weighted fair share of the in-flight
// budget stay admitted (they did not cause the overload) and the
// over-share tenants are shed first. maxInFlight is the watermark the
// shedder is enforcing; a non-positive value protects nobody.
func (a *Admission) Protected(id string, maxInFlight int) bool {
	if maxInFlight <= 0 {
		return false
	}
	t, ok := a.Registry.Get(id)
	if !ok {
		return false
	}
	total := 0
	weight := t.Limits.EffectiveWeight()
	for _, other := range a.Registry.All() {
		total += other.Limits.EffectiveWeight()
	}
	if !a.Registry.Registered(id) {
		// The default account competes with weight 1 alongside the
		// registered tenants.
		total += t.Limits.EffectiveWeight()
	}
	if total <= 0 {
		total = weight
	}
	share := int64(maxInFlight) * int64(weight) / int64(total)
	if share < 1 {
		share = 1
	}
	return a.Ledger.InFlight(id) < share
}

package push

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pdagent/internal/rms"
)

func newTestHub(t *testing.T, store rms.Store, mut func(*Config)) *Hub {
	t.Helper()
	cfg := Config{Store: store}
	if mut != nil {
		mut(&cfg)
	}
	h, err := NewHub(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mustEnqueue(t *testing.T, h *Hub, dev, kind, agent, event string, body string) uint64 {
	t.Helper()
	seq, dup, err := h.Enqueue(dev, kind, agent, event, []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Fatalf("unexpected dup for event %q", event)
	}
	return seq
}

func TestEnqueuePollAck(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), nil)
	if seq := mustEnqueue(t, h, "alice", KindResult, "ag-1", "result:ag-1", "<r/>"); seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	mustEnqueue(t, h, "alice", KindStatus, "ag-2", "status:ag-2", "disposed")

	entries, watermark, evicted, err := h.Poll("alice", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || watermark != 2 || evicted != 0 {
		t.Fatalf("poll = %d entries wm %d ev %d, want 2/2/0", len(entries), watermark, evicted)
	}
	if entries[0].Seq != 1 || entries[0].Kind != KindResult || string(entries[0].Body) != "<r/>" {
		t.Fatalf("entry 0 = %+v", entries[0])
	}

	// A re-poll with the same cursor redelivers (at-least-once until
	// acked)...
	entries, _, _, _ = h.Poll("alice", 0, 0)
	if len(entries) != 2 {
		t.Fatalf("re-poll = %d entries, want 2", len(entries))
	}
	// ...and acking the watermark retires both.
	entries, watermark, _, _ = h.Poll("alice", 2, 0)
	if len(entries) != 0 || watermark != 2 {
		t.Fatalf("post-ack poll = %d entries wm %d, want 0/2", len(entries), watermark)
	}
	if n, _ := h.cfg.Store.NumRecords(); n != 1 { // only the meta record remains
		t.Fatalf("store has %d records after full ack, want 1 (meta)", n)
	}
	// Seqs keep increasing after a full drain.
	if seq := mustEnqueue(t, h, "alice", KindResult, "ag-3", "result:ag-3", "x"); seq != 3 {
		t.Fatalf("post-drain seq = %d, want 3", seq)
	}
}

func TestEnqueueDedupByEventID(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), nil)
	seq := mustEnqueue(t, h, "alice", KindResult, "ag-1", "result:ag-1", "<r/>")
	seq2, dup, err := h.Enqueue("alice", KindResult, "ag-1", "result:ag-1", []byte("<r/>"))
	if err != nil || !dup || seq2 != seq {
		t.Fatalf("replayed enqueue = seq %d dup %v err %v, want %d/true/nil", seq2, dup, err, seq)
	}
	// Dedup survives delivery: the device must not get a second copy of
	// a result it already processed just because a relay retried late.
	if _, err := h.Ack("alice", seq); err != nil {
		t.Fatal(err)
	}
	if _, dup, _ := h.Enqueue("alice", KindResult, "ag-1", "result:ag-1", []byte("<r/>")); !dup {
		t.Fatal("event replay after ack was not deduplicated")
	}
	if st := h.Stats(); st.Duplicates != 2 || st.Enqueued != 1 {
		t.Fatalf("stats = %+v, want 2 duplicates, 1 enqueued", st)
	}
}

func TestQuotaEvictsOldestExpendableFirst(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), func(c *Config) { c.Quota = 3 })
	mustEnqueue(t, h, "d", KindResult, "ag-1", "result:ag-1", "r1") // oldest, but a result
	mustEnqueue(t, h, "d", KindStatus, "ag-2", "status:ag-2", "s1") // evicted first
	mustEnqueue(t, h, "d", KindResult, "ag-3", "result:ag-3", "r2")
	mustEnqueue(t, h, "d", KindResult, "ag-4", "result:ag-4", "r3") // pushes one out

	entries, _, evicted, _ := h.Poll("d", 0, 0)
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	var kinds []string
	for _, e := range entries {
		kinds = append(kinds, e.Kind)
	}
	if len(entries) != 3 || entries[0].AgentID != "ag-1" {
		t.Fatalf("surviving entries %v (kinds %v): the status entry should have been evicted, not the oldest result", entries, kinds)
	}
	for _, e := range entries {
		if e.Kind != KindResult {
			t.Fatalf("expendable entry survived: %+v", e)
		}
	}

	// With only results pending, quota falls back to oldest-first.
	mustEnqueue(t, h, "d", KindResult, "ag-5", "result:ag-5", "r4")
	entries, _, evicted, _ = h.Poll("d", 0, 0)
	if evicted != 2 || entries[0].AgentID != "ag-3" {
		t.Fatalf("after result eviction: evicted %d, first %s; want 2, ag-3", evicted, entries[0].AgentID)
	}
	if st := h.Stats(); st.EvictedQuota != 2 {
		t.Fatalf("EvictedQuota = %d, want 2", st.EvictedQuota)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	h := newTestHub(t, rms.NewMemStore("mb", 0), func(c *Config) {
		c.TTL = time.Minute
		c.Clock = func() time.Time { return now }
	})
	mustEnqueue(t, h, "d", KindResult, "ag-1", "result:ag-1", "r1")
	now = now.Add(30 * time.Second)
	mustEnqueue(t, h, "d", KindStatus, "ag-2", "status:ag-2", "s1")

	now = now.Add(45 * time.Second) // first entry now 75s old, second 45s
	if n := h.SweepExpired(); n != 1 {
		t.Fatalf("sweep dropped %d, want 1", n)
	}
	entries, _, evicted, _ := h.Poll("d", 0, 0)
	if len(entries) != 1 || entries[0].AgentID != "ag-2" || evicted != 1 {
		t.Fatalf("post-sweep: %d entries (first %s), evicted %d", len(entries), entries[0].AgentID, evicted)
	}
	if st := h.Stats(); st.EvictedTTL != 1 {
		t.Fatalf("EvictedTTL = %d, want 1", st.EvictedTTL)
	}
}

// TestReplayAfterCrash is the crash-recovery drill at the hub level:
// the store survives, the process state does not.
func TestReplayAfterCrash(t *testing.T) {
	store := rms.NewMemStore("mb", 0)
	h := newTestHub(t, store, nil)
	mustEnqueue(t, h, "alice", KindResult, "ag-1", "result:ag-1", "r1")
	mustEnqueue(t, h, "alice", KindResult, "ag-2", "result:ag-2", "r2")
	mustEnqueue(t, h, "bob", KindStatus, "ag-9", "status:ag-9", "s")
	if _, err := h.Ack("alice", 1); err != nil {
		t.Fatal(err)
	}

	// "Crash": reopen a fresh hub over the same store.
	h2 := newTestHub(t, store, nil)
	entries, watermark, _, _ := h2.Poll("alice", 0, 0)
	if len(entries) != 1 || entries[0].Seq != 2 || entries[0].AgentID != "ag-2" || watermark != 2 {
		t.Fatalf("alice after replay: %d entries, first %+v, wm %d", len(entries), entries[0], watermark)
	}
	if n := h2.Pending("bob"); n != 1 {
		t.Fatalf("bob pending = %d, want 1", n)
	}
	// Seq allocation stays monotonic (no reuse of acked seqs).
	if seq := mustEnqueue(t, h2, "alice", KindResult, "ag-3", "result:ag-3", "r3"); seq != 3 {
		t.Fatalf("post-replay seq = %d, want 3", seq)
	}
	// The dedup window survived the crash: re-relaying an already-acked
	// result must not resurrect it.
	if _, dup, _ := h2.Enqueue("alice", KindResult, "ag-1", "result:ag-1", []byte("r1")); !dup {
		t.Fatal("crash lost the dedup window: acked result re-enqueued")
	}
}

// TestReplayDropsAckedEntries simulates a crash between the cursor
// write and the entry deletes: replay must finish the ack, not
// resurrect the entries.
func TestReplayDropsAckedEntries(t *testing.T) {
	store := rms.NewMemStore("mb", 0)
	h := newTestHub(t, store, nil)
	mustEnqueue(t, h, "alice", KindResult, "ag-1", "result:ag-1", "r1")
	mustEnqueue(t, h, "alice", KindResult, "ag-2", "result:ag-2", "r2")

	// Forge the torn state: advance the persisted cursor without
	// deleting the entry records (exactly what a crash mid-Ack leaves).
	mb, _ := h.lookup("alice")
	mb.mu.Lock()
	mb.cursor = 2
	h.writeMetaLocked(mb)
	mb.mu.Unlock()

	h2 := newTestHub(t, store, nil)
	if entries, _, _, _ := h2.Poll("alice", 0, 0); len(entries) != 0 {
		t.Fatalf("torn ack resurrected %d entries", len(entries))
	}
	if n, _ := store.NumRecords(); n != 1 {
		t.Fatalf("store has %d records, want 1 (meta only)", n)
	}
}

func TestWaitWakesOnEnqueueAndClose(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), nil)

	// Pending mail: Wait returns an already-closed channel, so the
	// arm-then-check race of a long-poll loop cannot miss a wakeup.
	mustEnqueue(t, h, "d", KindResult, "ag-1", "result:ag-1", "r")
	select {
	case <-h.Wait("d"):
	default:
		t.Fatal("Wait not ready with pending mail")
	}
	if _, err := h.Ack("d", 1); err != nil {
		t.Fatal(err)
	}

	ch := h.Wait("d")
	select {
	case <-ch:
		t.Fatal("Wait ready with empty mailbox")
	default:
	}
	mustEnqueue(t, h, "d", KindResult, "ag-2", "result:ag-2", "r")
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("enqueue did not wake the waiter")
	}

	h2 := newTestHub(t, rms.NewMemStore("mb2", 0), nil)
	ch2 := h2.Wait("d")
	h2.Close()
	select {
	case <-ch2:
	case <-time.After(time.Second):
		t.Fatal("Close did not wake the waiter")
	}
}

func TestPresence(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), nil)
	if h.Connected("d") {
		t.Fatal("device connected before any session")
	}
	disc := h.Connect("d")
	if !h.Connected("d") || h.Stats().Connected != 1 {
		t.Fatal("Connect not reflected")
	}
	disc()
	disc() // idempotent
	if h.Connected("d") || h.Stats().Connected != 0 {
		t.Fatal("disconnect not reflected")
	}
}

func TestExportImportMigration(t *testing.T) {
	src := newTestHub(t, rms.NewMemStore("src", 0), nil)
	dst := newTestHub(t, rms.NewMemStore("dst", 0), nil)
	// Give the destination unrelated prior traffic so the imported
	// entries must be re-sequenced onto its local seq space.
	mustEnqueue(t, dst, "alice", KindStatus, "ag-0", "status:ag-0", "old")

	mustEnqueue(t, src, "alice", KindResult, "ag-1", "result:ag-1", "r1")
	mustEnqueue(t, src, "alice", KindResult, "ag-2", "result:ag-2", "r2")

	exported := src.Export("alice")
	if len(exported) != 2 {
		t.Fatalf("export = %d entries, want 2", len(exported))
	}
	n, err := dst.Import("alice", exported)
	if err != nil || n != 2 {
		t.Fatalf("import = %d, %v; want 2, nil", n, err)
	}
	// Re-pulling the same export is idempotent (ack to the source was
	// lost, the edge pulls again).
	if n, _ := dst.Import("alice", exported); n != 0 {
		t.Fatalf("re-import adopted %d entries, want 0", n)
	}
	// The source retires the migrated entries only on ack.
	if src.Pending("alice") != 2 {
		t.Fatal("source dropped entries before the ack")
	}
	if _, err := src.Ack("alice", exported[len(exported)-1].Seq); err != nil {
		t.Fatal(err)
	}
	if src.Pending("alice") != 0 {
		t.Fatal("source kept entries after the ack")
	}

	entries, watermark, _, _ := dst.Poll("alice", 0, 0)
	if len(entries) != 3 || watermark != 3 {
		t.Fatalf("destination has %d entries wm %d, want 3/3", len(entries), watermark)
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("imported entries not re-sequenced: %+v", entries)
		}
	}
}

func TestEntriesWireRoundTrip(t *testing.T) {
	in := []*Entry{
		{Seq: 3, Kind: KindResult, AgentID: "ag-1", EventID: "result:ag-1",
			Body: []byte(`<result-document agent="ag-1"/>`), Enqueued: time.Unix(12, 34)},
		{Seq: 5, Kind: KindStatus, AgentID: "ag-2", EventID: "status:ag-2", Body: []byte("disposed & gone")},
	}
	doc := EncodeEntries("alice", in, 5, 7)
	dev, out, watermark, evicted, token, _, err := ParseEntries(doc)
	if err != nil {
		t.Fatal(err)
	}
	if dev != "alice" || watermark != 5 || evicted != 7 || len(out) != 2 || token != "" {
		t.Fatalf("decoded dev %q wm %d ev %d n %d tok %q", dev, watermark, evicted, len(out), token)
	}
	// Export documents additionally carry the access token.
	_, _, _, _, token, _, err = ParseEntries(EncodeExport("alice", in, 5, "tok-1", ""))
	if err != nil || token != "tok-1" {
		t.Fatalf("export token = %q, %v", token, err)
	}
	for i := range in {
		if out[i].Seq != in[i].Seq || out[i].Kind != in[i].Kind ||
			out[i].AgentID != in[i].AgentID || out[i].EventID != in[i].EventID ||
			string(out[i].Body) != string(in[i].Body) {
			t.Fatalf("entry %d: got %+v want %+v", i, out[i], in[i])
		}
	}
	if !out[0].Enqueued.Equal(in[0].Enqueued) {
		t.Fatalf("enqueue time lost: %v vs %v", out[0].Enqueued, in[0].Enqueued)
	}
}

// TestConcurrentEnqueuePollEvict is the -race drill: many producers,
// one draining consumer per device, TTL sweeps and stats reads all at
// once, with a quota small enough to force concurrent eviction. Every
// delivered seq must be strictly increasing per device (no dup, no
// reorder), and accounting must balance.
func TestConcurrentEnqueuePollEvict(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), func(c *Config) { c.Quota = 8 })
	const devices = 4
	const perProducer = 50

	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		for p := 0; p < 2; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					event := fmt.Sprintf("result:%s-%d-%d", dev, p, i)
					if _, _, err := h.Enqueue(dev, KindResult, "ag", event, []byte("r")); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor uint64
			deadline := time.After(5 * time.Second)
			for {
				entries, watermark, _, err := h.Poll(dev, cursor, 4)
				if err != nil {
					t.Error(err)
					return
				}
				for _, e := range entries {
					if e.Seq <= cursor {
						t.Errorf("%s: duplicate or reordered seq %d after cursor %d", dev, e.Seq, cursor)
						return
					}
					cursor = e.Seq
				}
				cursor = watermark
				if cursor >= 2*perProducer {
					// Producers are done once every seq was assigned;
					// anything not delivered was evicted (counted).
					return
				}
				if len(entries) == 0 {
					select {
					case <-h.Wait(dev):
					case <-deadline:
						t.Errorf("%s: drain stalled at cursor %d", dev, cursor)
						return
					}
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				h.SweepExpired()
				h.Stats()
			}
		}
	}()
	wg.Wait()
	close(done)

	st := h.Stats()
	if st.Enqueued != devices*2*perProducer {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, devices*2*perProducer)
	}
	if st.Delivered+st.EvictedQuota+st.EvictedTTL+uint64(st.Pending) != st.Enqueued {
		t.Fatalf("accounting leak: %+v", st)
	}
}

// TestStaleCursorCannotDestroyMail: an ack watermark beyond anything
// this mailbox ever assigned (a device cursor from a previous mailbox
// generation, e.g. after a gateway lost a volatile store) must be
// ignored, not clamped — clamping would delete mail the device never
// saw.
func TestStaleCursorCannotDestroyMail(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), nil)
	mustEnqueue(t, h, "d", KindResult, "ag-1", "result:ag-1", "r1")
	mustEnqueue(t, h, "d", KindStatus, "ag-2", "status:ag-2", "s1")

	entries, watermark, _, err := h.Poll("d", 50, 0) // stale cursor from another life
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("stale ack destroyed mail: %d entries left, want 2", len(entries))
	}
	if watermark != 2 {
		t.Fatalf("watermark = %d, want 2", watermark)
	}
	// The real current watermark still acks normally.
	if n, _ := h.Ack("d", 2); n != 2 {
		t.Fatalf("valid ack retired %d, want 2", n)
	}
}

// TestDedupWindowScalesWithQuota: with a quota above the base dedup
// window, a still-pending entry must never fall out of its own dedup
// memory (or a retried relay would enqueue a second copy).
func TestDedupWindowScalesWithQuota(t *testing.T) {
	const quota = dedupWindow + 64
	h := newTestHub(t, rms.NewMemStore("mb", 0), func(c *Config) { c.Quota = quota })
	for i := 0; i < quota; i++ {
		mustEnqueue(t, h, "d", KindResult, "ag", fmt.Sprintf("result:ag-%d", i), "r")
	}
	// The oldest entry is still pending; its event id must still dedup.
	if _, dup, _ := h.Enqueue("d", KindResult, "ag", "result:ag-0", []byte("r")); !dup {
		t.Fatal("pending entry outlived its dedup memory: duplicate enqueued")
	}
	if h.Pending("d") != quota {
		t.Fatalf("pending = %d, want %d", h.Pending("d"), quota)
	}
}

package push

import (
	"fmt"
	"strconv"
	"time"

	"pdagent/internal/kxml"
)

// Storage and wire formats. Everything is XML, like the rest of the
// platform's documents:
//
//	<mb-entry device="d" seq="3" kind="result" agent="ag-1"
//	          event="result:ag-1" enq="1234">body</mb-entry>
//	<mb-meta device="d" next="7" cursor="2" evicted="1">
//	  <e seq="3">result:ag-1</e> ...
//	</mb-meta>
//	<mailbox device="d" next="5" evicted="1">
//	  <entry seq=... kind=... agent=... event=... enq=...>body</entry>
//	</mailbox>
//
// Bodies are text payloads (result documents, short notes); they ride
// as escaped character data. Timestamps are unix nanoseconds.

// encodeEntryRecord renders one entry's backing record. Like the meta
// record it sits on the enqueue path, so it is append-built.
func encodeEntryRecord(device string, e *Entry) []byte {
	b := make([]byte, 0, 128+len(e.Body))
	b = append(b, `<mb-entry device="`...)
	b = kxml.AppendEscapedAttr(b, device)
	b = append(b, `" seq="`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `" kind="`...)
	b = kxml.AppendEscapedAttr(b, e.Kind)
	b = append(b, `" agent="`...)
	b = kxml.AppendEscapedAttr(b, e.AgentID)
	b = append(b, `" event="`...)
	b = kxml.AppendEscapedAttr(b, e.EventID)
	b = append(b, `" enq="`...)
	b = strconv.AppendInt(b, e.Enqueued.UnixNano(), 10)
	b = append(b, `">`...)
	b = kxml.AppendEscapedText(b, string(e.Body))
	b = append(b, `</mb-entry>`...)
	return b
}

func fillEntry(n *kxml.Node, e *Entry) {
	n.SetAttr("seq", strconv.FormatUint(e.Seq, 10))
	n.SetAttr("kind", e.Kind)
	n.SetAttr("agent", e.AgentID)
	n.SetAttr("event", e.EventID)
	n.SetAttr("enq", strconv.FormatInt(e.Enqueued.UnixNano(), 10))
	if len(e.Body) > 0 {
		n.AddText(string(e.Body))
	}
}

func entryFrom(n *kxml.Node) (*Entry, error) {
	seq, err := strconv.ParseUint(n.AttrDefault("seq", ""), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("push: entry seq: %w", err)
	}
	enq, _ := strconv.ParseInt(n.AttrDefault("enq", "0"), 10, 64)
	e := &Entry{
		Seq:     seq,
		Kind:    n.AttrDefault("kind", ""),
		AgentID: n.AttrDefault("agent", ""),
		EventID: n.AttrDefault("event", ""),
	}
	if enq != 0 {
		e.Enqueued = time.Unix(0, enq)
	}
	if txt := n.TextContent(); txt != "" {
		e.Body = []byte(txt)
	}
	return e, nil
}

// metaState is the decoded form of a device's meta record.
type metaState struct {
	next    uint64
	cursor  uint64
	evicted uint64
	token   string
	tenant  string
	dedup   []dedupEvent
}

type dedupEvent struct {
	id  string
	seq uint64
	at  int64 // unix nanoseconds; 0 in records from before aging
}

// metaDedupPersist bounds how many dedup event ids the meta record
// carries. The full in-memory window (dedupWindow) still filters
// replays while the process lives; the persisted tail only needs to
// cover replays arriving shortly after a crash (a journal-resumed
// journey re-delivering its result), so a small bound keeps the
// meta rewrite — which happens on every enqueue and ack — cheap.
const metaDedupPersist = 64

// encodeMetaRecord renders a device's watermark/cursor/dedup state.
// It sits on the enqueue/ack path, so the document is built with
// direct byte appends instead of a node tree. Caller holds mb.mu.
func encodeMetaRecord(mb *mailbox) []byte {
	order := mb.dedupOrder
	if len(order) > metaDedupPersist {
		order = order[len(order)-metaDedupPersist:]
	}
	// Size the buffer to this mailbox, not the worst case: the record is
	// rewritten on every enqueue and ack, and the old fixed 2.2KB
	// allocation dominated the per-delivery garbage for the common
	// near-empty window.
	size := 96 + len(mb.device) + len(mb.token) + len(mb.tenant)
	for _, rec := range order {
		size += len(rec.id) + 56 // <e seq="..." at="...">id</e>
	}
	b := make([]byte, 0, size)
	b = append(b, `<mb-meta device="`...)
	b = kxml.AppendEscapedAttr(b, mb.device)
	b = append(b, `" next="`...)
	b = strconv.AppendUint(b, mb.nextSeq, 10)
	b = append(b, `" cursor="`...)
	b = strconv.AppendUint(b, mb.cursor, 10)
	b = append(b, `" evicted="`...)
	b = strconv.AppendUint(b, mb.evicted, 10)
	b = append(b, `" token="`...)
	b = kxml.AppendEscapedAttr(b, mb.token)
	// Omitted for the default account, so single-tenant records stay
	// byte-identical to the pre-§12 format.
	if mb.tenant != "" {
		b = append(b, `" tenant="`...)
		b = kxml.AppendEscapedAttr(b, mb.tenant)
	}
	b = append(b, `">`...)
	for _, rec := range order {
		b = append(b, `<e seq="`...)
		b = strconv.AppendUint(b, mb.dedup[rec.id], 10)
		b = append(b, `" at="`...)
		b = strconv.AppendInt(b, rec.at.UnixNano(), 10)
		b = append(b, `">`...)
		b = kxml.AppendEscapedText(b, rec.id)
		b = append(b, `</e>`...)
	}
	b = append(b, `</mb-meta>`...)
	return b
}

// parseRecord decodes one backing-store record into either an entry or
// a meta state (the other return is nil).
func parseRecord(data []byte) (device string, e *Entry, meta *metaState, err error) {
	root, err := kxml.ParseBytes(data)
	if err != nil {
		return "", nil, nil, err
	}
	device = root.AttrDefault("device", "")
	if device == "" {
		return "", nil, nil, fmt.Errorf("push: record missing device")
	}
	switch root.Name {
	case "mb-entry":
		e, err = entryFrom(root)
		return device, e, nil, err
	case "mb-meta":
		m := &metaState{}
		m.next, _ = strconv.ParseUint(root.AttrDefault("next", "0"), 10, 64)
		m.cursor, _ = strconv.ParseUint(root.AttrDefault("cursor", "0"), 10, 64)
		m.evicted, _ = strconv.ParseUint(root.AttrDefault("evicted", "0"), 10, 64)
		m.token = root.AttrDefault("token", "")
		m.tenant = root.AttrDefault("tenant", "")
		for _, c := range root.FindAll("e") {
			seq, _ := strconv.ParseUint(c.AttrDefault("seq", "0"), 10, 64)
			at, _ := strconv.ParseInt(c.AttrDefault("at", "0"), 10, 64)
			m.dedup = append(m.dedup, dedupEvent{id: c.TextContent(), seq: seq, at: at})
		}
		return device, nil, m, nil
	default:
		return "", nil, nil, fmt.Errorf("push: unknown record type %q", root.Name)
	}
}

// EncodeEntries renders the mailbox document a gateway serves to a
// polling device: the pending entries, the watermark the reader should
// ack once processed, and the device's lifetime eviction count.
func EncodeEntries(device string, entries []*Entry, watermark, evicted uint64) []byte {
	return encodeMailboxDoc(device, entries, watermark, evicted, "", "")
}

// EncodeExport renders the migration document one gateway serves to a
// peer pulling a device's mailbox: EncodeEntries plus the device's
// access token (so the device keeps authenticating at its new edge)
// and its tenant binding (so the new edge bills the mailbox to the
// same account). Export documents travel only on the
// secret-authenticated /cluster/ channel — never to devices.
func EncodeExport(device string, entries []*Entry, watermark uint64, token, tenant string) []byte {
	return encodeMailboxDoc(device, entries, watermark, 0, token, tenant)
}

func encodeMailboxDoc(device string, entries []*Entry, watermark, evicted uint64, token, tenant string) []byte {
	n := kxml.NewElement("mailbox")
	n.SetAttr("device", device)
	n.SetAttr("next", strconv.FormatUint(watermark, 10))
	n.SetAttr("evicted", strconv.FormatUint(evicted, 10))
	if token != "" {
		n.SetAttr("token", token)
	}
	if tenant != "" {
		n.SetAttr("tenant", tenant)
	}
	for _, e := range entries {
		fillEntry(n.AddElement("entry"), e)
	}
	return n.EncodeDocument()
}

// ParseEntries decodes a mailbox document. token and tenant are only
// present on migration exports.
func ParseEntries(doc []byte) (device string, entries []*Entry, watermark, evicted uint64, token, tenant string, err error) {
	root, err := kxml.ParseBytes(doc)
	if err != nil {
		return "", nil, 0, 0, "", "", err
	}
	if root.Name != "mailbox" {
		return "", nil, 0, 0, "", "", fmt.Errorf("push: expected mailbox document, got %q", root.Name)
	}
	device = root.AttrDefault("device", "")
	watermark, _ = strconv.ParseUint(root.AttrDefault("next", "0"), 10, 64)
	evicted, _ = strconv.ParseUint(root.AttrDefault("evicted", "0"), 10, 64)
	token = root.AttrDefault("token", "")
	tenant = root.AttrDefault("tenant", "")
	for _, c := range root.FindAll("entry") {
		e, err := entryFrom(c)
		if err != nil {
			return "", nil, 0, 0, "", "", err
		}
		entries = append(entries, e)
	}
	return device, entries, watermark, evicted, token, tenant, nil
}

// Package push is the disconnection-tolerant device-session subsystem:
// a durable, quota-bounded mailbox per device, plus the delivery
// machinery the gateway layers on top of it (DESIGN.md §7).
//
// PDAgent's premise is that wireless devices are resource-poor and
// intermittently connected — the agent roams so the device does not
// have to stay online. The mailbox closes the last synchronous gap in
// that story: result documents, status changes and management
// notifications are enqueued the moment they happen, whether or not the
// device is reachable, and survive gateway crashes when the Hub is
// backed by a persistent rms.Store (exactly like the agent journal).
//
// Delivery model:
//
//   - every entry gets a per-device, monotonically increasing sequence
//     number; the device acknowledges a watermark ("cursor") and is
//     then served only entries beyond it, so a reconnecting device
//     never sees a duplicate within one mailbox;
//   - enqueues are deduplicated by a caller-supplied event id (bounded
//     per-device window, persisted), so a crash-replayed journey or a
//     retried cluster relay cannot create a second copy of the same
//     result;
//   - connected devices get wait-free fan-out: Wait hands out one
//     shared channel per device that Enqueue closes, so a parked
//     long-poll wakes the instant mail arrives without queueing;
//   - disconnected devices accumulate store-and-forward entries,
//     bounded by a per-device quota (oldest expendable — non-result —
//     entries evicted first, then oldest overall) and an optional TTL;
//     every eviction is counted and surfaced to the device, so a lost
//     notification is visible, never silent.
//
// The Hub also supports mailbox migration between clustered gateways
// (Export / Import / Ack): the mailbox follows the device to whichever
// member it reconnects through, with on-demand pull as repair.
package push

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pdagent/internal/rms"
	"pdagent/internal/tenant"
)

// Entry kinds.
const (
	// KindResult carries a result document; never evicted before
	// expendable kinds.
	KindResult = "result"
	// KindStatus carries an agent status change (disposed, expired...).
	KindStatus = "status"
	// KindManage carries a management notification (e.g. a clone id).
	KindManage = "manage"
)

// DefaultQuota bounds each device's pending entries when the config
// does not say otherwise.
const DefaultQuota = 256

// dedupWindow is the minimum per-device window of remembered event
// ids. The effective window is max(dedupWindow, 2×quota) — it must
// exceed the quota, or a still-pending entry could outlive its own
// dedup memory and a retried relay would enqueue a second copy.
const dedupWindow = 512

// DefaultDedupTTL is how long a delivered entry's event id stays in
// the dedup window when the config does not say otherwise. Retries
// that need dedup — a crash-replayed journey, a re-sent cluster relay,
// a re-pulled migration export — arrive within seconds to minutes of
// the original; ids older than this are dead weight, and a fleet of
// drained idle devices would otherwise retain its entire dedup
// high-water mark forever (the churn harness measured ~8.9KB per idle
// device of exactly this residue).
const DefaultDedupTTL = 15 * time.Minute

// Config configures a Hub.
type Config struct {
	// Store is the backing record store. A persistent store (e.g.
	// rms.FileStore) makes mailboxes survive gateway crashes; required.
	Store rms.Store
	// TTL expires entries that sat undelivered longer than this
	// (0 = keep until acked or evicted by quota).
	TTL time.Duration
	// DedupTTL ages event ids out of the dedup window once every entry
	// at or below their seq is acknowledged and no retry can plausibly
	// still be in flight (0 = DefaultDedupTTL, negative = keep ids for
	// the full count-bounded window forever). Ids for unacknowledged
	// entries never age out, whatever the TTL.
	DedupTTL time.Duration
	// Quota bounds each device's pending entries (default DefaultQuota).
	Quota int
	// Clock overrides the time source (tests).
	Clock func() time.Time
	// Logf, when set, receives diagnostics.
	Logf func(format string, args ...any)
}

// Entry is one mailbox item.
type Entry struct {
	// Seq is the per-device sequence number (1-based, monotonic).
	Seq uint64
	// Kind is one of KindResult, KindStatus, KindManage.
	Kind string
	// AgentID names the journey the entry is about.
	AgentID string
	// EventID identifies the underlying event for enqueue dedup
	// (e.g. "result:ag-...").
	EventID string
	// Body is the payload (a result document, a short note).
	Body []byte
	// Enqueued is when the entry was created (drives TTL).
	Enqueued time.Time

	recID int // backing record, 0 for wire-decoded entries
}

// Stats is a snapshot of hub counters.
type Stats struct {
	// Enqueued counts accepted entries (duplicates excluded).
	Enqueued uint64
	// Delivered counts entries acknowledged by devices (including
	// entries handed to a migrating peer).
	Delivered uint64
	// Duplicates counts enqueues suppressed by the event-id window.
	Duplicates uint64
	// EvictedQuota / EvictedTTL count entries dropped before delivery.
	EvictedQuota uint64
	EvictedTTL   uint64
	// Devices is the number of mailboxes; Connected the number of
	// devices with an active session (e.g. a parked long-poll).
	Devices   int
	Connected int
	// Pending is the total undelivered entries across devices.
	Pending int
	// DirtyDevices is the sweep working set: mailboxes currently
	// holding pending entries or dedup memory. Sweeps and stats walk
	// only these, so a million idle drained devices cost nothing to
	// scan.
	DirtyDevices int
	// DedupWindow is the effective per-device dedup window
	// (max(dedupWindow, 2×quota)); DedupIDs the event ids currently
	// remembered across dirty mailboxes — together they bound and
	// report the hub's dedup memory (§8's per-device budget).
	DedupWindow int
	DedupIDs    int
}

// Hub manages every device mailbox over one backing store.
type Hub struct {
	cfg Config
	// dedupLimit is the effective per-device dedup window:
	// max(dedupWindow, 2×quota).
	dedupLimit int
	// dedupTTL is the resolved Config.DedupTTL (0 = never age).
	dedupTTL time.Duration

	mu     sync.Mutex
	boxes  map[string]*mailbox
	closed bool
	// dirty holds the mailboxes with pending entries or dedup memory —
	// the only ones a sweep needs to visit. Guarded by mu; membership
	// mirrors mailbox.dirty (transitions happen under mb.mu, which may
	// take mu — never the reverse).
	dirty map[string]*mailbox
	// tbytes tallies pending payload bytes per tenant label (DESIGN.md
	// §12 mailbox quotas). Guarded by mu; charged and discharged under
	// the owning mb.mu at the same points mailbox.bytes moves.
	tbytes map[string]int64

	enqueued  atomic.Uint64
	delivered atomic.Uint64
	dups      atomic.Uint64
	evQuota   atomic.Uint64
	evTTL     atomic.Uint64
	connected atomic.Int64
	// pending gauges total undelivered entries, so Stats never walks
	// the fleet.
	pending atomic.Int64
}

// mailbox is one device's state. Guarded by its own mutex so traffic
// for unrelated devices never contends (the hub lock only guards the
// device map).
type mailbox struct {
	mu      sync.Mutex
	device  string
	entries []*Entry // pending, ascending seq
	nextSeq uint64   // next sequence number to assign
	cursor  uint64   // highest acknowledged seq
	evicted uint64   // entries this device lost to quota/TTL, ever
	metaRec int      // record id of the meta record (0 = not yet written)
	// token authenticates the device to the delivery endpoints. Minted
	// on the authenticated dispatch path, returned to the device in the
	// dispatch response, persisted with the meta record, and carried
	// along by mailbox migration — so only the device that proved a
	// subscription can read or acknowledge (destroy) its mail.
	token string
	// tenant is the account the mailbox bills to ("" = default). Bound
	// on the authenticated dispatch path like the token (first non-empty
	// binding wins), persisted with the meta record, carried by
	// migration exports.
	tenant string
	// bytes is the sum of pending entry payload sizes — the device's
	// contribution to its tenant's tbytes row.
	bytes int64

	// dedup maps event id -> seq; allocated on first use, released when
	// the window fully ages out (a Go map never returns bucket memory,
	// so an idle device must not keep an emptied one around).
	dedup      map[string]uint64
	dedupOrder []dedupRec // FIFO for the bounded, aging window
	dirty      bool       // tracked in Hub.dirty (entries or dedup live)

	signal chan struct{} // shared waiter channel, lazily created
	conns  int           // active sessions (presence)
}

// dedupRec is one remembered event id with its enqueue time, so the
// window ages by DedupTTL as well as by count.
type dedupRec struct {
	id string
	at time.Time
}

// NewHub opens a hub over the store, replaying any mailboxes already in
// it (entries at or below a device's persisted cursor — a crash between
// the cursor write and the entry deletes — are completed, not
// resurrected).
func NewHub(cfg Config) (*Hub, error) {
	if cfg.Store == nil {
		return nil, errors.New("push: config missing Store")
	}
	if cfg.Quota <= 0 {
		cfg.Quota = DefaultQuota
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	h := &Hub{cfg: cfg, dedupLimit: dedupWindow, boxes: map[string]*mailbox{},
		dirty: map[string]*mailbox{}, tbytes: map[string]int64{}}
	if min := 2 * cfg.Quota; min > h.dedupLimit {
		h.dedupLimit = min
	}
	switch {
	case cfg.DedupTTL == 0:
		h.dedupTTL = DefaultDedupTTL
	case cfg.DedupTTL > 0:
		h.dedupTTL = cfg.DedupTTL
	}
	if err := h.replay(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *Hub) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// replay rebuilds the in-memory mailboxes from the store.
func (h *Hub) replay() error {
	ids, err := h.cfg.Store.IDs()
	if err != nil {
		return fmt.Errorf("push: reading store: %w", err)
	}
	for _, id := range ids {
		data, err := h.cfg.Store.Get(id)
		if err != nil {
			return fmt.Errorf("push: record %d: %w", id, err)
		}
		dev, entry, meta, err := parseRecord(data)
		if err != nil {
			h.logf("push: dropping unparseable record %d: %v", id, err)
			_ = h.cfg.Store.Delete(id)
			continue
		}
		mb := h.box(dev)
		switch {
		case entry != nil:
			entry.recID = id
			mb.entries = append(mb.entries, entry)
		case meta != nil:
			// Later meta records supersede earlier ones (there should
			// be exactly one, but a crash can tear a rewrite).
			if mb.metaRec != 0 {
				_ = h.cfg.Store.Delete(mb.metaRec)
			}
			mb.metaRec = id
			mb.cursor = meta.cursor
			mb.evicted = meta.evicted
			mb.token = meta.token
			mb.tenant = meta.tenant
			if meta.next > mb.nextSeq {
				mb.nextSeq = meta.next
			}
			now := h.cfg.Clock()
			for _, ev := range meta.dedup {
				at := now
				if ev.at != 0 {
					at = time.Unix(0, ev.at)
				}
				h.rememberLocked(mb, ev.id, ev.seq, at)
			}
		}
	}
	var pending int64
	for _, mb := range h.boxes {
		sort.Slice(mb.entries, func(i, j int) bool { return mb.entries[i].Seq < mb.entries[j].Seq })
		// Drop entries already acknowledged (crash between the meta
		// write and the entry delete) and rebuild the dedup window from
		// whatever is still pending.
		kept := mb.entries[:0]
		for _, e := range mb.entries {
			if e.Seq <= mb.cursor {
				_ = h.cfg.Store.Delete(e.recID)
				continue
			}
			kept = append(kept, e)
			h.rememberLocked(mb, e.EventID, e.Seq, e.Enqueued)
			mb.bytes += int64(len(e.Body))
			if e.Seq >= mb.nextSeq {
				mb.nextSeq = e.Seq + 1
			}
		}
		mb.entries = kept
		pending += int64(len(kept))
		if mb.bytes > 0 {
			h.tbytes[tenant.Label(mb.tenant)] += mb.bytes
		}
		if mb.nextSeq == 0 {
			mb.nextSeq = mb.cursor + 1
		}
		if len(mb.entries) > 0 || len(mb.dedupOrder) > 0 {
			mb.dirty = true
			h.dirty[mb.device] = mb
		}
	}
	h.pending.Store(pending)
	return nil
}

// box returns (or creates) the mailbox for a device. Caller must hold
// no mailbox lock.
func (h *Hub) box(device string) *mailbox {
	h.mu.Lock()
	defer h.mu.Unlock()
	mb, ok := h.boxes[device]
	if !ok {
		// No dedup map yet: an idle device that never receives mail must
		// cost a bare struct, not map buckets (fleets are mostly idle).
		mb = &mailbox{device: device, nextSeq: 1}
		h.boxes[device] = mb
	}
	return mb
}

// lookup returns the mailbox without creating one.
func (h *Hub) lookup(device string) (*mailbox, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	mb, ok := h.boxes[device]
	return mb, ok
}

// rememberLocked records an event id in the bounded dedup window.
// Caller holds mb.mu (or has exclusive access during replay).
func (h *Hub) rememberLocked(mb *mailbox, eventID string, seq uint64, at time.Time) {
	if eventID == "" {
		return
	}
	if _, ok := mb.dedup[eventID]; ok {
		return
	}
	if mb.dedup == nil {
		mb.dedup = map[string]uint64{}
	}
	mb.dedup[eventID] = seq
	mb.dedupOrder = append(mb.dedupOrder, dedupRec{id: eventID, at: at})
	for len(mb.dedupOrder) > h.dedupLimit {
		delete(mb.dedup, mb.dedupOrder[0].id)
		mb.dedupOrder = mb.dedupOrder[1:]
	}
}

// pruneDedupLocked ages event ids past DedupTTL out of the window and
// reports whether anything changed. Ids whose entry is not yet
// acknowledged never age: a relay retry for them must still hit dedup,
// however late it arrives. Caller holds mb.mu.
func (h *Hub) pruneDedupLocked(mb *mailbox, now time.Time) bool {
	if h.dedupTTL <= 0 || len(mb.dedupOrder) == 0 {
		return false
	}
	i := 0
	for ; i < len(mb.dedupOrder); i++ {
		rec := mb.dedupOrder[i]
		if now.Sub(rec.at) <= h.dedupTTL {
			break
		}
		if mb.dedup[rec.id] > mb.cursor {
			break
		}
	}
	if i == 0 {
		return false
	}
	for _, rec := range mb.dedupOrder[:i] {
		delete(mb.dedup, rec.id)
	}
	if len(mb.dedup) == 0 {
		// Fully aged out: drop the map and slice wholesale. delete()
		// alone keeps a Go map's bucket array at its high-water size, so
		// an idle drained fleet would retain every byte of its busiest
		// hour — the single largest per-device cost the churn harness
		// found.
		mb.dedup = nil
		mb.dedupOrder = nil
		return true
	}
	// Copy the survivors to an exact-size slice: re-slicing forward
	// would keep the pruned ids' strings reachable via the shared
	// backing array. Prunes fire once per TTL window, so this copy is
	// not a hot path.
	rest := make([]dedupRec, len(mb.dedupOrder)-i)
	copy(rest, mb.dedupOrder[i:])
	mb.dedupOrder = rest
	return true
}

// chargeTenant moves a mailbox's pending-byte delta onto its tenant's
// tally. Caller holds mb.mu; takes h.mu briefly (that order is safe —
// same as updateDirtyLocked). Rows at zero are deleted so the tally
// map stays O(active tenants), not O(tenants ever seen).
func (h *Hub) chargeTenant(tenantID string, delta int64) {
	if delta == 0 {
		return
	}
	label := tenant.Label(tenantID)
	h.mu.Lock()
	if n := h.tbytes[label] + delta; n <= 0 {
		delete(h.tbytes, label)
	} else {
		h.tbytes[label] = n
	}
	h.mu.Unlock()
}

// BytesByTenant snapshots pending mailbox payload bytes per tenant
// label — the hub's contribution to §12 quota checks and usage gossip.
func (h *Hub) BytesByTenant() map[string]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]int64, len(h.tbytes))
	for k, v := range h.tbytes {
		out[k] = v
	}
	return out
}

// updateDirtyLocked moves the mailbox in or out of the hub's sweep
// working set when its state transitions. Caller holds mb.mu; takes
// h.mu (that order is safe — nothing takes mb.mu under h.mu).
func (h *Hub) updateDirtyLocked(mb *mailbox) {
	want := len(mb.entries) > 0 || len(mb.dedupOrder) > 0
	if want == mb.dirty {
		return
	}
	mb.dirty = want
	h.mu.Lock()
	if want {
		h.dirty[mb.device] = mb
	} else {
		delete(h.dirty, mb.device)
	}
	h.mu.Unlock()
}

// Enqueue appends an entry to a device's mailbox and wakes any parked
// waiters. A non-empty eventID dedups: if the same event was already
// enqueued (pending or within the remembered window), the original seq
// is returned with dup=true and nothing is written. The write order is
// entry record first, meta second — a crash between the two is repaired
// at replay (the pending entry re-seeds the dedup window).
func (h *Hub) Enqueue(device, kind, agentID, eventID string, body []byte) (seq uint64, dup bool, err error) {
	return h.enqueueAt(device, kind, agentID, eventID, body, h.cfg.Clock())
}

// enqueueAt is Enqueue with an explicit enqueue time (Import preserves
// the source gateway's timestamps so TTL counts from the real event).
func (h *Hub) enqueueAt(device, kind, agentID, eventID string, body []byte, at time.Time) (seq uint64, dup bool, err error) {
	mb := h.box(device)
	mb.mu.Lock()
	defer mb.mu.Unlock()

	if eventID != "" {
		if prev, ok := mb.dedup[eventID]; ok {
			h.dups.Add(1)
			return prev, true, nil
		}
	}

	now := h.cfg.Clock()
	h.expireLocked(mb, now)
	h.pruneDedupLocked(mb, now)
	for len(mb.entries) >= h.cfg.Quota {
		h.evictOneLocked(mb)
	}

	e := &Entry{
		Seq:      mb.nextSeq,
		Kind:     kind,
		AgentID:  agentID,
		EventID:  eventID,
		Body:     body,
		Enqueued: at,
	}
	recID, err := h.cfg.Store.Add(encodeEntryRecord(device, e))
	if err != nil {
		return 0, false, fmt.Errorf("push: storing entry for %s: %w", device, err)
	}
	e.recID = recID
	mb.nextSeq++
	mb.entries = append(mb.entries, e)
	mb.bytes += int64(len(e.Body))
	h.chargeTenant(mb.tenant, int64(len(e.Body)))
	h.rememberLocked(mb, eventID, e.Seq, now)
	h.writeMetaLocked(mb)
	h.enqueued.Add(1)
	h.pending.Add(1)
	h.updateDirtyLocked(mb)

	// Wait-free fan-out: closing the shared signal channel wakes every
	// parked long-poll for this device at once.
	if mb.signal != nil {
		close(mb.signal)
		mb.signal = nil
	}
	return e.Seq, false, nil
}

// evictOneLocked drops one pending entry to make room: the oldest
// expendable (non-result) entry if any, else the oldest overall. The
// loss is counted and surfaced through the device's evicted counter.
func (h *Hub) evictOneLocked(mb *mailbox) {
	if len(mb.entries) == 0 {
		return
	}
	victim := 0
	for i, e := range mb.entries {
		if e.Kind != KindResult {
			victim = i
			break
		}
	}
	e := mb.entries[victim]
	_ = h.cfg.Store.Delete(e.recID)
	mb.entries = append(mb.entries[:victim], mb.entries[victim+1:]...)
	mb.bytes -= int64(len(e.Body))
	h.chargeTenant(mb.tenant, -int64(len(e.Body)))
	mb.evicted++
	h.evQuota.Add(1)
	h.pending.Add(-1)
	h.logf("push: mailbox %s over quota, evicted seq %d (%s %s)", mb.device, e.Seq, e.Kind, e.AgentID)
}

// expireLocked lazily drops entries past the TTL.
func (h *Hub) expireLocked(mb *mailbox, now time.Time) {
	if h.cfg.TTL <= 0 {
		return
	}
	kept := mb.entries[:0]
	for _, e := range mb.entries {
		if now.Sub(e.Enqueued) > h.cfg.TTL {
			_ = h.cfg.Store.Delete(e.recID)
			mb.bytes -= int64(len(e.Body))
			h.chargeTenant(mb.tenant, -int64(len(e.Body)))
			mb.evicted++
			h.evTTL.Add(1)
			h.pending.Add(-1)
			continue
		}
		kept = append(kept, e)
	}
	if len(kept) != len(mb.entries) {
		mb.entries = kept
		h.writeMetaLocked(mb)
		h.updateDirtyLocked(mb)
	}
}

// writeMetaLocked persists the device's watermark/cursor/dedup state.
// Best-effort beyond the entry records themselves: a torn meta is
// rebuilt from the pending entries at replay.
func (h *Hub) writeMetaLocked(mb *mailbox) {
	doc := encodeMetaRecord(mb)
	if mb.metaRec != 0 {
		if err := h.cfg.Store.Set(mb.metaRec, doc); err == nil {
			return
		}
		// Fall through: the record may be gone (store swapped in tests).
	}
	id, err := h.cfg.Store.Add(doc)
	if err != nil {
		h.logf("push: writing meta for %s: %v", mb.device, err)
		return
	}
	mb.metaRec = id
}

// Ack acknowledges every entry with seq <= upTo: the cursor advances
// (persisted first) and the entries are deleted. Returns how many
// entries were retired. Acking an unknown device or an old watermark is
// a no-op.
func (h *Hub) Ack(device string, upTo uint64) (int, error) {
	mb, ok := h.lookup(device)
	if !ok {
		return 0, nil
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return h.ackLocked(mb, upTo), nil
}

func (h *Hub) ackLocked(mb *mailbox, upTo uint64) int {
	if upTo <= mb.cursor {
		return 0
	}
	if upTo >= mb.nextSeq {
		// No entry with this seq was ever assigned here: the watermark
		// belongs to another mailbox generation (e.g. the gateway lost
		// a volatile store and restarted its seq space while the device
		// kept its durable cursor). Ignore it — clamping would advance
		// the cursor past, and delete, mail the device never saw.
		return 0
	}
	mb.cursor = upTo
	// Cursor first, deletes second: if we crash in between, replay
	// drops the already-acked entries instead of resurrecting them.
	h.writeMetaLocked(mb)
	n := 0
	kept := mb.entries[:0]
	for _, e := range mb.entries {
		if e.Seq <= upTo {
			_ = h.cfg.Store.Delete(e.recID)
			mb.bytes -= int64(len(e.Body))
			h.chargeTenant(mb.tenant, -int64(len(e.Body)))
			n++
			continue
		}
		kept = append(kept, e)
	}
	mb.entries = kept
	h.delivered.Add(uint64(n))
	h.pending.Add(int64(-n))
	h.updateDirtyLocked(mb)
	return n
}

// Poll acknowledges `after` as the device's new cursor, then returns up
// to max pending entries beyond it (copies — callers own them), the
// watermark the device should persist once it processed them, and the
// device's lifetime eviction count (so lost entries are visible, never
// silent). max <= 0 means no bound.
func (h *Hub) Poll(device string, after uint64, max int) (entries []*Entry, watermark, evicted uint64, err error) {
	mb := h.box(device)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	h.ackLocked(mb, after)
	h.expireLocked(mb, h.cfg.Clock())
	watermark = mb.cursor
	for _, e := range mb.entries {
		if e.Seq <= mb.cursor {
			continue
		}
		if max > 0 && len(entries) >= max {
			break
		}
		cp := *e
		cp.recID = 0
		entries = append(entries, &cp)
		watermark = e.Seq
	}
	return entries, watermark, mb.evicted, nil
}

// Wait returns a channel that is closed when the device's mailbox has
// (or receives) pending mail beyond the cursor. If mail is already
// pending the channel comes back closed, so the arm-then-poll race of a
// long-poll loop cannot miss a wakeup.
func (h *Hub) Wait(device string) <-chan struct{} {
	mb := h.box(device)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if h.closedNow() || pendingLocked(mb) > 0 {
		return closedChan
	}
	if mb.signal == nil {
		mb.signal = make(chan struct{})
	}
	return mb.signal
}

func (h *Hub) closedNow() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

func pendingLocked(mb *mailbox) int {
	n := 0
	for _, e := range mb.entries {
		if e.Seq > mb.cursor {
			n++
		}
	}
	return n
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Connect marks a device session open (presence) and returns the
// matching disconnect. Long-polls hold it while parked.
func (h *Hub) Connect(device string) (disconnect func()) {
	mb := h.box(device)
	mb.mu.Lock()
	mb.conns++
	mb.mu.Unlock()
	h.connected.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mb.mu.Lock()
			mb.conns--
			mb.mu.Unlock()
			h.connected.Add(-1)
		})
	}
}

// Connected reports whether the device has at least one open session.
func (h *Hub) Connected(device string) bool {
	mb, ok := h.lookup(device)
	if !ok {
		return false
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.conns > 0
}

// Known reports whether the device has a mailbox. The gateway's
// unauthenticated delivery endpoints check it so a scanner looping
// over made-up device names cannot grow the hub.
func (h *Hub) Known(device string) bool {
	_, ok := h.lookup(device)
	return ok
}

// Touch creates the device's (empty) mailbox if it does not exist and
// returns its access token, minting one on first use. The gateway
// calls it from the authenticated dispatch path, so a device becomes
// Known — and its long-polls park properly, even before its first
// notification — exactly when it proves a subscription, and receives
// the token the delivery endpoints demand.
func (h *Hub) Touch(device string) string {
	mb := h.box(device)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.token == "" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			h.logf("push: minting token for %s: %v", device, err)
			return ""
		}
		mb.token = hex.EncodeToString(b[:])
		h.writeMetaLocked(mb)
	}
	return mb.token
}

// CheckToken reports whether tok is the device's mailbox token
// (constant-time). Unknown devices and empty tokens never match.
func (h *Hub) CheckToken(device, tok string) bool {
	mb, ok := h.lookup(device)
	if !ok || tok == "" {
		return false
	}
	mb.mu.Lock()
	want := mb.token
	mb.mu.Unlock()
	return want != "" && subtle.ConstantTimeCompare([]byte(want), []byte(tok)) == 1
}

// AdoptToken installs a token migrated from another gateway, if the
// local mailbox has none — the device keeps authenticating with the
// token its original edge minted.
func (h *Hub) AdoptToken(device, tok string) {
	if tok == "" {
		return
	}
	mb := h.box(device)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.token == "" {
		mb.token = tok
		h.writeMetaLocked(mb)
	}
}

// TokenOf returns the device's current token ("" if none) — for the
// migration export.
func (h *Hub) TokenOf(device string) string {
	mb, ok := h.lookup(device)
	if !ok {
		return ""
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.token
}

// SetTenant binds a device's mailbox to a tenant account. Like the
// token, the binding comes from the authenticated dispatch path (the
// tenant was resolved from the subscription table, never from the
// device) or from a migration adopt; the first non-empty binding wins
// and is persisted with the meta record, so the account survives
// restarts and follows the mailbox across members. Bytes already
// pending under the default account move to the bound one.
func (h *Hub) SetTenant(device, tenantID string) {
	if tenantID == "" {
		return
	}
	mb := h.box(device)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.tenant != "" {
		return
	}
	h.chargeTenant(mb.tenant, -mb.bytes)
	mb.tenant = tenantID
	h.chargeTenant(mb.tenant, mb.bytes)
	h.writeMetaLocked(mb)
}

// TenantOf returns the device's bound tenant account ("" = default) —
// for the migration export.
func (h *Hub) TenantOf(device string) string {
	mb, ok := h.lookup(device)
	if !ok {
		return ""
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.tenant
}

// Pending returns the device's undelivered entry count.
func (h *Hub) Pending(device string) int {
	mb, ok := h.lookup(device)
	if !ok {
		return 0
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return pendingLocked(mb)
}

// SweepExpired drops every entry past the TTL and every dedup id past
// DedupTTL, visiting only mailboxes that hold memory (the dirty set —
// O(active), not O(devices)). Returns how many entries were dropped.
func (h *Hub) SweepExpired() int {
	if h.cfg.TTL <= 0 && h.dedupTTL <= 0 {
		return 0
	}
	before := h.evTTL.Load()
	now := h.cfg.Clock()
	for _, mb := range h.dirtySnapshot() {
		mb.mu.Lock()
		h.expireLocked(mb, now)
		if h.pruneDedupLocked(mb, now) {
			// Shrink the persisted meta too: the stored record otherwise
			// keeps the full dedup tail alive in the backing store.
			h.writeMetaLocked(mb)
			h.updateDirtyLocked(mb)
		}
		mb.mu.Unlock()
	}
	return int(h.evTTL.Load() - before)
}

func (h *Hub) dirtySnapshot() []*mailbox {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*mailbox, 0, len(h.dirty))
	for _, mb := range h.dirty {
		out = append(out, mb)
	}
	return out
}

// Stats returns a counter snapshot. O(1) — a million-device hub is
// polled for metrics without walking the fleet.
func (h *Hub) Stats() Stats {
	s := Stats{
		Enqueued:     h.enqueued.Load(),
		Delivered:    h.delivered.Load(),
		Duplicates:   h.dups.Load(),
		EvictedQuota: h.evQuota.Load(),
		EvictedTTL:   h.evTTL.Load(),
		Connected:    int(h.connected.Load()),
		Pending:      int(h.pending.Load()),
	}
	s.DedupWindow = h.dedupLimit
	h.mu.Lock()
	s.Devices = len(h.boxes)
	s.DirtyDevices = len(h.dirty)
	dirty := make([]*mailbox, 0, len(h.dirty))
	for _, mb := range h.dirty {
		dirty = append(dirty, mb)
	}
	h.mu.Unlock()
	// Dedup memory lives only on dirty mailboxes; count it outside the
	// hub lock (per-box locks order under hub like everywhere else).
	for _, mb := range dirty {
		mb.mu.Lock()
		s.DedupIDs += len(mb.dedupOrder)
		mb.mu.Unlock()
	}
	return s
}

// Close wakes every parked waiter (their channels close) so long-polls
// racing a shutdown return instead of hanging. The store is left to its
// owner.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	boxes := make([]*mailbox, 0, len(h.boxes))
	for _, mb := range h.boxes {
		boxes = append(boxes, mb)
	}
	h.mu.Unlock()
	for _, mb := range boxes {
		mb.mu.Lock()
		if mb.signal != nil {
			close(mb.signal)
			mb.signal = nil
		}
		mb.mu.Unlock()
	}
}

// --- migration (the mailbox follows the device) -------------------------

// Export returns copies of the device's pending entries, for a peer
// gateway pulling the mailbox to wherever the device reconnected. The
// entries stay here until the peer acknowledges the transfer (AckExport
// / Ack), so a lost response cannot lose mail.
func (h *Hub) Export(device string) []*Entry {
	entries, _, _, _ := h.Poll(device, 0, 0)
	return entries
}

// Import adopts entries exported by another gateway into the device's
// local mailbox. Entries are re-sequenced onto the local seq space (the
// device's cursor is per-gateway, so source seqs mean nothing here) and
// deduplicated by event id, making a re-pulled export idempotent. The
// original enqueue times are kept so TTL keeps counting from the real
// event. Returns how many entries were adopted.
func (h *Hub) Import(device string, entries []*Entry) (int, error) {
	n := 0
	for _, e := range entries {
		at := e.Enqueued
		if at.IsZero() {
			at = h.cfg.Clock()
		}
		_, dup, err := h.enqueueAt(device, e.Kind, e.AgentID, e.EventID, e.Body, at)
		if err != nil {
			return n, err
		}
		if !dup {
			n++
		}
	}
	return n, nil
}

// Devices lists every device with a mailbox, sorted.
func (h *Hub) Devices() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.boxes))
	for d := range h.boxes {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

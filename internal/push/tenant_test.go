package push

import (
	"sync"
	"testing"

	"pdagent/internal/rms"
	"pdagent/internal/tenant"
)

func TestSetTenantFirstBindingWinsAndMovesBytes(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), nil)
	mustEnqueue(t, h, "alice", KindResult, "ag-1", "result:ag-1", "12345678")

	// Before any binding the bytes bill to the default account.
	if got := h.BytesByTenant()[tenant.DefaultLabel]; got != 8 {
		t.Fatalf("default bytes = %d, want 8", got)
	}
	h.SetTenant("alice", "acme")
	by := h.BytesByTenant()
	if by[tenant.DefaultLabel] != 0 || by["acme"] != 8 {
		t.Fatalf("after bind: %v, want 8 under acme", by)
	}
	if h.TenantOf("alice") != "acme" {
		t.Fatalf("TenantOf = %q, want acme", h.TenantOf("alice"))
	}

	// First non-empty binding wins; later bindings (a stale migration
	// adopt, say) must not rebill the mailbox.
	h.SetTenant("alice", "rival")
	if h.TenantOf("alice") != "acme" {
		t.Fatalf("rebind took: TenantOf = %q", h.TenantOf("alice"))
	}
	h.SetTenant("bob", "")
	if h.TenantOf("bob") != "" {
		t.Fatalf("empty bind took: %q", h.TenantOf("bob"))
	}
}

func TestTenantBytesFollowAckEvictExpiry(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), func(c *Config) { c.Quota = 2 })
	h.SetTenant("alice", "acme")
	mustEnqueue(t, h, "alice", KindResult, "ag-1", "e1", "aaaa")
	mustEnqueue(t, h, "alice", KindStatus, "ag-2", "e2", "bb")
	if got := h.BytesByTenant()["acme"]; got != 6 {
		t.Fatalf("bytes = %d, want 6", got)
	}

	// Over-quota enqueue evicts the oldest expendable entry (e2, the
	// status note): its bytes must come off the tally.
	mustEnqueue(t, h, "alice", KindResult, "ag-3", "e3", "ccc")
	if got := h.BytesByTenant()["acme"]; got != 7 {
		t.Fatalf("bytes after evict = %d, want 7 (4+3)", got)
	}

	// Acking everything drains the tally and deletes the row.
	if _, err := h.Ack("alice", 3); err != nil {
		t.Fatal(err)
	}
	if by := h.BytesByTenant(); len(by) != 0 {
		t.Fatalf("tally not empty after full ack: %v", by)
	}
}

func TestTenantBindingSurvivesRestart(t *testing.T) {
	store := rms.NewMemStore("mb", 0)
	h := newTestHub(t, store, nil)
	mustEnqueue(t, h, "alice", KindResult, "ag-1", "e1", "payload")
	h.SetTenant("alice", "acme")
	mustEnqueue(t, h, "bob", KindResult, "ag-2", "e2", "xy")
	h.Close()

	h2 := newTestHub(t, store, nil)
	defer h2.Close()
	if h2.TenantOf("alice") != "acme" {
		t.Fatalf("tenant lost across restart: %q", h2.TenantOf("alice"))
	}
	by := h2.BytesByTenant()
	if by["acme"] != 7 || by[tenant.DefaultLabel] != 2 {
		t.Fatalf("replayed tally = %v, want acme:7 default:2", by)
	}
}

func TestExportImportCarriesTenant(t *testing.T) {
	src := newTestHub(t, rms.NewMemStore("src", 0), nil)
	dst := newTestHub(t, rms.NewMemStore("dst", 0), nil)
	defer src.Close()
	defer dst.Close()
	mustEnqueue(t, src, "alice", KindResult, "ag-1", "e1", "hello")
	src.SetTenant("alice", "acme")

	// The wire document carries the binding...
	doc := EncodeExport("alice", src.Export("alice"), 1, src.TokenOf("alice"), src.TenantOf("alice"))
	_, entries, _, _, _, ten, err := ParseEntries(doc)
	if err != nil {
		t.Fatal(err)
	}
	if ten != "acme" {
		t.Fatalf("export tenant = %q, want acme", ten)
	}
	// ...and the importing edge bills the adopted mail to it.
	if _, err := dst.Import("alice", entries); err != nil {
		t.Fatal(err)
	}
	dst.SetTenant("alice", ten)
	if got := dst.BytesByTenant()["acme"]; got != 5 {
		t.Fatalf("imported bytes = %d, want 5", got)
	}
}

func TestConcurrentEnqueueAckSetTenant(t *testing.T) {
	h := newTestHub(t, rms.NewMemStore("mb", 0), nil)
	defer h.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				dev := []string{"alice", "bob"}[i%2]
				if _, _, err := h.Enqueue(dev, KindStatus, "ag", "", []byte("x")); err != nil {
					t.Error(err)
					return
				}
				h.SetTenant(dev, "acme")
				if i%5 == 0 {
					if _, err := h.Ack(dev, uint64(i)); err != nil {
						t.Error(err)
						return
					}
					h.BytesByTenant()
				}
			}
		}(g)
	}
	wg.Wait()

	// Whatever interleaving happened, the tally must equal the bytes
	// still pending — conservation, not a particular number.
	var want int64
	for _, dev := range []string{"alice", "bob"} {
		want += int64(h.Pending(dev)) // 1 byte per entry
	}
	var got int64
	for _, v := range h.BytesByTenant() {
		got += v
	}
	if got != want {
		t.Fatalf("tally %d != pending bytes %d", got, want)
	}
}

package push

import (
	"strconv"
	"testing"
	"time"

	"pdagent/internal/rms"
)

var dedupEpoch = time.Unix(1_700_000_000, 0)

// TestDedupTTLAgesAckedIDs: once an event's entry is acknowledged and
// the TTL passes, its id leaves the dedup window — a very late replay
// is accepted as a new event (the cursor protects the device, and
// holding ids forever would grow the hub by every event ever sent).
func TestDedupTTLAgesAckedIDs(t *testing.T) {
	var vnow time.Duration
	h := newTestHub(t, rms.NewMemStore("mb", 0), func(c *Config) {
		c.DedupTTL = time.Minute
		c.Clock = func() time.Time { return dedupEpoch.Add(vnow) }
	})
	seq := mustEnqueue(t, h, "d", KindResult, "ag-1", "result:ag-1", "<r/>")
	if _, err := h.Ack("d", seq); err != nil {
		t.Fatal(err)
	}

	// Within the TTL a replay is still suppressed.
	vnow = 30 * time.Second
	h.SweepExpired()
	if _, dup, _ := h.Enqueue("d", KindResult, "ag-1", "result:ag-1", []byte("<r/>")); !dup {
		t.Fatal("replay inside the dedup TTL was not suppressed")
	}

	// Past the TTL the id has aged out: the same event id is accepted.
	vnow = 2 * time.Minute
	h.SweepExpired()
	if _, dup, err := h.Enqueue("d", KindResult, "ag-1", "result:ag-1", []byte("<r/>")); err != nil || dup {
		t.Fatalf("enqueue after dedup aging: dup=%v err=%v, want accepted", dup, err)
	}
}

// TestDedupUnackedNeverAges: an id whose entry is still pending keeps
// its dedup protection forever — the retry of an undelivered result
// must never produce a second copy, no matter how late it arrives.
func TestDedupUnackedNeverAges(t *testing.T) {
	var vnow time.Duration
	h := newTestHub(t, rms.NewMemStore("mb", 0), func(c *Config) {
		c.DedupTTL = time.Minute
		c.Clock = func() time.Time { return dedupEpoch.Add(vnow) }
	})
	mustEnqueue(t, h, "d", KindResult, "ag-1", "result:ag-1", "<r/>")

	vnow = 365 * 24 * time.Hour
	h.SweepExpired()
	if _, dup, _ := h.Enqueue("d", KindResult, "ag-1", "result:ag-1", []byte("<r/>")); !dup {
		t.Fatal("replay of an unacknowledged entry was not suppressed")
	}
}

// TestDedupTTLNegativeKeepsForever: DedupTTL < 0 opts out of aging —
// ids stay for the full count-bounded window regardless of time.
func TestDedupTTLNegativeKeepsForever(t *testing.T) {
	var vnow time.Duration
	h := newTestHub(t, rms.NewMemStore("mb", 0), func(c *Config) {
		c.DedupTTL = -1
		c.Clock = func() time.Time { return dedupEpoch.Add(vnow) }
	})
	seq := mustEnqueue(t, h, "d", KindResult, "ag-1", "result:ag-1", "<r/>")
	if _, err := h.Ack("d", seq); err != nil {
		t.Fatal(err)
	}
	vnow = 365 * 24 * time.Hour
	h.SweepExpired()
	if _, dup, _ := h.Enqueue("d", KindResult, "ag-1", "result:ag-1", []byte("<r/>")); !dup {
		t.Fatal("replay was accepted despite DedupTTL < 0")
	}
}

// TestDirtySetShrinksToZero: the sweep working set tracks only devices
// with pending mail or dedup memory. A fleet that drains and ages out
// leaves DirtyDevices at zero — with the mailboxes themselves intact —
// so the periodic sweep over a million-device hub touches nothing.
func TestDirtySetShrinksToZero(t *testing.T) {
	var vnow time.Duration
	h := newTestHub(t, rms.NewMemStore("mb", 0), func(c *Config) {
		c.DedupTTL = time.Minute
		c.Clock = func() time.Time { return dedupEpoch.Add(vnow) }
	})

	// Idle devices that never got mail are never dirty.
	for d := 0; d < 50; d++ {
		h.Touch("idle-" + strconv.Itoa(d))
	}
	if st := h.Stats(); st.DirtyDevices != 0 || st.Devices != 50 {
		t.Fatalf("idle fleet: %d dirty of %d devices, want 0", st.DirtyDevices, st.Devices)
	}

	// Mail makes a device dirty; draining it keeps it dirty (dedup
	// memory persists past the ack)...
	const busy = 100
	for d := 0; d < busy; d++ {
		dev := "busy-" + strconv.Itoa(d)
		seq := mustEnqueue(t, h, dev, KindResult, "ag", "e:"+dev, "<r/>")
		if _, err := h.Ack(dev, seq); err != nil {
			t.Fatal(err)
		}
	}
	if st := h.Stats(); st.DirtyDevices != busy || st.Pending != 0 {
		t.Fatalf("drained fleet: %d dirty, %d pending; want %d, 0", st.DirtyDevices, st.Pending, busy)
	}

	// ...until the dedup TTL passes and the sweep retires the memory.
	vnow = 2 * time.Minute
	h.SweepExpired()
	st := h.Stats()
	if st.DirtyDevices != 0 {
		t.Fatalf("after aging sweep: %d dirty devices, want 0", st.DirtyDevices)
	}
	if st.Devices != 50+busy {
		t.Fatalf("sweep destroyed mailboxes: %d devices, want %d", st.Devices, 50+busy)
	}
}

// TestReplayPersistsDedupAges: dedup timestamps ride the meta record,
// so a hub restarted from its store ages ids from their original clock,
// not from the moment of the crash.
func TestReplayPersistsDedupAges(t *testing.T) {
	var vnow time.Duration
	store := rms.NewMemStore("mb", 0)
	mkHub := func() *Hub {
		return newTestHub(t, store, func(c *Config) {
			c.DedupTTL = time.Minute
			c.Clock = func() time.Time { return dedupEpoch.Add(vnow) }
		})
	}
	h := mkHub()
	seq := mustEnqueue(t, h, "d", KindResult, "ag-1", "result:ag-1", "<r/>")
	if _, err := h.Ack("d", seq); err != nil {
		t.Fatal(err)
	}
	h.Close()

	// Crash and replay: the persisted window still suppresses replays...
	h2 := mkHub()
	defer h2.Close()
	if _, dup, _ := h2.Enqueue("d", KindResult, "ag-1", "result:ag-1", []byte("<r/>")); !dup {
		t.Fatal("dedup window did not survive the crash")
	}
	// ...and ages from the original enqueue time: the TTL elapses even
	// though this hub generation never saw the event fresh.
	vnow = 2 * time.Minute
	h2.SweepExpired()
	if _, dup, err := h2.Enqueue("d", KindResult, "ag-1", "result:ag-1", []byte("<r/>")); err != nil || dup {
		t.Fatalf("enqueue after post-replay aging: dup=%v err=%v, want accepted", dup, err)
	}
}

package pisec

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// testKeyPair is generated once; RSA keygen is slow.
var (
	testKeyOnce sync.Once
	testKey     *KeyPair
)

func keyPair(t testing.TB) *KeyPair {
	testKeyOnce.Do(func() {
		kp, err := GenerateKeyPair(DefaultKeyBits)
		if err != nil {
			t.Fatalf("GenerateKeyPair: %v", err)
		}
		testKey = kp
	})
	return testKey
}

func TestSealOpenRoundTrip(t *testing.T) {
	kp := keyPair(t)
	for _, msg := range [][]byte{
		{},
		[]byte("x"),
		[]byte(strings.Repeat("<pi>packed information</pi>", 100)),
	} {
		env, err := Seal(kp.Public(), msg)
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		got, err := Open(kp, env)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round-trip mismatch: %d in, %d out", len(msg), len(got))
		}
	}
}

func TestTamperDetection(t *testing.T) {
	kp := keyPair(t)
	env, err := Seal(kp.Public(), []byte("transfer 100 from a to b"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one ciphertext bit: the MD5 check of Figure 7 must fail.
	env.Ciphertext[0] ^= 1
	if err := env.Verify(); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("Verify after tamper = %v, want ErrDigestMismatch", err)
	}
	if _, err := Open(kp, env); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("Open after tamper = %v, want ErrDigestMismatch", err)
	}
	env.Ciphertext[0] ^= 1
	if err := env.Verify(); err != nil {
		t.Fatalf("Verify after restore: %v", err)
	}
	// Tampering with the wrapped key is also caught by the digest.
	env.WrappedKey[3] ^= 0x40
	if _, err := Open(kp, env); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("Open after key tamper = %v", err)
	}
}

func TestEnvelopeMarshalRoundTrip(t *testing.T) {
	kp := keyPair(t)
	env, err := Seal(kp.Public(), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalEnvelope(env.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalEnvelope: %v", err)
	}
	got, err := Open(kp, back)
	if err != nil || string(got) != "payload" {
		t.Fatalf("Open(unmarshalled) = %q, %v", got, err)
	}

	b64, err := UnmarshalEnvelopeBase64(env.MarshalBase64())
	if err != nil {
		t.Fatalf("UnmarshalEnvelopeBase64: %v", err)
	}
	got, err = Open(kp, b64)
	if err != nil || string(got) != "payload" {
		t.Fatalf("Open(base64) = %q, %v", got, err)
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTPIS0000000000000000000000000000000000"),
		"truncated": []byte("PISEC1\x01"),
		"short key": append([]byte("PISEC1\xFF\xFF"), make([]byte, 10)...),
	}
	for name, b := range cases {
		if _, err := UnmarshalEnvelope(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
	if _, err := UnmarshalEnvelopeBase64("!!!not base64!!!"); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad base64: err = %v", err)
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	kp := keyPair(t)
	s, err := kp.Public().Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	pk, err := ParsePublicKey(s)
	if err != nil {
		t.Fatalf("ParsePublicKey: %v", err)
	}
	if pk.Fingerprint() != kp.Public().Fingerprint() {
		t.Fatal("fingerprint changed across marshal round-trip")
	}
	// The parsed key must actually work for sealing.
	env, err := Seal(pk, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(kp, env)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Open with reparsed key = %q, %v", got, err)
	}
}

func TestParsePublicKeyErrors(t *testing.T) {
	if _, err := ParsePublicKey("not-base64!!!"); err == nil {
		t.Error("bad base64 accepted")
	}
	if _, err := ParsePublicKey("aGVsbG8="); err == nil {
		t.Error("non-DER accepted")
	}
}

func TestOpenWithWrongKey(t *testing.T) {
	kp := keyPair(t)
	other, err := GenerateKeyPair(1024) // smaller for test speed
	if err != nil {
		t.Fatal(err)
	}
	env, err := Seal(kp.Public(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(other, env); err == nil {
		t.Fatal("Open with wrong private key succeeded")
	}
}

func TestDispatchKey(t *testing.T) {
	secret, err := NewSubscriptionSecret()
	if err != nil {
		t.Fatal(err)
	}
	key := DispatchKey("code-17", secret)
	if len(key) != 32 {
		t.Fatalf("key length = %d, want 32 hex chars", len(key))
	}
	if !VerifyDispatchKey("code-17", secret, key) {
		t.Fatal("valid key rejected")
	}
	if VerifyDispatchKey("code-18", secret, key) {
		t.Fatal("key accepted for wrong code id")
	}
	if VerifyDispatchKey("code-17", []byte("wrong secret"), key) {
		t.Fatal("key accepted with wrong secret")
	}
	if VerifyDispatchKey("code-17", secret, key[:31]) {
		t.Fatal("truncated key accepted")
	}
	// Determinism.
	if DispatchKey("code-17", secret) != key {
		t.Fatal("DispatchKey not deterministic")
	}
	// Different ids produce different keys.
	if DispatchKey("code-18", secret) == key {
		t.Fatal("distinct code ids collide")
	}
}

func TestQuickSealOpen(t *testing.T) {
	kp := keyPair(t)
	f := func(msg []byte) bool {
		env, err := Seal(kp.Public(), msg)
		if err != nil {
			return false
		}
		round, err := UnmarshalEnvelope(env.Marshal())
		if err != nil {
			return false
		}
		got, err := Open(kp, round)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal(b *testing.B) {
	kp := keyPair(b)
	msg := []byte(strings.Repeat("x", 4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(kp.Public(), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen(b *testing.B) {
	kp := keyPair(b)
	env, _ := Seal(kp.Public(), []byte(strings.Repeat("x", 4096)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Open(kp, env); err != nil {
			b.Fatal(err)
		}
	}
}

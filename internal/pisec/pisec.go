// Package pisec implements the PDAgent security model of the paper's
// Figure 7: the handheld encrypts the Packed Information with the
// gateway's public key ("Asymmetric Key Encryption"), and the gateway
// uses MD5 to verify the Packed Information before decrypting it with
// its private key.
//
// Like the paper, the asymmetric step is RSA; because RSA alone cannot
// encrypt multi-kilobyte PIs, Seal uses the standard hybrid scheme: a
// fresh AES-CTR session key is RSA-OAEP-wrapped and carried alongside
// the ciphertext. The MD5 digest covers the whole envelope body, which
// reproduces the paper's "verify whether the Packed Information is
// valid" check. (MD5 is retained for fidelity to the 2004 design; it is
// an integrity tag here, not a collision-resistant MAC.)
//
// The package also derives the per-dispatch unique key of §3.2: "The
// Agent Dispatcher will ... generate a unique key from the assigned
// code id", which the gateway's Agent Creator validates before
// generating agent classes.
package pisec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/md5"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// DefaultKeyBits is the RSA modulus size used by gateways. 2048 is the
// modern floor; the paper's era used 1024.
const DefaultKeyBits = 2048

// Errors returned by envelope operations.
var (
	// ErrDigestMismatch means the MD5 verification of Figure 7 failed:
	// the PI was altered in transit.
	ErrDigestMismatch = errors.New("pisec: MD5 digest mismatch, packed information altered")
	// ErrMalformed means the envelope could not be parsed at all.
	ErrMalformed = errors.New("pisec: malformed envelope")
)

// KeyPair is a gateway identity: an RSA private key plus convenience
// accessors for the public half.
type KeyPair struct {
	priv *rsa.PrivateKey
}

// GenerateKeyPair creates a new RSA key pair with the given modulus
// size (use DefaultKeyBits).
func GenerateKeyPair(bits int) (*KeyPair, error) {
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("pisec: generating key pair: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// KeyPairFromRSA wraps an existing RSA private key as a gateway
// identity (fixed test and fuzz identities; production keys come from
// GenerateKeyPair).
func KeyPairFromRSA(priv *rsa.PrivateKey) *KeyPair { return &KeyPair{priv: priv} }

// Public returns the shareable public half.
func (kp *KeyPair) Public() *PublicKey { return &PublicKey{key: &kp.priv.PublicKey} }

// PublicKey is the gateway public key a device downloads at
// subscription time.
type PublicKey struct {
	key *rsa.PublicKey
}

// Marshal encodes the key as base64 PKIX DER for embedding in XML
// gateway lists.
func (pk *PublicKey) Marshal() (string, error) {
	der, err := x509.MarshalPKIXPublicKey(pk.key)
	if err != nil {
		return "", fmt.Errorf("pisec: marshalling public key: %w", err)
	}
	return base64.StdEncoding.EncodeToString(der), nil
}

// ParsePublicKey decodes a key produced by Marshal.
func ParsePublicKey(s string) (*PublicKey, error) {
	der, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("pisec: public key base64: %w", err)
	}
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("pisec: parsing public key: %w", err)
	}
	rk, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("pisec: public key is %T, want RSA", k)
	}
	return &PublicKey{key: rk}, nil
}

// Fingerprint returns a short hex identifier for the key (first 8 bytes
// of the SHA-256 of its DER form).
func (pk *PublicKey) Fingerprint() string {
	der, err := x509.MarshalPKIXPublicKey(pk.key)
	if err != nil {
		return "invalid"
	}
	sum := sha256.Sum256(der)
	return hex.EncodeToString(sum[:8])
}

// Envelope is a sealed Packed Information: the RSA-wrapped session key,
// the CTR IV, the ciphertext, and the MD5 digest the gateway verifies.
type Envelope struct {
	WrappedKey []byte
	IV         []byte
	Ciphertext []byte
	Digest     [md5.Size]byte
}

const envelopeMagic = "PISEC1"

// envelopeMagicBytes avoids a string→[]byte conversion per digest.
var envelopeMagicBytes = []byte(envelopeMagic)

// Seal encrypts plaintext to the gateway's public key per Figure 7.
func Seal(pk *PublicKey, plaintext []byte) (*Envelope, error) {
	sessionKey := make([]byte, 32)
	if _, err := rand.Read(sessionKey); err != nil {
		return nil, fmt.Errorf("pisec: session key: %w", err)
	}
	iv := make([]byte, aes.BlockSize)
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("pisec: iv: %w", err)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pk.key, sessionKey, envelopeMagicBytes)
	if err != nil {
		return nil, fmt.Errorf("pisec: wrapping session key: %w", err)
	}
	block, err := aes.NewCipher(sessionKey)
	if err != nil {
		return nil, fmt.Errorf("pisec: cipher init: %w", err)
	}
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)
	env := &Envelope{WrappedKey: wrapped, IV: iv, Ciphertext: ct}
	env.Digest = env.computeDigest()
	return env, nil
}

// computeDigest hashes everything except the digest itself.
func (e *Envelope) computeDigest() [md5.Size]byte {
	return digestParts(e.WrappedKey, e.IV, e.Ciphertext)
}

// digestParts is the envelope digest over its raw fields, shared by the
// struct form and the parse-in-place fast path.
func digestParts(wrapped, iv, ciphertext []byte) [md5.Size]byte {
	h := md5.New()
	h.Write(envelopeMagicBytes)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(wrapped)))
	h.Write(n[:])
	h.Write(wrapped)
	h.Write(iv)
	h.Write(ciphertext)
	var out [md5.Size]byte
	h.Sum(out[:0])
	return out
}

// Verify runs the gateway's MD5 check without decrypting.
func (e *Envelope) Verify() error {
	if e.computeDigest() != e.Digest {
		return ErrDigestMismatch
	}
	return nil
}

// Open verifies the digest and decrypts with the gateway's private key.
func Open(kp *KeyPair, e *Envelope) ([]byte, error) {
	if err := e.Verify(); err != nil {
		return nil, err
	}
	sessionKey, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, kp.priv, e.WrappedKey, envelopeMagicBytes)
	if err != nil {
		return nil, fmt.Errorf("pisec: unwrapping session key: %w", err)
	}
	block, err := aes.NewCipher(sessionKey)
	if err != nil {
		return nil, fmt.Errorf("pisec: cipher init: %w", err)
	}
	pt := make([]byte, len(e.Ciphertext))
	cipher.NewCTR(block, e.IV).XORKeyStream(pt, e.Ciphertext)
	return pt, nil
}

// Marshal encodes the envelope in a compact binary form:
// magic, u16 wrapped-key length, wrapped key, 16-byte IV, 16-byte
// digest, ciphertext to end.
func (e *Envelope) Marshal() []byte {
	out := make([]byte, 0, len(envelopeMagic)+2+len(e.WrappedKey)+len(e.IV)+md5.Size+len(e.Ciphertext))
	out = append(out, envelopeMagic...)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(e.WrappedKey)))
	out = append(out, l[:]...)
	out = append(out, e.WrappedKey...)
	out = append(out, e.IV...)
	out = append(out, e.Digest[:]...)
	out = append(out, e.Ciphertext...)
	return out
}

// envelopeRef parses the binary envelope form without copying: the
// returned slices alias b. The gateway's Unpack fast path uses it so a
// dispatch decode never duplicates the wrapped key or ciphertext.
func envelopeRef(b []byte) (wrapped, iv, digest, ciphertext []byte, err error) {
	min := len(envelopeMagic) + 2 + aes.BlockSize + md5.Size
	if len(b) < min || string(b[:len(envelopeMagic)]) != envelopeMagic {
		return nil, nil, nil, nil, ErrMalformed
	}
	p := len(envelopeMagic)
	klen := int(binary.BigEndian.Uint16(b[p : p+2]))
	p += 2
	if len(b) < p+klen+aes.BlockSize+md5.Size {
		return nil, nil, nil, nil, ErrMalformed
	}
	wrapped = b[p : p+klen]
	p += klen
	iv = b[p : p+aes.BlockSize]
	p += aes.BlockSize
	digest = b[p : p+md5.Size]
	p += md5.Size
	return wrapped, iv, digest, b[p:], nil
}

// UnmarshalEnvelope parses the binary form produced by Marshal.
func UnmarshalEnvelope(b []byte) (*Envelope, error) {
	wrapped, iv, digest, ct, err := envelopeRef(b)
	if err != nil {
		return nil, err
	}
	e := &Envelope{}
	e.WrappedKey = append([]byte(nil), wrapped...)
	e.IV = append([]byte(nil), iv...)
	copy(e.Digest[:], digest)
	e.Ciphertext = append([]byte(nil), ct...)
	return e, nil
}

// AppendSeal seals plaintext to pk per Figure 7 and appends the
// marshalled envelope to dst, skipping the intermediate Envelope struct
// and its Marshal copy. Old callers keep Seal+Marshal; the wire fast
// path threads pooled buffers through here.
func AppendSeal(dst []byte, pk *PublicKey, plaintext []byte) ([]byte, error) {
	var sessionKey [32]byte
	if _, err := rand.Read(sessionKey[:]); err != nil {
		return dst, fmt.Errorf("pisec: session key: %w", err)
	}
	var iv [aes.BlockSize]byte
	if _, err := rand.Read(iv[:]); err != nil {
		return dst, fmt.Errorf("pisec: iv: %w", err)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pk.key, sessionKey[:], envelopeMagicBytes)
	if err != nil {
		return dst, fmt.Errorf("pisec: wrapping session key: %w", err)
	}
	block, err := aes.NewCipher(sessionKey[:])
	if err != nil {
		return dst, fmt.Errorf("pisec: cipher init: %w", err)
	}
	dst = append(dst, envelopeMagic...)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(wrapped)))
	dst = append(dst, l[:]...)
	dst = append(dst, wrapped...)
	dst = append(dst, iv[:]...)
	digestAt := len(dst)
	var zero [md5.Size]byte
	dst = append(dst, zero[:]...)
	ctAt := len(dst)
	dst = append(dst, plaintext...)
	cipher.NewCTR(block, iv[:]).XORKeyStream(dst[ctAt:], dst[ctAt:])
	sum := digestParts(wrapped, iv[:], dst[ctAt:])
	copy(dst[digestAt:], sum[:])
	return dst, nil
}

// AppendOpen verifies and decrypts a marshalled envelope, appending the
// plaintext to dst. The envelope is parsed in place — nothing from body
// is copied except the recovered plaintext itself.
func AppendOpen(dst []byte, kp *KeyPair, body []byte) ([]byte, error) {
	wrapped, iv, digest, ct, err := envelopeRef(body)
	if err != nil {
		return dst, err
	}
	sum := digestParts(wrapped, iv, ct)
	if string(sum[:]) != string(digest) {
		return dst, ErrDigestMismatch
	}
	sessionKey, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, kp.priv, wrapped, envelopeMagicBytes)
	if err != nil {
		return dst, fmt.Errorf("pisec: unwrapping session key: %w", err)
	}
	block, err := aes.NewCipher(sessionKey)
	if err != nil {
		return dst, fmt.Errorf("pisec: cipher init: %w", err)
	}
	base := len(dst)
	dst = append(dst, ct...)
	cipher.NewCTR(block, iv).XORKeyStream(dst[base:], dst[base:])
	return dst, nil
}

// MarshalBase64 returns the envelope as base64 text for embedding in an
// XML Packed Information document.
func (e *Envelope) MarshalBase64() string {
	return base64.StdEncoding.EncodeToString(e.Marshal())
}

// UnmarshalEnvelopeBase64 parses the form produced by MarshalBase64.
func UnmarshalEnvelopeBase64(s string) (*Envelope, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return UnmarshalEnvelope(b)
}

// DispatchKey derives the §3.2 "unique key from the assigned code id".
// The subscription secret is issued by the gateway when the code is
// downloaded; only a device holding it can produce a valid key for that
// code id. The construction is HMAC-style MD5 keyed with the secret
// (again MD5 for period fidelity).
func DispatchKey(codeID string, secret []byte) string {
	inner := md5.New()
	inner.Write(secret)
	inner.Write([]byte{0x36})
	inner.Write([]byte(codeID))
	is := inner.Sum(nil)
	outer := md5.New()
	outer.Write(secret)
	outer.Write([]byte{0x5c})
	outer.Write(is)
	return hex.EncodeToString(outer.Sum(nil))
}

// VerifyDispatchKey checks a presented key in constant time.
func VerifyDispatchKey(codeID string, secret []byte, presented string) bool {
	want := DispatchKey(codeID, secret)
	if len(want) != len(presented) {
		return false
	}
	var diff byte
	for i := 0; i < len(want); i++ {
		diff |= want[i] ^ presented[i]
	}
	return diff == 0
}

// NewSubscriptionSecret returns a fresh random secret issued alongside
// a downloaded code package.
func NewSubscriptionSecret() ([]byte, error) {
	s := make([]byte, 16)
	if _, err := rand.Read(s); err != nil {
		return nil, fmt.Errorf("pisec: subscription secret: %w", err)
	}
	return s, nil
}

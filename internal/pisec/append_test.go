package pisec

import (
	"bytes"
	"sync"
	"testing"
)

var (
	appendKPOnce sync.Once
	appendKP     *KeyPair
)

func appendKeyPair(t *testing.T) *KeyPair {
	appendKPOnce.Do(func() {
		kp, err := GenerateKeyPair(1024)
		if err != nil {
			t.Fatal(err)
		}
		appendKP = kp
	})
	return appendKP
}

// TestAppendSealOpenRoundTrip proves the append-style pair inverts and
// honours a destination prefix.
func TestAppendSealOpenRoundTrip(t *testing.T) {
	kp := appendKeyPair(t)
	plaintext := []byte("packed information payload <&> with bytes \x00\x01\x02")
	body, err := AppendSeal([]byte("P"), kp.Public(), plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if body[0] != 'P' {
		t.Fatal("AppendSeal clobbered the prefix")
	}
	out, err := AppendOpen([]byte("Q"), kp, body[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, append([]byte("Q"), plaintext...)) {
		t.Fatal("AppendOpen round trip mangled plaintext")
	}
}

// TestAppendSealInteropsWithOpen checks both generations cross-decrypt:
// AppendSeal output opens via UnmarshalEnvelope+Open, and Seal+Marshal
// output opens via AppendOpen.
func TestAppendSealInteropsWithOpen(t *testing.T) {
	kp := appendKeyPair(t)
	plaintext := []byte("cross-generation envelope")

	sealed, err := AppendSeal(nil, kp.Public(), plaintext)
	if err != nil {
		t.Fatal(err)
	}
	env, err := UnmarshalEnvelope(sealed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(kp, env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatal("struct-path Open cannot read AppendSeal output")
	}

	env2, err := Seal(kp.Public(), plaintext)
	if err != nil {
		t.Fatal(err)
	}
	got, err = AppendOpen(nil, kp, env2.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatal("AppendOpen cannot read Seal+Marshal output")
	}
}

// TestAppendOpenRejectsTampering flips one byte anywhere material and
// expects the digest check to refuse it.
func TestAppendOpenRejectsTampering(t *testing.T) {
	kp := appendKeyPair(t)
	sealed, err := AppendSeal(nil, kp.Public(), []byte("integrity matters"))
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int{len(envelopeMagic) + 3, len(sealed) / 2, len(sealed) - 1} {
		bad := append([]byte(nil), sealed...)
		bad[at] ^= 0x01
		if _, err := AppendOpen(nil, kp, bad); err == nil {
			t.Fatalf("tampered byte at %d accepted", at)
		}
	}
	if _, err := AppendOpen(nil, kp, sealed[:10]); err == nil {
		t.Fatal("truncated envelope accepted")
	}
}

package core

import (
	"context"
	"fmt"
	"sync"

	"pdagent/internal/atp"
	"pdagent/internal/gateway"
	"pdagent/internal/mas"
	"pdagent/internal/pisec"
	"pdagent/internal/services"
	"pdagent/internal/transport"
)

// HandlerHolder lets a listener be opened before the component that
// will serve on it exists (components need their own address at
// construction time). It serves 503 until Set is called.
type HandlerHolder struct {
	mu sync.RWMutex
	h  transport.Handler
}

// Set installs the real handler.
func (hh *HandlerHolder) Set(h transport.Handler) {
	hh.mu.Lock()
	hh.h = h
	hh.mu.Unlock()
}

// Serve implements transport.Handler.
func (hh *HandlerHolder) Serve(ctx context.Context, req *transport.Request) *transport.Response {
	hh.mu.RLock()
	h := hh.h
	hh.mu.RUnlock()
	if h == nil {
		return transport.Errorf(transport.StatusUnavailable, "component starting")
	}
	return h.Serve(ctx, req)
}

// LiveConfig configures a real-transport deployment.
type LiveConfig struct {
	// KeyBits sizes the gateway key (default pisec.DefaultKeyBits).
	KeyBits int
	// Serve opens a listener for a handler and returns its address and
	// a stop function. Tests pass an httptest factory; cmds bind real
	// ports.
	Serve func(h transport.Handler) (addr string, stop func())
	// Transport reaches the served components (default
	// transport.HTTPClient).
	Transport transport.RoundTripper
	// Logf, when set, receives diagnostics from all components.
	Logf func(format string, args ...any)
}

// LiveWorld is a running live deployment: one gateway (aglets flavour)
// and two bank hosts (aglets and voyager).
type LiveWorld struct {
	GatewayAddr string
	BankAddrs   []string
	Gateway     *gateway.Gateway
	Banks       map[string]*services.Bank

	stops []func()
}

// NewLiveWorld starts a gateway and two bank MAS hosts on real
// listeners.
func NewLiveWorld(cfg LiveConfig) (*LiveWorld, error) {
	if cfg.Serve == nil {
		return nil, fmt.Errorf("core: LiveConfig needs a Serve factory")
	}
	if cfg.KeyBits == 0 {
		cfg.KeyBits = pisec.DefaultKeyBits
	}
	if cfg.Transport == nil {
		cfg.Transport = &transport.HTTPClient{}
	}
	w := &LiveWorld{Banks: map[string]*services.Bank{}}

	startHost := func(flavour string) (string, *services.Bank, error) {
		holder := &HandlerHolder{}
		addr, stop := cfg.Serve(holder)
		w.stops = append(w.stops, stop)
		bank := services.NewBank(addr, map[string]int64{"alice": 10_000, "bob": 5_000})
		reg := services.NewRegistry()
		reg.Register(bank.Services()...)
		codec, err := atp.ByName(flavour)
		if err != nil {
			return "", nil, err
		}
		srv, err := mas.NewServer(mas.Config{
			Addr:      addr,
			Codec:     codec,
			Transport: cfg.Transport,
			Services:  reg,
			Logf:      cfg.Logf,
		})
		if err != nil {
			return "", nil, err
		}
		holder.Set(srv.Handler())
		return addr, bank, nil
	}

	for _, flavour := range []string{"aglets", "voyager"} {
		addr, bank, err := startHost(flavour)
		if err != nil {
			w.Stop()
			return nil, err
		}
		w.BankAddrs = append(w.BankAddrs, addr)
		w.Banks[addr] = bank
	}

	kp, err := pisec.GenerateKeyPair(cfg.KeyBits)
	if err != nil {
		w.Stop()
		return nil, err
	}
	holder := &HandlerHolder{}
	addr, stop := cfg.Serve(holder)
	w.stops = append(w.stops, stop)
	gw, err := gateway.New(gateway.Config{
		Addr:      addr,
		KeyPair:   kp,
		Transport: cfg.Transport,
		Logf:      cfg.Logf,
	})
	if err != nil {
		w.Stop()
		return nil, err
	}
	if err := RegisterStandardApps(gw); err != nil {
		w.Stop()
		return nil, err
	}
	w.stops = append(w.stops, gw.Close)
	holder.Set(gw.Handler())
	w.GatewayAddr = addr
	w.Gateway = gw
	return w, nil
}

// Stop shuts down all listeners.
func (w *LiveWorld) Stop() {
	for _, stop := range w.stops {
		stop()
	}
	w.stops = nil
}

// Package core is the public face of the PDAgent reproduction: it
// assembles complete deployments — gateways with embedded home MAS,
// network hosts running service agents, a central directory, and
// handheld platforms — over either the deterministic simulated network
// (experiments, examples) or real HTTP (the cmd/ daemons).
//
// A SimWorld is the whole Figure 3 environment in one process:
//
//	world, _ := core.NewSimWorld(core.SimConfig{Seed: 1})
//	dev, _ := world.NewDevice("alice")
//	ctx, clock := world.NewJourney()
//	dev.Subscribe(ctx, world.GatewayAddrs()[0], core.AppEBanking)
//	id, _ := dev.Dispatch(ctx, core.AppEBanking, params)
//	world.Run()                  // the agent journey, in virtual time
//	result, _ := dev.Collect(ctx, id)
package core

import (
	"context"
	"fmt"
	"time"

	"pdagent/internal/atp"
	"pdagent/internal/cluster"
	"pdagent/internal/compress"
	"pdagent/internal/device"
	"pdagent/internal/gateway"
	"pdagent/internal/mas"
	"pdagent/internal/netsim"
	"pdagent/internal/pisec"
	"pdagent/internal/repl"
	"pdagent/internal/rms"
	"pdagent/internal/services"
	"pdagent/internal/transport"
	"pdagent/internal/wire"
)

// HostSpec describes one network site in a SimWorld.
type HostSpec struct {
	// Flavour is the MAS codec flavour at this site ("aglets" or
	// "voyager").
	Flavour string
	// Bank, when set, is registered at the site and exposed through
	// SimWorld.Banks for assertions and baselines.
	Bank *services.Bank
	// Install registers any further service agents.
	Install func(reg *services.Registry)
}

// SimConfig configures a simulated world.
type SimConfig struct {
	// Seed drives all simulated randomness (jitter, loss).
	Seed int64
	// GatewayAddrs lists the gateways to create (default: ["gw-0"]).
	GatewayAddrs []string
	// Hosts maps site addresses to their spec (default: two banks,
	// "bank-a" aglets and "bank-b" voyager, as in the paper's
	// e-banking evaluation).
	Hosts map[string]HostSpec
	// Wireless and Wired override the link models (defaults:
	// netsim.DefaultWirelessLink / DefaultWiredLink).
	Wireless, Wired *netsim.Link
	// KeyBits sizes gateway RSA keys (default pisec.DefaultKeyBits;
	// tests use 1024 for speed).
	KeyBits int
	// SkipStandardApps leaves gateway catalogues empty.
	SkipStandardApps bool
	// Journal gives every MAS (hosts and the gateways' embedded home
	// servers) a write-ahead agent journal, enabling CrashHost /
	// RestartHost crash-recovery drills. The per-address stores are
	// exposed through SimWorld.Journals.
	Journal bool
	// Cluster federates the gateways into one clustered middle tier
	// (DESIGN.md §6): each gateway gets a cluster.Node seeded with the
	// full gateway list, dispatches route to their consistent-hash home
	// member, agent locations replicate, results relay to the edge, and
	// the central directory serves the live membership view. Drive
	// heartbeats manually with SimWorld.TickCluster (deterministic);
	// kill and recover members with CrashGateway / RestartGateway.
	Cluster bool
	// ClusterSpillThreshold overrides the load-aware spill threshold
	// (0: cluster.DefaultSpillThreshold; negative disables spill).
	ClusterSpillThreshold int
	// Mailbox enables the disconnection-tolerant device sessions
	// (DESIGN.md §7) on every gateway: results, status changes and
	// management notifications are enqueued into durable per-device
	// mailboxes and delivered through /pdagent/mailbox. The per-gateway
	// stores are exposed through SimWorld.Mailboxes and survive
	// CrashGateway / RestartGateway, like the journals.
	Mailbox bool
	// MailboxTTL / MailboxQuota tune the mailboxes (0: keep until
	// quota / push.DefaultQuota).
	MailboxTTL   time.Duration
	MailboxQuota int
	// ResultTTL expires stored result documents (0 keeps them forever);
	// enforced by Gateway.Sweep. Requires Mailbox.
	ResultTTL time.Duration
	// Replicate enables warm-standby replication (DESIGN.md §10) on
	// clustered worlds: every gateway streams its journal and mailbox
	// commits to its ring successor, and on SWIM eviction the standby
	// fences the dead member and promotes — adopted agents resume,
	// mailboxes import, the location directory re-points. Drive it with
	// TickCluster; destroy a member completely with
	// CrashGatewayLosingDisk. Requires Cluster (and typically Journal
	// and/or Mailbox — an empty stream replicates nothing).
	Replicate bool
	// ReplMode is the replication ack discipline (default
	// repl.ModeAsync; repl.ModeSemiSync acks each commit on two members).
	ReplMode repl.Mode
}

// Promotion records one completed §10 failover: By adopted Dead's
// replicated state after its eviction.
type Promotion struct {
	Dead, By          string
	Agents, Mailboxes int
}

// SimWorld is a fully wired simulated deployment.
type SimWorld struct {
	Net       *netsim.Network
	Queue     *netsim.Queue
	Gateways  []*gateway.Gateway
	Hosts     map[string]*mas.Server
	Directory *gateway.Directory
	// Banks indexes the bank service state by host address (when the
	// default hosts are used), for assertions and baselines.
	Banks map[string]*services.Bank
	// Journals holds the per-address agent journals when
	// SimConfig.Journal is set (keys: host and gateway addresses).
	Journals map[string]rms.Store
	// Nodes are the gateways' cluster nodes, aligned with Gateways
	// (nil entries when SimConfig.Cluster is off).
	Nodes []*cluster.Node
	// Mailboxes holds the per-gateway mailbox stores when
	// SimConfig.Mailbox is set; they survive CrashGateway /
	// RestartGateway like the journals do.
	Mailboxes map[string]rms.Store
	// Repls are the gateways' replication peers, aligned with Gateways
	// (nil entries when SimConfig.Replicate is off).
	Repls []*repl.Peer

	cfg         SimConfig
	keyBits     int
	hostSpecs   map[string]HostSpec       // retained for RestartHost
	gwKeys      map[string]*pisec.KeyPair // retained for RestartGateway
	crashedGW   map[string]bool           // members whose process is down
	clusterKey  string                    // shared cluster secret (Cluster worlds)
	deviceZones map[string]string         // device owner -> private aliased zone
	evictions   []string                  // evicted addrs pending the promotion check
	promotions  []Promotion               // completed failovers, in order
}

// CentralAddr is the simulated central server's address.
const CentralAddr = "central-0"

// NewSimWorld assembles a simulated deployment.
func NewSimWorld(cfg SimConfig) (*SimWorld, error) {
	if len(cfg.GatewayAddrs) == 0 {
		cfg.GatewayAddrs = []string{"gw-0"}
	}
	if cfg.KeyBits == 0 {
		cfg.KeyBits = pisec.DefaultKeyBits
	}
	w := &SimWorld{
		Net:         netsim.New(cfg.Seed),
		Queue:       &netsim.Queue{},
		Hosts:       map[string]*mas.Server{},
		Banks:       map[string]*services.Bank{},
		Journals:    map[string]rms.Store{},
		Mailboxes:   map[string]rms.Store{},
		cfg:         cfg,
		keyBits:     cfg.KeyBits,
		hostSpecs:   map[string]HostSpec{},
		gwKeys:      map[string]*pisec.KeyPair{},
		crashedGW:   map[string]bool{},
		deviceZones: map[string]string{},
	}
	journalFor := func(addr string) rms.Store {
		if !cfg.Journal {
			return nil
		}
		store := rms.NewMemStore("journal-"+addr, 0)
		w.Journals[addr] = store
		return store
	}
	wireless := netsim.DefaultWirelessLink()
	if cfg.Wireless != nil {
		wireless = *cfg.Wireless
	}
	wired := netsim.DefaultWiredLink()
	if cfg.Wired != nil {
		wired = *cfg.Wired
	}
	w.Net.SetLinkBoth(netsim.ZoneWireless, netsim.ZoneWired, wireless)
	w.Net.SetLinkBoth(netsim.ZoneWired, netsim.ZoneWired, wired)

	if cfg.Cluster {
		// One shared cluster secret for the whole world: members accept
		// each other's heartbeats/forwards, and anything without the
		// token (e.g. a simulated rogue client) is refused.
		secret, err := pisec.NewSubscriptionSecret()
		if err != nil {
			return nil, err
		}
		w.clusterKey = fmt.Sprintf("%x", secret)
	}

	// Central directory. Clustered worlds serve the live membership
	// view (the §3.5 list follows joins, leaves and evictions); the
	// static list remains the fallback.
	w.Directory = gateway.NewDirectory(cfg.GatewayAddrs...)
	if cfg.Cluster {
		w.Directory.SetProvider(w.liveGatewayView)
	}
	w.Net.AddHost(CentralAddr, netsim.ZoneWired, w.Directory.Handler())

	// Gateways.
	for i, addr := range cfg.GatewayAddrs {
		kp, err := pisec.GenerateKeyPair(cfg.KeyBits)
		if err != nil {
			return nil, err
		}
		w.gwKeys[addr] = kp
		gw, node, peer, err := w.buildGateway(i, addr, kp, journalFor(addr), 0)
		if err != nil {
			return nil, err
		}
		w.Net.AddHost(addr, netsim.ZoneWired, gw.Handler())
		w.Gateways = append(w.Gateways, gw)
		w.Nodes = append(w.Nodes, node)
		w.Repls = append(w.Repls, peer)
	}

	// Network hosts.
	hosts := cfg.Hosts
	if hosts == nil {
		hosts = DefaultHosts()
	}
	for addr, spec := range hosts {
		w.hostSpecs[addr] = spec
		if spec.Bank != nil {
			w.Banks[addr] = spec.Bank
		}
		srv, err := w.buildHost(addr, spec, journalFor(addr))
		if err != nil {
			return nil, err
		}
		w.Net.AddHost(addr, netsim.ZoneWired, srv.Handler())
		w.Hosts[addr] = srv
	}
	return w, nil
}

// buildGateway assembles one gateway (and its cluster node and
// replication peer when the world is clustered); index i orders it
// among cfg.GatewayAddrs. epoch is the member's starting fencing epoch
// (non-zero when a restarted member re-admits itself past its own
// fence).
func (w *SimWorld) buildGateway(i int, addr string, kp *pisec.KeyPair, journal rms.Store, epoch uint64) (*gateway.Gateway, *cluster.Node, *repl.Peer, error) {
	var peers []string
	for j, a := range w.cfg.GatewayAddrs {
		if j != i {
			peers = append(peers, a)
		}
	}
	var node *cluster.Node
	if w.cfg.Cluster {
		nodeCfg := cluster.Config{
			Self:           addr,
			Seeds:          w.cfg.GatewayAddrs,
			Transport:      w.Net.Transport(netsim.ZoneWired),
			Secret:         w.clusterKey,
			SpillThreshold: w.cfg.ClusterSpillThreshold,
			Epoch:          epoch,
		}
		if w.cfg.Replicate {
			// Evictions queue for TickCluster (which holds the journey
			// context) rather than promoting inline mid-Tick.
			nodeCfg.OnEvict = func(dead string) {
				w.evictions = append(w.evictions, dead)
			}
		}
		node = cluster.NewNode(nodeCfg)
	}
	var peer *repl.Peer
	if node != nil && w.cfg.Replicate {
		if journal != nil {
			journal = rms.NewTappedStore(journal, nil)
		}
		peer = repl.NewPeer(repl.Config{
			Self:      addr,
			Transport: w.Net.Transport(netsim.ZoneWired),
			Stamp:     node.StampIdentity,
			Authorize: node.Authorized,
			OriginOf:  cluster.Origin,
			StandbyFn: func() string { return node.StandbyFor(addr) },
			Mode:      w.cfg.ReplMode,
		})
	}
	gwCfg := gateway.Config{
		Addr:      addr,
		KeyPair:   kp,
		Transport: w.Net.Transport(netsim.ZoneWired),
		Spawn:     w.Queue.Go,
		Peers:     peers,
		Journal:   journal,
		Cluster:   node,
		Repl:      peer,
	}
	if w.cfg.Mailbox {
		// The mailbox store outlives the gateway process (like the
		// journal): RestartGateway reattaches the replacement instance
		// to the same store, so undelivered mail survives the crash.
		store, ok := w.Mailboxes[addr]
		if !ok {
			store = rms.NewMemStore("mailbox-"+addr, 0)
			w.Mailboxes[addr] = store
		}
		var mbStore rms.Store = store
		if peer != nil {
			mbStore = rms.NewTappedStore(store, nil)
		}
		gwCfg.Mailbox = &gateway.MailboxConfig{
			Store:     mbStore,
			TTL:       w.cfg.MailboxTTL,
			Quota:     w.cfg.MailboxQuota,
			ResultTTL: w.cfg.ResultTTL,
		}
	}
	gw, err := gateway.New(gwCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if !w.cfg.SkipStandardApps {
		if err := RegisterStandardApps(gw); err != nil {
			return nil, nil, nil, err
		}
	}
	return gw, node, peer, nil
}

// liveGatewayView serves the central directory in clustered worlds:
// the first running member's live view (members answer for each other
// through gossip, so any one view is the fleet view).
func (w *SimWorld) liveGatewayView() []string {
	for i, gw := range w.Gateways {
		if w.crashedGW[gw.Addr()] || w.Nodes[i] == nil {
			continue
		}
		if addrs := w.Nodes[i].Membership().AliveAddrs(); len(addrs) > 0 {
			return addrs
		}
	}
	return nil
}

// buildHost assembles one network site's MAS over the world fabric.
// The service registry is rebuilt from the spec each time, so a
// restarted host reattaches to the same service state (the bank's
// ledger survives a MAS process crash, like a real database would).
func (w *SimWorld) buildHost(addr string, spec HostSpec, journal rms.Store) (*mas.Server, error) {
	reg := services.NewRegistry()
	if spec.Bank != nil {
		reg.Register(spec.Bank.Services()...)
	}
	if spec.Install != nil {
		spec.Install(reg)
	}
	codec, err := atp.ByName(spec.Flavour)
	if err != nil {
		return nil, fmt.Errorf("core: host %s: %w", addr, err)
	}
	masCfg := mas.Config{
		Addr:      addr,
		Codec:     codec,
		Transport: w.Net.Transport(netsim.ZoneWired),
		Services:  reg,
		Spawn:     w.Queue.Go,
		Journal:   journal,
	}
	if w.cfg.Cluster {
		// Network hosts are not cluster members, but they relay their
		// location events to each agent's home gateway, which folds them
		// into the replicated directory — so mid-itinerary hops between
		// hosts are visible fleet-wide, not just the gateway-side ones.
		// Best-effort: a missed update costs a longer chase, and the
		// home gateway's own hooks re-anchor the pointer chain.
		masCfg.OnAgentMove = cluster.LocationRelay(w.Net.Transport(netsim.ZoneWired), addr, w.clusterKey)
	}
	srv, err := mas.NewServer(masCfg)
	if err != nil {
		return nil, err
	}
	return srv, nil
}

// CrashHost simulates a host process crash: the MAS abandons all
// in-memory state and queued work, and the address drops off the
// network. Only the journal (when the world has one) survives; bring
// the site back with RestartHost.
func (w *SimWorld) CrashHost(addr string) error {
	srv, ok := w.Hosts[addr]
	if !ok {
		return fmt.Errorf("core: no host %q to crash", addr)
	}
	srv.Kill()
	return w.Net.KillHost(addr)
}

// RetryParked re-attempts parked transfers on every MAS in the world —
// network hosts and the gateways' embedded home servers. Journaled
// worlds park agents on persistent transfer failure instead of failing
// them home; call this after healing a partition (or reviving a host)
// to set those journeys moving again, then Run the world.
func (w *SimWorld) RetryParked(ctx context.Context) int {
	n := 0
	for _, srv := range w.Hosts {
		n += srv.RetryParked(ctx)
	}
	for _, gw := range w.Gateways {
		n += gw.MAS().RetryParked(ctx)
	}
	return n
}

// RestartHost replaces a crashed host with a fresh MAS over the same
// journal and service state, revives the address, and resumes
// journaled agents. It returns the number of journeys resumed. ctx
// carries the journey clock that resumed agents keep charging.
func (w *SimWorld) RestartHost(ctx context.Context, addr string) (int, error) {
	spec, ok := w.hostSpecs[addr]
	if !ok {
		return 0, fmt.Errorf("core: no host %q to restart", addr)
	}
	srv, err := w.buildHost(addr, spec, w.Journals[addr])
	if err != nil {
		return 0, err
	}
	w.Net.AddHost(addr, netsim.ZoneWired, srv.Handler())
	if err := w.Net.ReviveHost(addr); err != nil {
		return 0, err
	}
	w.Hosts[addr] = srv
	if w.Journals[addr] == nil {
		return 0, nil
	}
	return srv.Resume(ctx)
}

// TickCluster runs one heartbeat round on every running member's node
// (deterministic member order) and returns the total peer answers —
// drive it between Run calls to advance failure suspicion, eviction
// and gossip convergence in virtual time.
func (w *SimWorld) TickCluster(ctx context.Context) int {
	total := 0
	for i, gw := range w.Gateways {
		if w.Nodes[i] == nil || w.crashedGW[gw.Addr()] {
			continue
		}
		total += w.Nodes[i].Tick(ctx)
	}
	// Promote over freshly evicted members (replicated worlds): the
	// member holding the dead member's replica fences it and adopts.
	for len(w.evictions) > 0 {
		dead := w.evictions[0]
		w.evictions = w.evictions[1:]
		w.promoteOver(ctx, dead)
	}
	// Ship buffered commits (the async-mode driver; also retries
	// whatever a degraded semi-sync stream buffered).
	for i, p := range w.Repls {
		if p == nil || w.crashedGW[w.Gateways[i].Addr()] {
			continue
		}
		p.Flush(ctx)
	}
	return total
}

// promoteOver runs the §10 failover on one observed eviction. The
// eviction may be aged out by any member, but only the one actually
// holding dead's replica promotes (the ring successor that was its
// standby) — and Take consumes the replica, so repeated observations
// of the same eviction yield exactly one adoption.
func (w *SimWorld) promoteOver(ctx context.Context, dead string) {
	i := -1
	for j, p := range w.Repls {
		if p != nil && !w.crashedGW[w.Gateways[j].Addr()] && p.Has(dead) {
			i = j
			break
		}
	}
	if i < 0 {
		return
	}
	// Fence first: from this heartbeat on, the ex-primary's streams and
	// dispatches are refused fleet-wide, so adoption cannot race a
	// zombie still answering requests.
	w.Nodes[i].RaiseFence(dead)
	replicas := w.Repls[i].Take(dead)
	var journal, mailbox rms.Store
	if r := replicas[repl.RoleJournal]; r != nil {
		journal = r.NewStore("replica-journal-" + dead)
	}
	if r := replicas[repl.RoleMailbox]; r != nil {
		mailbox = r.NewStore("replica-mailbox-" + dead)
	}
	agents, mailboxes, err := w.Gateways[i].PromoteFrom(ctx, dead, journal, mailbox)
	if err != nil {
		// Keep the world running: a failed adoption leaves the replica
		// consumed but the fence up, which is still safer than a
		// half-fenced split brain.
		return
	}
	w.promotions = append(w.promotions, Promotion{
		Dead: dead, By: w.Gateways[i].Addr(), Agents: agents, Mailboxes: mailboxes,
	})
}

// Promotions lists completed §10 failovers in order.
func (w *SimWorld) Promotions() []Promotion {
	return append([]Promotion(nil), w.promotions...)
}

// CrashGateway simulates a gateway process crash: the embedded MAS
// dies with all in-memory state, the address drops off the network and
// the member stops heartbeating (peers will suspect and evict it).
// Only the journal survives; bring the member back with
// RestartGateway.
func (w *SimWorld) CrashGateway(addr string) error {
	i := w.gatewayIndex(addr)
	if i < 0 {
		return fmt.Errorf("core: no gateway %q to crash", addr)
	}
	w.Gateways[i].MAS().Kill()
	w.crashedGW[addr] = true
	return w.Net.KillHost(addr)
}

// CrashGatewayLosingDisk is CrashGateway plus total disk loss: the
// member's journal and mailbox stores are destroyed, so nothing
// local survives — only the standby's replica (and the fencing epoch
// gossiped after eviction) can carry its agents and mailboxes forward.
// This is the failure warm-standby replication exists for; a later
// RestartGateway brings the member back blank.
func (w *SimWorld) CrashGatewayLosingDisk(addr string) error {
	if err := w.CrashGateway(addr); err != nil {
		return err
	}
	delete(w.Journals, addr)
	delete(w.Mailboxes, addr)
	return nil
}

// RestartGateway replaces a crashed gateway with a fresh instance over
// the same key pair and journal, rejoins it to the cluster (a fresh
// node re-bootstraps from the seed list) and resumes journaled agent
// journeys. It returns the number of journeys resumed. Subscriptions
// issued by the dead instance are lost — devices re-subscribe, as with
// a real middle-tier restart.
func (w *SimWorld) RestartGateway(ctx context.Context, addr string) (int, error) {
	i := w.gatewayIndex(addr)
	if i < 0 {
		return 0, fmt.Errorf("core: no gateway %q to restart", addr)
	}
	// A member that was fenced after eviction re-admits itself by
	// adopting the fleet's fence for its address as its own epoch —
	// the legitimate-restart half of the fencing rule (epoch >= fence
	// passes; only the zombie still claiming the old epoch is refused).
	var epoch uint64
	for j, n := range w.Nodes {
		if n == nil || w.Gateways[j].Addr() == addr || w.crashedGW[w.Gateways[j].Addr()] {
			continue
		}
		if f := n.FenceOf(addr); f > epoch {
			epoch = f
		}
	}
	gw, node, peer, err := w.buildGateway(i, addr, w.gwKeys[addr], w.Journals[addr], epoch)
	if err != nil {
		return 0, err
	}
	w.Net.AddHost(addr, netsim.ZoneWired, gw.Handler())
	if err := w.Net.ReviveHost(addr); err != nil {
		return 0, err
	}
	w.Gateways[i] = gw
	w.Nodes[i] = node
	w.Repls[i] = peer
	delete(w.crashedGW, addr)
	if w.Journals[addr] == nil {
		return 0, nil
	}
	return gw.MAS().Resume(ctx)
}

func (w *SimWorld) gatewayIndex(addr string) int {
	for i, gw := range w.Gateways {
		if gw.Addr() == addr {
			return i
		}
	}
	return -1
}

// DefaultHosts returns the paper's evaluation topology: two bank sites
// on different MAS brands.
func DefaultHosts() map[string]HostSpec {
	mk := func(addr string) *services.Bank {
		return services.NewBank(addr, map[string]int64{"alice": 10_000, "bob": 5_000})
	}
	return map[string]HostSpec{
		"bank-a": {Flavour: "aglets", Bank: mk("bank-a")},
		"bank-b": {Flavour: "voyager", Bank: mk("bank-b")},
	}
}

// GatewayAddrs lists the world's gateway addresses.
func (w *SimWorld) GatewayAddrs() []string {
	out := make([]string, len(w.Gateways))
	for i, g := range w.Gateways {
		out[i] = g.Addr()
	}
	return out
}

// NewDevice creates a handheld platform attached to the wireless side
// of the world, preloaded with the gateway list. Each device gets its
// own wireless zone (same link model as the shared one), so
// DisconnectDevice / ReconnectDevice can churn one device's uplink
// without touching its neighbours.
func (w *SimWorld) NewDevice(owner string) (*device.Platform, error) {
	zone, ok := w.deviceZones[owner]
	if !ok {
		zone = "wl:" + owner
		w.Net.AliasZone(zone, netsim.ZoneWireless)
		w.deviceZones[owner] = zone
	}
	p, err := device.NewPlatform(device.Config{
		Owner:     owner,
		Transport: w.Net.Transport(zone),
		Codec:     compress.LZSS,
		Secure:    true,
		Central:   CentralAddr,
	})
	if err != nil {
		return nil, err
	}
	if err := p.SetGateways(w.GatewayAddrs()); err != nil {
		return nil, err
	}
	return p, nil
}

// DisconnectDevice cuts one device's wireless uplink: its requests
// charge the uplink delay and fail like timeouts (the rest of the world
// keeps running). The device's gateway mailbox keeps accumulating
// whatever happens meanwhile.
func (w *SimWorld) DisconnectDevice(owner string) error {
	zone, ok := w.deviceZones[owner]
	if !ok {
		return fmt.Errorf("core: no device %q to disconnect", owner)
	}
	w.Net.PartitionZones(zone, netsim.ZoneWired)
	return nil
}

// ReconnectDevice heals a device's uplink; the application typically
// follows with OpenSession to drain queued work and collect mail.
func (w *SimWorld) ReconnectDevice(owner string) error {
	zone, ok := w.deviceZones[owner]
	if !ok {
		return fmt.Errorf("core: no device %q to reconnect", owner)
	}
	w.Net.HealZones(zone, netsim.ZoneWired)
	return nil
}

// NewJourney returns a context carrying a fresh virtual clock, plus
// the clock for reading elapsed online time.
func (w *SimWorld) NewJourney() (context.Context, *netsim.Clock) {
	clock := netsim.NewClock()
	return netsim.WithClock(context.Background(), clock), clock
}

// Run drains the world's task queue — every dispatched agent runs its
// journey to completion (or stranding) in deterministic order. It
// returns the number of tasks executed.
func (w *SimWorld) Run() int { return w.Queue.Drain() }

// Close releases every gateway's outbound worker pool. Long-lived
// embedders (and tests that chase agent status, which lazily starts
// the pools) should defer it; one-shot experiment worlds may skip it.
func (w *SimWorld) Close() {
	for _, gw := range w.Gateways {
		gw.Close()
	}
}

// RunUntilResult runs the world and collects the result for an agent,
// a convenience wrapper for the common dispatch→run→collect pattern.
func (w *SimWorld) RunUntilResult(ctx context.Context, dev *device.Platform, agentID string) (*wire.ResultDocument, error) {
	w.Run()
	return dev.Collect(ctx, agentID)
}

// WirelessRTT estimates the configured base wireless round-trip time,
// useful for calibrating experiment thresholds.
func WirelessRTT(l netsim.Link) time.Duration {
	return 2 * l.Latency
}

// Transport exposes a zone-bound round-tripper (for baselines and
// tests).
func (w *SimWorld) Transport(zone string) transport.RoundTripper {
	return w.Net.Transport(zone)
}

package core

import (
	"fmt"
	"testing"

	"pdagent/internal/cluster"
	"pdagent/internal/push"
	"pdagent/internal/repl"
	"pdagent/internal/transport"
)

// These tests drive the warm-standby replication subsystem (DESIGN.md
// §10) end to end through SimWorld: a member dies WITH its disk, the
// standby promotes, and the dead member's agents and mailboxes carry
// on — exactly once. The zombie test proves the other half: a fenced
// ex-primary cannot write anything back into the fleet.

// ownerHomedAt finds a device owner whose e-banking subscription key
// hashes home to addr, so one member holds both the agent journal and
// the device mailbox — the worst member to lose.
func ownerHomedAt(t *testing.T, w *SimWorld, addr string) string {
	t.Helper()
	for i := 0; i < 1024; i++ {
		o := fmt.Sprintf("user-%d", i)
		if w.Nodes[0].Home(cluster.SubscriptionKey(AppEBanking, o)) == addr {
			return o
		}
	}
	t.Fatalf("no owner homed at %s", addr)
	return ""
}

// promoteOverDead ticks the cluster until the fleet evicts the dead
// member and a standby promotes, returning the promotion record.
func promoteOverDead(t *testing.T, w *SimWorld, dead string) Promotion {
	t.Helper()
	ctx, _ := w.NewJourney()
	for i := 0; i < 12 && len(w.Promotions()) == 0; i++ {
		w.TickCluster(ctx)
		w.Run()
	}
	proms := w.Promotions()
	if len(proms) != 1 || proms[0].Dead != dead {
		t.Fatalf("promotions = %+v, want exactly one over %s", proms, dead)
	}
	return proms[0]
}

// TestReplicatePromotionAfterDiskLoss is the §10 acceptance drill in
// miniature: semi-sync replication, the member holding a device's
// journal AND mailbox dies losing its disk entirely, the ring-successor
// standby promotes, and the reconnecting device receives its result
// exactly once from the adopter — the ledgers prove the journey itself
// also ran exactly once.
func TestReplicatePromotionAfterDiskLoss(t *testing.T) {
	w := clusterWorld(t, SimConfig{
		Seed: 61, Journal: true, Mailbox: true,
		Replicate: true, ReplMode: repl.ModeSemiSync,
	})
	defer w.Close()
	ctx, _ := w.NewJourney()
	victim := "gw-1"
	owner := ownerHomedAt(t, w, victim)
	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, victim, AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DisconnectDevice(owner); err != nil {
		t.Fatal(err)
	}
	// The disk dies while the agent is still resident at the victim —
	// its journey has not even started. Semi-sync: every acked commit
	// (the journaled admission, the device's mailbox record) is already
	// on the standby; nothing is pending.
	if n := w.Repls[w.gatewayIndex(victim)].PendingOps(); n != 0 {
		t.Fatalf("semi-sync left %d ops pending", n)
	}
	standby := w.Nodes[w.gatewayIndex("gw-0")].StandbyFor(victim)

	if err := w.CrashGatewayLosingDisk(victim); err != nil {
		t.Fatal(err)
	}
	prom := promoteOverDead(t, w, victim)
	if prom.By != standby {
		t.Fatalf("promoted by %s, want ring successor %s", prom.By, standby)
	}
	if prom.Agents == 0 || prom.Mailboxes == 0 {
		t.Fatalf("promotion adopted %d agents, %d mailboxes; want both > 0", prom.Agents, prom.Mailboxes)
	}
	w.Run() // the adopted journey runs to completion from the adopter

	// The reconnecting device collects from the adopter, exactly once.
	if err := w.ReconnectDevice(owner); err != nil {
		t.Fatal(err)
	}
	s, err := dev.OpenSessionAt(ctx, prom.By)
	if err != nil {
		t.Fatal(err)
	}
	results := 0
	for _, d := range s.Deliveries {
		if d.Kind == push.KindResult && d.AgentID == agentID {
			results++
			if d.Result == nil || !d.Result.OK() {
				t.Fatalf("bad result delivery: %+v", d)
			}
		}
	}
	if results != 1 {
		t.Fatalf("received %d results after promotion, want exactly 1 (%+v)", results, s.Deliveries)
	}
	if s2, _ := dev.OpenSessionAt(ctx, prom.By); len(s2.Deliveries) != 0 {
		t.Fatalf("redelivery after promotion: %+v", s2.Deliveries)
	}
	for _, b := range []string{"bank-a", "bank-b"} {
		bal, _ := w.Banks[b].Balance("alice")
		if bal != 10_000-10 {
			t.Errorf("%s alice = %d, want %d", b, bal, 10_000-10)
		}
	}
}

// TestZombieExPrimaryFenced proves the split-brain half of §10: an
// evicted member that comes back on the network with its old identity
// (same process state, same epoch) cannot write anything — its
// replication stream, its forwarded dispatches and its public dispatch
// endpoint are all refused by the fencing epoch, and it learns it is
// fenced from the first refused heartbeat.
func TestZombieExPrimaryFenced(t *testing.T) {
	w := clusterWorld(t, SimConfig{
		Seed: 67, Journal: true, Mailbox: true, Replicate: true, // async
	})
	defer w.Close()
	ctx, _ := w.NewJourney()
	victim := "gw-2"
	vi := w.gatewayIndex(victim)
	owner := ownerHomedAt(t, w, victim)
	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, victim, AppEBanking); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1)); err != nil {
		t.Fatal(err)
	}
	w.Run()
	w.TickCluster(ctx) // async flush: the standby now holds the replica

	// A second journey whose commits stay in the unflushed async window.
	agent2, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-b"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DisconnectDevice(owner); err != nil {
		t.Fatal(err)
	}
	w.Run()
	window := w.Repls[vi].PendingOps()
	if window == 0 {
		t.Fatal("no pending async window to lose")
	}

	if err := w.CrashGateway(victim); err != nil {
		t.Fatal(err)
	}
	prom := promoteOverDead(t, w, victim)
	adopter := w.gatewayIndex(prom.By)

	// The zombie rises: same instance, same handler, stale epoch.
	if err := w.Net.ReviveHost(victim); err != nil {
		t.Fatal(err)
	}
	zombie := w.Nodes[vi]
	zombie.Tick(ctx) // heartbeats refused fleet-wide; the refusals carry the fence
	if !zombie.Fenced() {
		t.Fatal("zombie did not learn it is fenced from refused heartbeats")
	}

	// Its replication stream is refused: the flush neither recreates a
	// replica at the adopter nor acks the buffered window.
	w.Repls[vi].Flush(ctx)
	if w.Repls[adopter].Has(victim) {
		t.Fatal("zombie stream recreated a replica at the adopter")
	}
	if n := w.Repls[vi].PendingOps(); n != window {
		t.Fatalf("zombie flush acked ops: pending %d, want %d", n, window)
	}

	// Its forwarded writes are refused by the epoch check...
	req := &transport.Request{Path: "/cluster/dispatch", Body: []byte("<whatever/>")}
	req.SetHeader("x-cluster-fwd", victim)
	zombie.StampIdentity(req)
	resp, err := w.Transport("wired").RoundTrip(ctx, prom.By, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != transport.StatusForbidden {
		t.Fatalf("zombie forward: status %d, want %d", resp.Status, transport.StatusForbidden)
	}
	// ...and its own public dispatch endpoint refuses new work (the
	// self-fence latch makes the gateway report unhealthy).
	resp, err = w.Transport("wired").RoundTrip(ctx, victim, &transport.Request{Path: "/pdagent/dispatch"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != transport.StatusUnavailable {
		t.Fatalf("zombie /pdagent/dispatch: status %d, want %d", resp.Status, transport.StatusUnavailable)
	}

	// No double delivery: the adopter serves the replicated result
	// exactly once; the in-window journey is lost (bounded by the async
	// window sampled at the crash), never duplicated.
	if err := w.ReconnectDevice(owner); err != nil {
		t.Fatal(err)
	}
	s, err := dev.OpenSessionAt(ctx, prom.By)
	if err != nil {
		t.Fatal(err)
	}
	byAgent := map[string]int{}
	for _, d := range s.Deliveries {
		if d.Kind == push.KindResult {
			byAgent[d.AgentID]++
		}
	}
	for id, n := range byAgent {
		if n != 1 {
			t.Fatalf("agent %s delivered %d times", id, n)
		}
	}
	if byAgent[agent2] > 1 {
		t.Fatalf("in-window journey %s duplicated", agent2)
	}
	if s2, _ := dev.OpenSessionAt(ctx, prom.By); len(s2.Deliveries) != 0 {
		t.Fatalf("redelivery: %+v", s2.Deliveries)
	}
}

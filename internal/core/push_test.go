package core

import (
	"context"
	"sync"
	"testing"

	"pdagent/internal/mas"
	"pdagent/internal/push"
	"pdagent/internal/transport"
)

// These tests drive the acceptance criterion of the device-session
// subsystem: a device that is OFFLINE when its agent terminates
// receives the result exactly once after reconnecting — on a single
// gateway, through a 3-member cluster whose edge is not the agent's
// home, and across gateway crash/restart (journal and mailbox both
// recover).

func TestOfflineDeviceReceivesResultOnce(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 31, Mailbox: true})
	defer w.Close()
	ctx, _ := w.NewJourney()
	dev := deviceAt(t, w, "alice")
	if err := dev.Subscribe(ctx, "gw-0", AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 1))
	if err != nil {
		t.Fatal(err)
	}

	// The device drops off the air; the journey completes without it.
	if err := w.DisconnectDevice("alice"); err != nil {
		t.Fatal(err)
	}
	w.Run()
	// While offline, the device genuinely cannot reach the gateway...
	if _, err := dev.OpenSession(ctx); err == nil {
		t.Fatal("session succeeded through a cut uplink")
	}
	// ...but the result already sits in its durable mailbox.
	if n := w.Gateways[0].Mailbox().Pending("alice"); n != 1 {
		t.Fatalf("mailbox pending = %d, want 1", n)
	}

	if err := w.ReconnectDevice("alice"); err != nil {
		t.Fatal(err)
	}
	s, err := dev.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Deliveries) != 1 {
		t.Fatalf("deliveries = %+v, want exactly one", s.Deliveries)
	}
	d := s.Deliveries[0]
	if d.Kind != push.KindResult || d.AgentID != agentID || d.Result == nil || !d.Result.OK() {
		t.Fatalf("delivery = %+v", d)
	}
	// Exactly once: nothing on a second session, and the hub agrees.
	s2, err := dev.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Deliveries) != 0 {
		t.Fatalf("redelivery on second session: %+v", s2.Deliveries)
	}
	if st := w.Gateways[0].Mailbox().Stats(); st.Delivered != 1 || st.Pending != 0 {
		t.Fatalf("hub stats = %+v", st)
	}
}

// TestClusterOfflineDeliveryEdgeNotHome: the agent is homed on another
// member than the edge the device talks to; the result relays to the
// edge and lands in the mailbox THERE, so the reconnecting device gets
// it in one hop.
func TestClusterOfflineDeliveryEdgeNotHome(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 37, Mailbox: true})
	defer w.Close()
	ctx, _ := w.NewJourney()
	owner := "alice"
	edge, home := edgeAndHome(t, w, owner)
	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, edge, AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DisconnectDevice(owner); err != nil {
		t.Fatal(err)
	}
	w.Run()

	edgeGW := w.Gateways[w.gatewayIndex(edge)]
	homeGW := w.Gateways[w.gatewayIndex(home)]
	if n := edgeGW.Mailbox().Pending(owner); n != 1 {
		t.Fatalf("edge mailbox pending = %d, want 1 (relay should land the result at the edge)", n)
	}
	if n := homeGW.Mailbox().Pending(owner); n != 0 {
		t.Fatalf("home mailbox pending = %d, want 0 (the device talks to the edge)", n)
	}

	if err := w.ReconnectDevice(owner); err != nil {
		t.Fatal(err)
	}
	s, err := dev.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gateway != edge || len(s.Deliveries) != 1 || s.Deliveries[0].AgentID != agentID ||
		s.Deliveries[0].Result == nil || !s.Deliveries[0].Result.OK() {
		t.Fatalf("session = %+v", s)
	}
	if s2, _ := dev.OpenSession(ctx); s2 == nil || len(s2.Deliveries) != 0 {
		t.Fatalf("redelivery: %+v", s2)
	}
}

// TestMailboxSurvivesGatewayCrash: the gateway process dies after the
// result was enqueued but before the device ever reconnected. The
// replacement instance serves the same mailbox store; the device
// resumes from its cursor with no loss and no duplicate.
func TestMailboxSurvivesGatewayCrash(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 41, Mailbox: true, Journal: true})
	defer w.Close()
	ctx, _ := w.NewJourney()
	dev := deviceAt(t, w, "alice")
	if err := dev.Subscribe(ctx, "gw-0", AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DisconnectDevice("alice"); err != nil {
		t.Fatal(err)
	}
	w.Run() // result lands in the durable mailbox

	if err := w.CrashGateway("gw-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RestartGateway(ctx, "gw-0"); err != nil {
		t.Fatal(err)
	}
	if err := w.ReconnectDevice("alice"); err != nil {
		t.Fatal(err)
	}
	s, err := dev.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Deliveries) != 1 || s.Deliveries[0].AgentID != agentID || s.Deliveries[0].Result == nil {
		t.Fatalf("session after crash = %+v", s)
	}
	if s2, _ := dev.OpenSession(ctx); len(s2.Deliveries) != 0 {
		t.Fatalf("redelivery after crash: %+v", s2.Deliveries)
	}
}

// TestClusterCrashMidJourneyMailboxExactlyOnce is the full acceptance
// drill: 3-member cluster, edge != home, the device offline, and the
// HOME member crashes while the agent is mid-itinerary. The journal
// recovers the journey, the result relays to the edge after the
// restart, and the reconnecting device receives it exactly once — the
// banks' ledgers prove the transactions also ran exactly once.
func TestClusterCrashMidJourneyMailboxExactlyOnce(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 43, Mailbox: true, Journal: true})
	defer w.Close()
	ctx, _ := w.NewJourney()
	owner := "alice"
	edge, home := edgeAndHome(t, w, owner)
	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, edge, AppEBanking); err != nil {
		t.Fatal(err)
	}
	const txns = 2
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, txns))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DisconnectDevice(owner); err != nil {
		t.Fatal(err)
	}

	// Let the agent reach bank-a, then kill its home member.
	for w.Hosts["bank-a"].AgentStates()[agentID] != mas.StateRunning {
		if !w.Queue.Step() {
			t.Fatal("agent never reached bank-a")
		}
	}
	if err := w.CrashGateway(home); err != nil {
		t.Fatal(err)
	}
	w.Run()
	if _, err := w.RestartGateway(ctx, home); err != nil {
		t.Fatal(err)
	}
	if n := w.RetryParked(ctx); n == 0 {
		t.Fatal("no parked transfers to retry after restart")
	}
	w.Run()

	if err := w.ReconnectDevice(owner); err != nil {
		t.Fatal(err)
	}
	s, err := dev.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var results int
	for _, d := range s.Deliveries {
		if d.Kind == push.KindResult && d.AgentID == agentID {
			results++
			if d.Result == nil || !d.Result.OK() {
				t.Fatalf("bad result delivery: %+v", d)
			}
		}
	}
	if results != 1 {
		t.Fatalf("received %d results across crash/restart, want exactly 1 (%+v)", results, s.Deliveries)
	}
	// A second session redelivers nothing, even though the recovery may
	// have used the pull-repair path.
	if s2, _ := dev.OpenSession(ctx); len(s2.Deliveries) != 0 {
		t.Fatalf("redelivery: %+v", s2.Deliveries)
	}
	// The ledgers prove exactly-once execution.
	for _, b := range []string{"bank-a", "bank-b"} {
		bal, _ := w.Banks[b].Balance("alice")
		if want := int64(10_000 - 10*txns); bal != want {
			t.Errorf("%s alice = %d, want %d", b, bal, want)
		}
	}
}

// TestMailboxFollowsDeviceAcrossEdges: the device reconnects through a
// DIFFERENT member than the one holding its mailbox; the new edge pulls
// the mailbox over on demand and the old edge retires it.
func TestMailboxFollowsDeviceAcrossEdges(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 47, Mailbox: true})
	defer w.Close()
	ctx, _ := w.NewJourney()
	owner := "alice"
	edge, _ := edgeAndHome(t, w, owner)
	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, edge, AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DisconnectDevice(owner); err != nil {
		t.Fatal(err)
	}
	w.Run()

	// Reconnect through another member.
	var other string
	for _, gw := range w.Gateways {
		if gw.Addr() != edge {
			other = gw.Addr()
			break
		}
	}
	if err := w.ReconnectDevice(owner); err != nil {
		t.Fatal(err)
	}
	s, err := dev.OpenSessionAt(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	var results int
	for _, d := range s.Deliveries {
		if d.Kind == push.KindResult && d.AgentID == agentID {
			results++
		}
	}
	if results != 1 {
		t.Fatalf("migration delivered %d results, want 1 (%+v)", results, s.Deliveries)
	}
	// The old edge handed the mailbox over.
	if n := w.Gateways[w.gatewayIndex(edge)].Mailbox().Pending(owner); n != 0 {
		t.Fatalf("old edge still holds %d entries after migration", n)
	}
	// Nothing redelivers — through either member.
	if s2, _ := dev.OpenSessionAt(ctx, other); len(s2.Deliveries) != 0 {
		t.Fatalf("redelivery at new edge: %+v", s2.Deliveries)
	}
	if s3, _ := dev.OpenSessionAt(ctx, edge); s3 != nil && len(s3.Deliveries) != 0 {
		t.Fatalf("redelivery at old edge: %+v", s3.Deliveries)
	}
}

// attackerSink records every request that reaches it — it stands in
// for an attacker-controlled host a forged prev-edge header points at.
type attackerSink struct {
	mu   sync.Mutex
	reqs []*transport.Request
}

func (a *attackerSink) Serve(_ context.Context, req *transport.Request) *transport.Response {
	a.mu.Lock()
	cp := &transport.Request{Path: req.Path, Body: req.Body}
	for k, v := range req.Header {
		cp.SetHeader(k, v)
	}
	a.reqs = append(a.reqs, cp)
	a.mu.Unlock()
	return transport.OKText("owned")
}

// TestMailboxPullRefusesNonMembers: prev-edge is client-supplied and
// the migration pull carries the shared cluster secret, so a gateway
// must only honour it for live cluster members — never forward the
// secret to an address an unauthenticated client chose.
func TestMailboxPullRefusesNonMembers(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 53, Mailbox: true})
	defer w.Close()
	ctx, _ := w.NewJourney()
	sink := &attackerSink{}
	w.Net.AddHost("attacker-host", "wired", sink)

	owner := "alice"
	edge, _ := edgeAndHome(t, w, owner)
	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, edge, AppEBanking); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1)); err != nil {
		t.Fatal(err)
	}
	w.Run()

	// Forge a poll naming the attacker as the previous edge. The token
	// is the device's own (the attack here is the SSRF, not the read).
	tok := w.Gateways[w.gatewayIndex(edge)].Mailbox().Touch(owner)
	req := &transport.Request{Path: "/pdagent/mailbox"}
	req.SetHeader("device", owner)
	req.SetHeader("mailbox-token", tok)
	req.SetHeader("prev-edge", "attacker-host")
	resp, err := w.Transport("wired").RoundTrip(ctx, edge, req)
	if err != nil || !resp.IsOK() {
		t.Fatalf("poll: %v %v", resp, err)
	}
	sink.mu.Lock()
	n := len(sink.reqs)
	sink.mu.Unlock()
	if n != 0 {
		t.Fatalf("gateway contacted the attacker host %d time(s) — cluster secret exfiltrated", n)
	}
	// The poll itself still served the device's mail.
	_, entries, _, _, _, _, perr := push.ParseEntries(resp.Body)
	if perr != nil || len(entries) != 1 {
		t.Fatalf("poll served %d entries (%v), want 1", len(entries), perr)
	}
}

package core

import (
	"fmt"

	"pdagent/internal/gateway"
	"pdagent/internal/wire"
)

// Standard application code ids, published in every gateway catalogue
// by RegisterStandardApps.
const (
	// AppEBanking is the paper's §4 evaluation application.
	AppEBanking = "app.ebanking"
	// AppFoodSearch is the paper's "Food Search Engine" example.
	AppFoodSearch = "app.foodsearch"
	// AppMobileOffice is the §1 "mobile office" scenario.
	AppMobileOffice = "app.mobileoffice"
	// AppEcho is a trivial diagnostic application.
	AppEcho = "app.echo"
	// AppWorkflow is the §5 future-work "mobile workflow management"
	// application, implemented as an extension.
	AppWorkflow = "app.workflow"
	// AppMCommerce is the §5 future-work "m-commerce" application: a
	// shopping tour that buys at the cheapest vendor.
	AppMCommerce = "app.mcommerce"
)

// EBankingSource is the MAScript for the paper's e-banking evaluation:
// the client's agent visits each bank site, executes the submitted
// transactions with the resident Service Agent, and brings all
// transaction details back to the gateway (Figure 10).
//
// Parameters:
//
//	banks        list of bank host addresses to visit
//	transactions list of {"from", "to", "amount"} maps; a transaction
//	             is executed at every bank on the itinerary
const EBankingSource = `// e-banking: execute transactions at each bank site (ICPP'04 §4)
let receipts = [];
let failures = [];
for bank in param("banks") {
    migrate(bank);
    for t in param("transactions") {
        let r = service("bank.transfer", t["from"], t["to"], t["amount"]);
        if r["ok"] {
            push(receipts, {"bank": here(), "txid": r["txid"], "amount": t["amount"]});
        } else {
            push(failures, {"bank": here(), "error": r["error"]});
        }
    }
    log("executed " + str(len(param("transactions"))) + " transaction(s) at " + here());
}
migrate(home());
deliver("receipts", receipts);
deliver("failures", failures);
deliver("banksVisited", hops() - 1);
`

// FoodSearchSource is the MAScript for the Food Search Engine: the
// agent sweeps the directory sites, querying each resident guide, and
// returns the merged, price-sorted matches.
//
// Parameters:
//
//	sites     list of directory host addresses
//	query     free-text query (name, cuisine or district)
//	maxprice  optional price ceiling (int, 0 = unlimited)
const FoodSearchSource = `// food search engine: sweep directory sites and merge matches
let all = [];
let maxprice = param("maxprice", 0);
for site in param("sites") {
    migrate(site);
    let r = nil;
    if maxprice > 0 {
        r = service("food.search_max", param("query"), maxprice);
    } else {
        r = service("food.search", param("query"));
    }
    if r["ok"] {
        for m in r["matches"] { push(all, m); }
    }
}
migrate(home());

// order by price, cheapest first (selection sort keeps the code tiny)
let n = len(all);
let i = 0;
while i < n {
    let best = i;
    let j = i + 1;
    while j < n {
        if all[j]["price"] < all[best]["price"] { best = j; }
        j = j + 1;
    }
    let tmp = all[i];
    all[i] = all[best];
    all[best] = tmp;
    i = i + 1;
}
deliver("matches", all);
deliver("count", len(all));
`

// MobileOfficeSource is the MAScript for the mobile-office scenario:
// the agent visits office sites, collects the documents matching a
// name filter, and leaves a status note at each site.
//
// Parameters:
//
//	offices  list of office host addresses
//	filter   substring a document name must contain ("" = all)
//	note     status note posted at each site (optional)
const MobileOfficeSource = `// mobile office: collect matching documents from office sites
let collected = [];
for office in param("offices") {
    migrate(office);
    let listing = service("docs.list");
    if listing["ok"] {
        for name in listing["names"] {
            if param("filter", "") == "" || has(name, param("filter")) {
                let doc = service("docs.fetch", name);
                if doc["ok"] {
                    push(collected, {"site": here(), "name": name, "body": doc["body"]});
                }
            }
        }
    }
    if param("note", "") != "" {
        service("docs.put", "note-from-" + agentid() + ".txt", param("note"));
    }
}
migrate(home());
deliver("documents", collected);
deliver("count", len(collected));
`

// EchoSource is a minimal diagnostic agent: it echoes its parameters
// without leaving the gateway.
const EchoSource = `// echo: return parameters without travelling
deliver("echo", params());
deliver("steps", 1);
`

// WorkflowSource is the MAScript for the paper's §5 future-work
// "mobile workflow management": the agent routes an approval request
// through a chain of authority sites in order; a rejection
// short-circuits the chain and the agent returns immediately with the
// reason, so later approvers are never bothered.
//
// Parameters:
//
//	chain    list of approval site addresses, in routing order
//	kind     request kind (e.g. "purchase", "leave")
//	subject  what is being requested
//	amount   the requested amount (int)
const WorkflowSource = `// mobile workflow: route an approval chain (paper §5 future work)
let approvals = [];
let outcome = "approved";
let stoppedAt = "";
for site in param("chain") {
    migrate(site);
    let r = service("approve.review", param("kind"), param("subject"), param("amount"));
    push(approvals, {
        "site": here(),
        "approver": r["approver"],
        "decision": r["decision"],
        "comment": r["comment"]
    });
    if r["decision"] != "approved" {
        outcome = "rejected";
        stoppedAt = here();
        break;
    }
}
migrate(home());
deliver("outcome", outcome);
deliver("approvals", approvals);
if outcome == "rejected" {
    deliver("stoppedAt", stoppedAt);
}
`

// MCommerceSource is the MAScript for the §5 future-work "m-commerce"
// application: the agent tours the vendor sites collecting quotes,
// autonomously picks the cheapest in-stock offer within budget,
// travels back to that vendor and completes the purchase — the classic
// mobile-agent shopping tour, executed entirely while the user is
// offline.
//
// Parameters:
//
//	vendors  list of shop site addresses
//	item     the item to buy
//	budget   maximum acceptable price (int)
const MCommerceSource = `// m-commerce: quote everywhere, buy at the cheapest vendor (§5)
let quotes = [];
let bestSite = "";
let bestPrice = 0;
for v in param("vendors") {
    migrate(v);
    let q = service("shop.quote", param("item"));
    if q["ok"] {
        push(quotes, {"site": here(), "price": q["price"], "stock": q["stock"]});
        if q["stock"] > 0 && q["price"] <= param("budget") {
            if bestSite == "" || q["price"] < bestPrice {
                bestSite = here();
                bestPrice = q["price"];
            }
        }
    }
}
if bestSite == "" {
    migrate(home());
    deliver("bought", false);
    deliver("reason", "no vendor within budget " + str(param("budget")));
    deliver("quotes", quotes);
} else {
    migrate(bestSite);
    let receipt = service("shop.buy", param("item"), param("budget"));
    migrate(home());
    deliver("bought", receipt["ok"]);
    if receipt["ok"] {
        deliver("order", receipt["order"]);
        deliver("price", receipt["price"]);
        deliver("vendor", receipt["site"]);
    } else {
        deliver("reason", receipt["error"]);
    }
    deliver("quotes", quotes);
}
`

// StandardApps returns the built-in code packages.
func StandardApps() []*wire.CodePackage {
	return []*wire.CodePackage{
		{
			CodeID: AppEBanking, Name: "E-Banking", Version: "1.0",
			Description: "Execute bank transactions across bank sites (paper §4).",
			Source:      EBankingSource,
		},
		{
			CodeID: AppFoodSearch, Name: "Food Search Engine", Version: "1.0",
			Description: "Search restaurant directories across sites and merge results.",
			Source:      FoodSearchSource,
		},
		{
			CodeID: AppMobileOffice, Name: "Mobile Office", Version: "1.0",
			Description: "Collect documents from office sites while offline.",
			Source:      MobileOfficeSource,
		},
		{
			CodeID: AppEcho, Name: "Echo", Version: "1.0",
			Description: "Diagnostic echo of parameters.",
			Source:      EchoSource,
		},
		{
			CodeID: AppWorkflow, Name: "Mobile Workflow", Version: "1.0",
			Description: "Route an approval request through a chain of authority sites (paper §5).",
			Source:      WorkflowSource,
		},
		{
			CodeID: AppMCommerce, Name: "M-Commerce Shopper", Version: "1.0",
			Description: "Quote every vendor, buy at the cheapest within budget (paper §5).",
			Source:      MCommerceSource,
		},
	}
}

// RegisterStandardApps publishes the built-in applications in a
// gateway's catalogue.
func RegisterStandardApps(gw *gateway.Gateway) error {
	for _, cp := range StandardApps() {
		if err := gw.AddCodePackage(cp); err != nil {
			return fmt.Errorf("core: registering %s: %w", cp.CodeID, err)
		}
	}
	return nil
}

package core

import (
	"context"
	"testing"

	"pdagent/internal/transport"
	"pdagent/internal/wire"
)

// TestTraceReconstructsForwardedJourney is the PR-9 acceptance test
// for itinerary tracing: a dispatch uploaded at an edge member,
// forwarded to its consistent-hash home, executed across bank MAS
// hosts (which are NOT cluster members) and relayed back must be
// reconstructible end to end from a single /pdagent/trace/{agent-id}
// request at the edge — the edge's own spans, the home member's spans
// fetched over the authenticated /cluster/trace channel, and the bank
// hosts' spans chased along the transfer-out hops.
func TestTraceReconstructsForwardedJourney(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 7, Mailbox: true})
	defer w.Close()
	ctx, _ := w.NewJourney()
	owner := "alice"
	edge, home := edgeAndHome(t, w, owner)

	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, edge, AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	w.Run()

	edgeGW := w.Gateways[w.gatewayIndex(edge)]
	resp := edgeGW.Handler().Serve(context.Background(), &transport.Request{
		Path: "/pdagent/trace/" + agentID,
	})
	if !resp.IsOK() {
		t.Fatalf("trace fetch: %d %s", resp.Status, resp.Text())
	}
	td, err := wire.ParseTrace(resp.Body)
	if err != nil {
		t.Fatalf("parsing trace doc: %v", err)
	}
	if td.TraceID != agentID {
		t.Fatalf("trace id = %q, want %q", td.TraceID, agentID)
	}

	members := map[string]bool{}
	ops := map[string]int{}
	for i, sp := range td.Spans {
		if sp.Member == "" || sp.Op == "" {
			t.Fatalf("span %d missing member/op: %+v", i, sp)
		}
		if i > 0 && sp.At < td.Spans[i-1].At {
			t.Fatalf("spans not At-ordered at %d: %d after %d", i, sp.At, td.Spans[i-1].At)
		}
		members[sp.Member] = true
		ops[sp.Op]++
	}

	// The journey touched at least the edge, the home member, and one
	// bank host — three distinct recording members, one of which is
	// reachable only by chasing the itinerary (banks are not cluster
	// members).
	if len(members) < 3 {
		t.Fatalf("trace covers %d members (%v), want >= 3", len(members), members)
	}
	if !members[edge] || !members[home] {
		t.Fatalf("trace missing edge/home spans: %v", members)
	}
	bankSeen := false
	for _, b := range []string{"bank-a", "bank-b"} {
		if members[b] {
			bankSeen = true
		}
	}
	if !bankSeen {
		t.Fatalf("trace has no bank-host spans (chase failed): %v", members)
	}

	// Every hop kind the forwarded journey performs must be present:
	// the edge's dispatch+forward, the home's admit, the travel
	// (transfer-out at each departure, transfer-in at each MAS host),
	// delivery, the result at home, its relay to the edge, the edge's
	// adoption, and the mailbox enqueue.
	for _, op := range []string{
		"dispatch", "forward", "admit",
		"transfer-out", "transfer-in", "deliver",
		"result", "relay-result", "adopt-result", "mailbox",
	} {
		if ops[op] == 0 {
			t.Errorf("trace missing op %q (ops seen: %v)", op, ops)
		}
	}
	// The agent visited two banks and came home: at least three
	// transfer-out hops (home→bank-a, bank-a→bank-b, bank-b→home).
	if ops["transfer-out"] < 3 {
		t.Errorf("transfer-out count = %d, want >= 3", ops["transfer-out"])
	}

	// The same itinerary asked of the home member local-only must be a
	// strict subset: scope=local answers from one ring.
	lreq := &transport.Request{Path: "/pdagent/trace/" + agentID}
	lreq.SetHeader("scope", "local")
	lresp := edgeGW.Handler().Serve(context.Background(), lreq)
	if !lresp.IsOK() {
		t.Fatalf("local trace fetch: %d %s", lresp.Status, lresp.Text())
	}
	ltd, err := wire.ParseTrace(lresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(ltd.Spans) >= len(td.Spans) {
		t.Fatalf("local scope returned %d spans, full reconstruction %d — chase added nothing",
			len(ltd.Spans), len(td.Spans))
	}
	for _, sp := range ltd.Spans {
		if sp.Member != edge {
			t.Fatalf("scope=local leaked a foreign span: %+v", sp)
		}
	}
}

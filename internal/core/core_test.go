package core

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pdagent/internal/device"
	"pdagent/internal/gateway"
	"pdagent/internal/mavm"
	"pdagent/internal/netsim"
	"pdagent/internal/pisec"
	"pdagent/internal/rms"
	"pdagent/internal/transport"
)

// testWorld builds a small-keyed world for test speed.
func testWorld(t *testing.T, cfg SimConfig) *SimWorld {
	t.Helper()
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 1024
	}
	w, err := NewSimWorld(cfg)
	if err != nil {
		t.Fatalf("NewSimWorld: %v", err)
	}
	return w
}

func ebankingParams(banks []string, txns int) map[string]mavm.Value {
	bankVals := make([]mavm.Value, len(banks))
	for i, b := range banks {
		bankVals[i] = mavm.Str(b)
	}
	txnVals := make([]mavm.Value, txns)
	for i := range txnVals {
		m := mavm.NewMap()
		m.MapEntries()["from"] = mavm.Str("alice")
		m.MapEntries()["to"] = mavm.Str("bob")
		m.MapEntries()["amount"] = mavm.Int(10)
		txnVals[i] = m
	}
	return map[string]mavm.Value{
		"banks":        mavm.NewList(bankVals...),
		"transactions": mavm.NewList(txnVals...),
	}
}

func TestEndToEndEBanking(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 1})
	dev, err := w.NewDevice("alice-pda")
	if err != nil {
		t.Fatal(err)
	}
	ctx, clock := w.NewJourney()

	// §3.1 subscription.
	entries, err := dev.Catalogue(ctx, "gw-0")
	if err != nil {
		t.Fatalf("Catalogue: %v", err)
	}
	if len(entries) != len(StandardApps()) {
		t.Fatalf("catalogue entries = %d", len(entries))
	}
	if err := dev.Subscribe(ctx, "gw-0", AppEBanking); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if subs := dev.Subscriptions(); len(subs) != 1 || subs[0] != AppEBanking {
		t.Fatalf("Subscriptions = %v", subs)
	}

	// §3.2 dispatch: measure the online time of the PI upload.
	before := clock.Now()
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 3))
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	uploadTime := clock.Now() - before
	if uploadTime <= 0 {
		t.Fatal("dispatch consumed no virtual time")
	}
	if len(dev.Pending()) != 1 {
		t.Fatalf("Pending = %v", dev.Pending())
	}

	// Device is now offline; the journey happens in the wired world.
	if _, err := dev.Collect(ctx, agentID); !errors.Is(err, device.ErrNotReady) {
		t.Fatalf("early Collect err = %v, want ErrNotReady", err)
	}
	w.Run()

	// §3.3 result collection.
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !rd.OK() {
		t.Fatalf("journey failed: %s", rd.Error)
	}
	receipts, _ := rd.Get("receipts")
	if len(receipts.ListItems()) != 6 { // 3 txns at 2 banks
		t.Fatalf("receipts = %v", receipts)
	}
	failures, _ := rd.Get("failures")
	if len(failures.ListItems()) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	if rd.Hops != 3 {
		t.Fatalf("hops = %d", rd.Hops)
	}
	// Money really moved at both banks: 3 txns × 10 each.
	for _, b := range []string{"bank-a", "bank-b"} {
		if bal, _ := w.Banks[b].Balance("alice"); bal != 10_000-30 {
			t.Errorf("%s alice balance = %d", b, bal)
		}
	}
	if len(dev.Pending()) != 0 {
		t.Fatalf("Pending after collect = %v", dev.Pending())
	}
}

func TestDispatchWithoutSubscriptionRefused(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 2})
	dev, _ := w.NewDevice("mallory")
	ctx, _ := w.NewJourney()
	if _, err := dev.Dispatch(ctx, AppEBanking, nil); !errors.Is(err, device.ErrNotSubscribed) {
		t.Fatalf("err = %v, want ErrNotSubscribed", err)
	}
}

func TestForgedDispatchKeyRefused(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 3})
	dev, _ := w.NewDevice("alice")
	ctx, _ := w.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", AppEcho); err != nil {
		t.Fatal(err)
	}
	// A second device re-using alice's code id but its own (different)
	// secret must be refused: no subscription for that owner.
	dev2, _ := w.NewDevice("eve")
	if err := dev2.Subscribe(ctx, "gw-0", AppEcho); err != nil {
		t.Fatal(err)
	}
	// Both are subscribed; sanity: both can dispatch.
	if _, err := dev.Dispatch(ctx, AppEcho, nil); err != nil {
		t.Fatalf("alice dispatch: %v", err)
	}
	if _, err := dev2.Dispatch(ctx, AppEcho, nil); err != nil {
		t.Fatalf("eve dispatch: %v", err)
	}
}

func TestFailedJourneyReportsError(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 4})
	dev, _ := w.NewDevice("alice")
	ctx, _ := w.NewJourney()
	dev.Subscribe(ctx, "gw-0", AppEBanking) //nolint:errcheck
	// Itinerary includes a host that does not exist.
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "ghost-bank"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if rd.OK() || rd.Status != "failed" {
		t.Fatalf("status = %s", rd.Status)
	}
}

func TestApplicationLevelFailureDelivered(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 5})
	dev, _ := w.NewDevice("alice")
	ctx, _ := w.NewJourney()
	dev.Subscribe(ctx, "gw-0", AppEBanking) //nolint:errcheck
	params := ebankingParams([]string{"bank-a"}, 1)
	params["transactions"].ListItems()[0].MapEntries()["amount"] = mavm.Int(99_999_999)
	agentID, _ := dev.Dispatch(ctx, AppEBanking, params)
	w.Run()
	rd, err := dev.Collect(ctx, agentID)
	if err != nil || !rd.OK() {
		t.Fatalf("journey should complete: %v / %+v", err, rd)
	}
	failures, _ := rd.Get("failures")
	if len(failures.ListItems()) != 1 {
		t.Fatalf("failures = %v", failures)
	}
	msg := failures.ListItems()[0].MapEntries()["error"].AsStr()
	if !strings.Contains(msg, "insufficient") {
		t.Fatalf("failure message = %q", msg)
	}
}

func TestAgentStatusWhileTravelling(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 6})
	dev, _ := w.NewDevice("alice")
	ctx, _ := w.NewJourney()
	dev.Subscribe(ctx, "gw-0", AppEBanking) //nolint:errcheck
	agentID, _ := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1))

	// Before running the world the agent is still at the gateway (its
	// first slice has not run).
	state, _, err := dev.AgentStatus(ctx, agentID)
	if err != nil {
		t.Fatalf("AgentStatus: %v", err)
	}
	if state != "travelling" {
		t.Fatalf("state before run = %q", state)
	}
	w.Run()
	state, _, err = dev.AgentStatus(ctx, agentID)
	if err != nil || state != "complete" {
		t.Fatalf("state after run = %q, %v", state, err)
	}
}

func TestGatewaySelectionByRTT(t *testing.T) {
	w := testWorld(t, SimConfig{
		Seed:         7,
		GatewayAddrs: []string{"gw-near", "gw-far"},
	})
	// Make gw-far genuinely far: its zone link is slow.
	w.Net.AddHost("gw-far", "far-zone", w.Gateways[1].Handler())
	w.Net.SetLinkBoth(netsim.ZoneWireless, "far-zone", netsim.Link{Latency: 3 * time.Second})

	dev, _ := w.NewDevice("alice")
	ctx, _ := w.NewJourney()
	addr, rtt, err := dev.SelectGateway(ctx)
	if err != nil {
		t.Fatalf("SelectGateway: %v", err)
	}
	if addr != "gw-near" {
		t.Fatalf("selected %q, want gw-near", addr)
	}
	if rtt <= 0 {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestGatewayListRefreshOnThresholdBreach(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 8, GatewayAddrs: []string{"gw-0", "gw-1"}})
	dev, _ := w.NewDevice("alice")
	ctx, _ := w.NewJourney()

	// Device starts with a stale list pointing only at a far gateway.
	w.Net.AddHost("gw-stale", "far-zone", w.Gateways[1].Handler())
	w.Net.SetLinkBoth(netsim.ZoneWireless, "far-zone", netsim.Link{Latency: 5 * time.Second})
	if err := dev.SetGateways([]string{"gw-stale"}); err != nil {
		t.Fatal(err)
	}

	// Selection must refresh from the central server and land on a
	// near gateway.
	addr, rtt, err := dev.SelectGateway(ctx)
	if err != nil {
		t.Fatalf("SelectGateway: %v", err)
	}
	if addr != "gw-0" && addr != "gw-1" {
		t.Fatalf("selected %q after refresh", addr)
	}
	if rtt > 2*time.Second {
		t.Fatalf("rtt after refresh = %v", rtt)
	}
	if got := dev.Gateways(); len(got) != 2 {
		t.Fatalf("list after refresh = %v", got)
	}
}

func TestManagementDisposeViaGateway(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 9})
	dev, _ := w.NewDevice("alice")
	ctx, _ := w.NewJourney()
	dev.Subscribe(ctx, "gw-0", AppEBanking) //nolint:errcheck
	agentID, _ := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1))

	// Dispose before the journey starts: the agent is resident at the
	// gateway's home MAS.
	if err := dev.Dispose(ctx, agentID); err != nil {
		t.Fatalf("Dispose: %v", err)
	}
	w.Run()
	// No result ever arrives, and the device forgot the journey.
	if len(dev.Pending()) != 0 {
		t.Fatalf("Pending = %v", dev.Pending())
	}
	if _, err := dev.Collect(ctx, agentID); err == nil {
		t.Fatal("collect after dispose succeeded")
	}
	// No money moved.
	if bal, _ := w.Banks["bank-a"].Balance("alice"); bal != 10_000 {
		t.Fatalf("alice balance = %d", bal)
	}
}

func TestDevicePersistenceAcrossRestart(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 10})
	store := rms.NewMemStore("device-db", 0)
	mk := func() *device.Platform {
		p, err := device.NewPlatform(device.Config{
			Owner:     "alice",
			Transport: w.Net.Transport(netsim.ZoneWireless),
			Store:     store,
			Secure:    true,
			Central:   CentralAddr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	dev := mk()
	ctx, _ := w.NewJourney()
	if err := dev.SetGateways(w.GatewayAddrs()); err != nil {
		t.Fatal(err)
	}
	if err := dev.Subscribe(ctx, "gw-0", AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1))
	if err != nil {
		t.Fatal(err)
	}

	// "Reboot" the device: a fresh platform over the same store.
	dev2 := mk()
	if subs := dev2.Subscriptions(); len(subs) != 1 || subs[0] != AppEBanking {
		t.Fatalf("subscriptions after restart = %v", subs)
	}
	if pend := dev2.Pending(); len(pend) != 1 || pend[0] != agentID {
		t.Fatalf("pending after restart = %v", pend)
	}
	if gws := dev2.Gateways(); len(gws) != 1 || gws[0] != "gw-0" {
		t.Fatalf("gateways after restart = %v", gws)
	}
	// The rebooted device can still collect.
	w.Run()
	rd, err := dev2.Collect(ctx, agentID)
	if err != nil || !rd.OK() {
		t.Fatalf("collect after restart: %v / %+v", err, rd)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (time.Duration, string) {
		w := testWorld(t, SimConfig{Seed: 42})
		dev, _ := w.NewDevice("alice")
		ctx, clock := w.NewJourney()
		dev.Subscribe(ctx, "gw-0", AppEBanking) //nolint:errcheck
		id, _ := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 2))
		w.Run()
		rd, err := dev.Collect(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		receipts, _ := rd.Get("receipts")
		return clock.Now(), receipts.String()
	}
	t1, r1 := run()
	t2, r2 := run()
	// Network randomness is seeded; the only residual wobble is crypto
	// randomness shifting compressed payloads by a few bytes (a few
	// hundred µs of simulated bandwidth time).
	diff := t1 - t2
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*time.Millisecond {
		t.Fatalf("same seed, different virtual time: %v vs %v", t1, t2)
	}
	if r1 != r2 {
		t.Fatalf("same seed, different receipts:\n%s\n%s", r1, r2)
	}
}

// TestGatewayRestartRequiresResubscription documents recovery: a
// gateway that loses its in-memory subscription state (restart)
// refuses stale dispatch keys, and the device recovers by
// resubscribing.
func TestGatewayRestartRequiresResubscription(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 12})
	dev, _ := w.NewDevice("alice")
	ctx, _ := w.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", AppEcho); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Dispatch(ctx, AppEcho, nil); err != nil {
		t.Fatal(err)
	}

	// "Restart" the gateway: a fresh instance (new key pair, empty
	// subscription table) takes over the same address.
	kp, err := pisec.GenerateKeyPair(1024)
	if err != nil {
		t.Fatal(err)
	}
	gw2, err := gateway.New(gateway.Config{
		Addr:      "gw-0",
		KeyPair:   kp,
		Transport: w.Net.Transport(netsim.ZoneWired),
		Spawn:     w.Queue.Go,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterStandardApps(gw2); err != nil {
		t.Fatal(err)
	}
	w.Net.AddHost("gw-0", netsim.ZoneWired, gw2.Handler())

	// The stale subscription fails cleanly (either the old key cannot
	// be opened or the subscription is unknown)...
	if _, err := dev.Dispatch(ctx, AppEcho, nil); err == nil {
		t.Fatal("dispatch with stale subscription succeeded after restart")
	}
	// ...and resubscribing restores service.
	if err := dev.Subscribe(ctx, "gw-0", AppEcho); err != nil {
		t.Fatalf("resubscribe: %v", err)
	}
	id, err := dev.Dispatch(ctx, AppEcho, nil)
	if err != nil {
		t.Fatalf("dispatch after resubscribe: %v", err)
	}
	w.Run()
	if rd, err := dev.Collect(ctx, id); err != nil || !rd.OK() {
		t.Fatalf("collect after restart: %v / %+v", err, rd)
	}
}

// TestEndToEndOverRealHTTP runs the identical flow over loopback HTTP:
// same gateway, MAS and device code, real sockets instead of netsim.
func TestEndToEndOverRealHTTP(t *testing.T) {
	httpTr := &transport.HTTPClient{}

	// Build the sim world only to reuse its construction logic? No —
	// build live components directly.
	world, err := NewLiveWorld(LiveConfig{
		KeyBits: 1024,
		Serve: func(h transport.Handler) (addr string, stop func()) {
			srv := httptest.NewServer(transport.NewHTTPHandler(h))
			return strings.TrimPrefix(srv.URL, "http://"), srv.Close
		},
	})
	if err != nil {
		t.Fatalf("NewLiveWorld: %v", err)
	}
	defer world.Stop()

	dev, err := device.NewPlatform(device.Config{
		Owner:     "alice-live",
		Transport: httpTr,
		Secure:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetGateways([]string{world.GatewayAddr}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := dev.Subscribe(ctx, world.GatewayAddr, AppEBanking); err != nil {
		t.Fatalf("Subscribe over HTTP: %v", err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams(world.BankAddrs, 2))
	if err != nil {
		t.Fatalf("Dispatch over HTTP: %v", err)
	}

	// Poll for the result (live mode is asynchronous).
	deadline := time.Now().Add(10 * time.Second)
	var rd *resultDoc
	for time.Now().Before(deadline) {
		r, err := dev.Collect(ctx, agentID)
		if err == nil {
			rd = &resultDoc{r.Status, r.Error}
			break
		}
		if !errors.Is(err, device.ErrNotReady) {
			t.Fatalf("Collect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rd == nil {
		t.Fatal("result never arrived over HTTP")
	}
	if rd.status != "done" {
		t.Fatalf("status = %s (%s)", rd.status, rd.err)
	}
}

type resultDoc struct{ status, err string }

package core

import (
	"strings"
	"testing"

	"pdagent/internal/mascript"
	"pdagent/internal/mavm"
	"pdagent/internal/services"
	"pdagent/internal/wire"
)

// TestStandardAppsCompile guards the catalogue: every shipped source
// must compile, carry a unique id, and stay inside the paper's code
// size band.
func TestStandardAppsCompile(t *testing.T) {
	seen := map[string]bool{}
	for _, cp := range StandardApps() {
		if seen[cp.CodeID] {
			t.Errorf("duplicate code id %q", cp.CodeID)
		}
		seen[cp.CodeID] = true
		prog, err := mascript.Compile(cp.Source)
		if err != nil {
			t.Errorf("%s does not compile: %v", cp.CodeID, err)
			continue
		}
		if prog.Digest() == "" {
			t.Errorf("%s: empty digest", cp.CodeID)
		}
		if len(cp.Source) > 8192 {
			t.Errorf("%s: source %d bytes exceeds the paper's 8KB band", cp.CodeID, len(cp.Source))
		}
	}
	if len(seen) < 6 {
		t.Fatalf("expected at least 6 standard apps, got %d", len(seen))
	}
}

func workflowWorld(t *testing.T) *SimWorld {
	t.Helper()
	mk := func(site, name string, limit int64, kinds ...string) HostSpec {
		return HostSpec{
			Flavour: "aglets",
			Install: func(reg *services.Registry) {
				reg.Register(services.NewApprover(site, name, limit, kinds...).Services()...)
			},
		}
	}
	w, err := NewSimWorld(SimConfig{
		Seed:    51,
		KeyBits: 1024,
		Hosts: map[string]HostSpec{
			"approve-team": mk("approve-team", "team-lead", 500, "purchase"),
			"approve-dept": mk("approve-dept", "dept-head", 5000, "purchase"),
			"approve-cfo":  mk("approve-cfo", "cfo", 50000, "purchase"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runApp(t *testing.T, w *SimWorld, app string, params map[string]mavm.Value) map[string]mavm.Value {
	t.Helper()
	dev, err := w.NewDevice("apps-test")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := w.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", app); err != nil {
		t.Fatal(err)
	}
	id, err := dev.Dispatch(ctx, app, params)
	if err != nil {
		t.Fatal(err)
	}
	w.Run()
	rd, err := dev.Collect(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.OK() {
		t.Fatalf("journey failed: %s", rd.Error)
	}
	out := map[string]mavm.Value{}
	for _, r := range rd.Results {
		out[r.Key] = r.Value
	}
	return out
}

func strList(ss ...string) mavm.Value {
	items := make([]mavm.Value, len(ss))
	for i, s := range ss {
		items[i] = mavm.Str(s)
	}
	return mavm.NewList(items...)
}

func TestWorkflowApprovalChain(t *testing.T) {
	w := workflowWorld(t)
	res := runApp(t, w, AppWorkflow, map[string]mavm.Value{
		"chain":   strList("approve-team", "approve-dept", "approve-cfo"),
		"kind":    mavm.Str("purchase"),
		"subject": mavm.Str("test rig"),
		"amount":  mavm.Int(450),
	})
	if res["outcome"].AsStr() != "approved" {
		t.Fatalf("outcome = %v", res["outcome"])
	}
	approvals := res["approvals"].ListItems()
	if len(approvals) != 3 {
		t.Fatalf("approvals = %v", res["approvals"])
	}
	for _, a := range approvals {
		if a.MapEntries()["decision"].AsStr() != "approved" {
			t.Fatalf("approval = %v", a)
		}
	}
}

func TestWorkflowRejectionShortCircuits(t *testing.T) {
	w := workflowWorld(t)
	res := runApp(t, w, AppWorkflow, map[string]mavm.Value{
		"chain":   strList("approve-team", "approve-dept", "approve-cfo"),
		"kind":    mavm.Str("purchase"),
		"subject": mavm.Str("mainframe"),
		"amount":  mavm.Int(2000), // over the team lead's 500 limit
	})
	if res["outcome"].AsStr() != "rejected" {
		t.Fatalf("outcome = %v", res["outcome"])
	}
	if res["stoppedAt"].AsStr() != "approve-team" {
		t.Fatalf("stoppedAt = %v", res["stoppedAt"])
	}
	// Exactly one review happened: the chain short-circuited.
	if got := len(res["approvals"].ListItems()); got != 1 {
		t.Fatalf("approvals = %d, want 1", got)
	}
}

func mcommerceWorld(t *testing.T) (*SimWorld, map[string]*services.Vendor) {
	t.Helper()
	vendors := map[string]*services.Vendor{
		"shop-1": services.NewVendor("shop-1", map[string]int64{"widget": 180}, map[string]int64{"widget": 5}),
		"shop-2": services.NewVendor("shop-2", map[string]int64{"widget": 120}, map[string]int64{"widget": 1}),
		"shop-3": services.NewVendor("shop-3", map[string]int64{"widget": 90}, map[string]int64{"widget": 0}), // cheapest but sold out
	}
	hosts := map[string]HostSpec{}
	flavours := []string{"aglets", "voyager", "aglets"}
	i := 0
	for site, v := range vendors {
		v := v
		hosts[site] = HostSpec{
			Flavour: flavours[i%len(flavours)],
			Install: func(reg *services.Registry) { reg.Register(v.Services()...) },
		}
		i++
	}
	w, err := NewSimWorld(SimConfig{Seed: 52, KeyBits: 1024, Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	return w, vendors
}

func TestMCommerceBuysCheapestInStock(t *testing.T) {
	w, vendors := mcommerceWorld(t)
	res := runApp(t, w, AppMCommerce, map[string]mavm.Value{
		"vendors": strList("shop-1", "shop-2", "shop-3"),
		"item":    mavm.Str("widget"),
		"budget":  mavm.Int(150),
	})
	if !res["bought"].AsBool() {
		t.Fatalf("not bought: %v", res["reason"])
	}
	// shop-3 is cheapest but out of stock; shop-2 (120) wins over
	// shop-1 (180, also over budget).
	if res["vendor"].AsStr() != "shop-2" || res["price"].AsInt() != 120 {
		t.Fatalf("bought at %v for %v", res["vendor"], res["price"])
	}
	if !strings.HasPrefix(res["order"].AsStr(), "shop-2-order-") {
		t.Fatalf("order = %v", res["order"])
	}
	if vendors["shop-2"].Stock("widget") != 0 {
		t.Fatalf("stock not decremented: %d", vendors["shop-2"].Stock("widget"))
	}
	if got := len(res["quotes"].ListItems()); got != 3 {
		t.Fatalf("quotes = %d", got)
	}
}

// TestCooperatingAgentsViaMailbox exercises the paper's §1 claim that
// agents "cooperate with each other by sharing and exchanging
// information and partial results": a producer agent posts partial
// results to a mailbox host; a separately dispatched consumer agent
// collects and merges them.
func TestCooperatingAgentsViaMailbox(t *testing.T) {
	w, err := NewSimWorld(SimConfig{
		Seed:    53,
		KeyBits: 1024,
		Hosts: map[string]HostSpec{
			"hub": {
				Flavour: "aglets",
				Install: func(reg *services.Registry) {
					reg.Register(services.NewMailbox("hub").Services()...)
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	producerSrc := `
		migrate("hub");
		for part in param("parts") {
			service("mail.post", param("topic"), part);
		}
		migrate(home());
		deliver("posted", len(param("parts")));
	`
	consumerSrc := `
		migrate("hub");
		let r = service("mail.fetch", param("topic"));
		migrate(home());
		let total = 0;
		for m in r["messages"] { total = total + m; }
		deliver("sum", total);
		deliver("count", len(r["messages"]));
	`
	for id, src := range map[string]string{"coop.producer": producerSrc, "coop.consumer": consumerSrc} {
		pkg := wirePkg(id, src)
		if err := w.Gateways[0].AddCodePackage(&pkg); err != nil {
			t.Fatal(err)
		}
	}

	dev, err := w.NewDevice("coop-dev")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := w.NewJourney()
	for _, id := range []string{"coop.producer", "coop.consumer"} {
		if err := dev.Subscribe(ctx, "gw-0", id); err != nil {
			t.Fatal(err)
		}
	}
	prodID, err := dev.Dispatch(ctx, "coop.producer", map[string]mavm.Value{
		"topic": mavm.Str("partials"),
		"parts": mavm.NewList(mavm.Int(10), mavm.Int(20), mavm.Int(12)),
	})
	if err != nil {
		t.Fatal(err)
	}
	consID, err := dev.Dispatch(ctx, "coop.consumer", map[string]mavm.Value{
		"topic": mavm.Str("partials"),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run()

	prod, err := dev.Collect(ctx, prodID)
	if err != nil || !prod.OK() {
		t.Fatalf("producer: %v / %+v", err, prod)
	}
	cons, err := dev.Collect(ctx, consID)
	if err != nil || !cons.OK() {
		t.Fatalf("consumer: %v / %+v", err, cons)
	}
	sum, _ := cons.Get("sum")
	count, _ := cons.Get("count")
	if sum.AsInt() != 42 || count.AsInt() != 3 {
		t.Fatalf("consumer merged sum=%v count=%v", sum, count)
	}
}

// wirePkg builds a code package literal for cooperation tests.
func wirePkg(id, src string) wire.CodePackage {
	return wire.CodePackage{CodeID: id, Name: id, Version: "1", Source: src}
}

func TestMCommerceNoVendorWithinBudget(t *testing.T) {
	w, _ := mcommerceWorld(t)
	res := runApp(t, w, AppMCommerce, map[string]mavm.Value{
		"vendors": strList("shop-1", "shop-2"),
		"item":    mavm.Str("widget"),
		"budget":  mavm.Int(50),
	})
	if res["bought"].AsBool() {
		t.Fatal("bought despite budget")
	}
	if !strings.Contains(res["reason"].AsStr(), "budget") {
		t.Fatalf("reason = %v", res["reason"])
	}
}

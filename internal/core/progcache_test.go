package core

import (
	"testing"

	"pdagent/internal/gateway"
	"pdagent/internal/mascript"
	"pdagent/internal/netsim"
	"pdagent/internal/pisec"
)

// TestCachedCompilationMatchesDirect registers every standard example
// application on a gateway (which compiles and pins each one in the
// program cache) and demands the cached program be byte-identical —
// same code digest — to a direct mascript.Compile of the same source.
// Cached compilation must be indistinguishable from a fresh one for
// every shipped script.
func TestCachedCompilationMatchesDirect(t *testing.T) {
	kp, err := pisec.GenerateKeyPair(1024)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New(gateway.Config{
		Addr:      "gw-cache",
		KeyPair:   kp,
		Transport: netsim.New(1).Transport(netsim.ZoneWired),
		Spawn:     func(func()) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	apps := StandardApps()
	if len(apps) == 0 {
		t.Fatal("no standard apps")
	}
	for _, cp := range apps {
		direct, err := mascript.Compile(cp.Source)
		if err != nil {
			t.Fatalf("%s: direct compile: %v", cp.CodeID, err)
		}
		if err := gw.AddCodePackage(cp); err != nil {
			t.Fatalf("%s: register: %v", cp.CodeID, err)
		}
		cached, hit, err := gw.Programs().CompileString(cp.Source)
		if err != nil || !hit {
			t.Fatalf("%s: cache lookup hit=%v err=%v", cp.CodeID, hit, err)
		}
		if cached.Digest() != direct.Digest() {
			t.Fatalf("%s: cached program differs from direct compilation", cp.CodeID)
		}
	}
	pinned, _ := gw.Programs().Len()
	if pinned != len(apps) {
		t.Fatalf("pinned = %d, want one per app (%d)", pinned, len(apps))
	}
}

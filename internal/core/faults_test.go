package core

import (
	"testing"

	"pdagent/internal/mas"
)

// TestEBankingSurvivesHostCrash drives the full stack — device,
// gateway, journaled bank hosts — through a mid-itinerary crash: the
// bank-a MAS dies while the agent is resident, a replacement resumes
// from the journal, and the journey completes with exactly one result
// and exactly-once bank transactions.
func TestEBankingSurvivesHostCrash(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 41, Journal: true})
	defer w.Close()
	dev, err := w.NewDevice("alice-device")
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := w.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", AppEBanking); err != nil {
		t.Fatal(err)
	}
	const txns = 2
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, txns))
	if err != nil {
		t.Fatal(err)
	}

	// Run the deterministic schedule until the agent is resident at
	// bank-a, then crash the host before it executes a single slice.
	arrived := func() bool {
		return w.Hosts["bank-a"].AgentStates()[agentID] == mas.StateRunning
	}
	for !arrived() {
		if !w.Queue.Step() {
			t.Fatal("agent never reached bank-a")
		}
	}
	if err := w.CrashHost("bank-a"); err != nil {
		t.Fatal(err)
	}
	w.Run() // queued work against the dead host is abandoned

	if _, err := dev.Collect(ctx, agentID); err == nil {
		t.Fatal("result available while the agent is marooned on a dead host")
	}

	resumed, err := w.RestartHost(ctx, "bank-a")
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d agents, want 1", resumed)
	}
	w.Run()

	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		t.Fatalf("Collect after recovery: %v", err)
	}
	if !rd.OK() {
		t.Fatalf("journey failed after recovery: %s", rd.Error)
	}
	receipts, _ := rd.Get("receipts")
	if got := len(receipts.ListItems()); got != 2*txns {
		t.Fatalf("receipts = %d, want %d", got, 2*txns)
	}
	// Exactly-once transactions: alice loses 10 per txn per bank, no
	// more (a replayed agent would double-spend), no less.
	for _, b := range []string{"bank-a", "bank-b"} {
		bal, _ := w.Banks[b].Balance("alice")
		if want := int64(10_000 - 10*txns); bal != want {
			t.Errorf("%s alice = %d, want %d", b, bal, want)
		}
	}
}

// TestRestartWithoutCrashIsHarmless: restarting a healthy journaled
// host with no resident agents resumes nothing and leaves the world
// functional.
func TestRestartWithoutCrashIsHarmless(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 43, Journal: true})
	defer w.Close()
	ctx, _ := w.NewJourney()
	if err := w.CrashHost("bank-a"); err != nil {
		t.Fatal(err)
	}
	n, err := w.RestartHost(ctx, "bank-a")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("resumed %d agents from an empty journal", n)
	}
	dev, err := w.NewDevice("bob-device")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Subscribe(ctx, "gw-0", AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := w.RunUntilResult(ctx, dev, agentID)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.OK() {
		t.Fatalf("journey failed on restarted host: %s", rd.Error)
	}
}

// TestCrashUnknownHost covers the error paths of the fault-injection
// helpers.
func TestCrashUnknownHost(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 47})
	defer w.Close()
	if err := w.CrashHost("ghost"); err == nil {
		t.Fatal("crashed a host that does not exist")
	}
	ctx, _ := w.NewJourney()
	if _, err := w.RestartHost(ctx, "ghost"); err == nil {
		t.Fatal("restarted a host that does not exist")
	}
	// A world without journals can still crash/restart hosts; Resume is
	// skipped.
	if err := w.CrashHost("bank-a"); err != nil {
		t.Fatal(err)
	}
	if n, err := w.RestartHost(ctx, "bank-a"); err != nil || n != 0 {
		t.Fatalf("journal-less restart: n=%d err=%v", n, err)
	}
}

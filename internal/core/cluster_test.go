package core

import (
	"context"
	"fmt"
	"testing"

	"pdagent/internal/cluster"
	"pdagent/internal/device"
	"pdagent/internal/mas"
	"pdagent/internal/transport"
)

// clusterWorld builds a 3-member clustered world with small keys.
func clusterWorld(t *testing.T, cfg SimConfig) *SimWorld {
	t.Helper()
	if len(cfg.GatewayAddrs) == 0 {
		cfg.GatewayAddrs = []string{"gw-0", "gw-1", "gw-2"}
	}
	cfg.Cluster = true
	return testWorld(t, cfg)
}

// edgeAndHome picks a member pair for owner such that the consistent-
// hash home of (AppEBanking, owner) differs from the returned edge.
func edgeAndHome(t *testing.T, w *SimWorld, owner string) (edge, home string) {
	t.Helper()
	home = w.Nodes[0].Home(cluster.SubscriptionKey(AppEBanking, owner))
	if home == "" {
		t.Fatal("no home member for key")
	}
	for _, gw := range w.Gateways {
		if gw.Addr() != home {
			return gw.Addr(), home
		}
	}
	t.Fatal("no edge member distinct from home")
	return "", ""
}

func deviceAt(t *testing.T, w *SimWorld, owner string) *device.Platform {
	t.Helper()
	dev, err := w.NewDevice(owner)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestClusterDispatchAnyMemberCompletes is the first acceptance
// criterion: a dispatch uploaded through ANY member is homed by the
// ring, executed, and its result document reaches the member the
// device talks to (pushed by the home member's relay, not pulled).
func TestClusterDispatchAnyMemberCompletes(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 7})
	defer w.Close()
	ctx, _ := w.NewJourney()
	owner := "alice"
	edge, home := edgeAndHome(t, w, owner)

	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, edge, AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	// The edge tracked the remote placement.
	edgeGW := w.Gateways[w.gatewayIndex(edge)]
	if st, ok := edgeGW.Registry().Agent(agentID); !ok || st.HomeGW != home {
		t.Fatalf("edge tracking = %+v, %v; want home %s", st, ok, home)
	}
	// The home member owns the agent on its embedded MAS.
	homeGW := w.Gateways[w.gatewayIndex(home)]
	if _, ok := homeGW.MAS().AgentStates()[agentID]; !ok {
		t.Fatalf("agent %s not resident on home member %s", agentID, home)
	}

	w.Run()

	// Result reached the edge without an on-demand fetch: the edge's
	// own registry entry is Done (relay landed during the journey).
	if st, ok := edgeGW.Registry().Agent(agentID); !ok || !st.Done {
		t.Fatalf("edge never received the relayed result: %+v", st)
	}
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.OK() {
		t.Fatalf("journey failed: %s", rd.Error)
	}
	// Exactly one execution: one txn of 10 per bank.
	for _, b := range []string{"bank-a", "bank-b"} {
		bal, _ := w.Banks[b].Balance("alice")
		if bal != 10_000-10 {
			t.Errorf("%s alice = %d, want %d", b, bal, 10_000-10)
		}
	}
}

// TestClusterStatusChaseTwoHops is the satellite forwarding-pointer
// test: the device asks its edge member for status while the agent sits
// two hops away (home member -> bank-a -> bank-b); the edge resolves
// through the location directory plus live moved-to pointers.
func TestClusterStatusChaseTwoHops(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 11})
	defer w.Close()
	ctx, _ := w.NewJourney()
	owner := "alice"
	edge, _ := edgeAndHome(t, w, owner)
	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, edge, AppEBanking); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Advance the deterministic schedule until the agent reached
	// bank-b (it has already traversed home -> bank-a -> bank-b).
	for w.Hosts["bank-b"].AgentStates()[agentID] != mas.StateRunning {
		if !w.Queue.Step() {
			t.Fatal("agent never reached bank-b")
		}
	}
	state, body, err := dev.AgentStatus(ctx, agentID)
	if err != nil {
		t.Fatal(err)
	}
	if state != "travelling" {
		t.Fatalf("state = %q, want travelling (body %s)", state, body)
	}
	// After a gossip round the edge's directory points at bank-b
	// directly (the host relayed its arrival to the home member, whose
	// heartbeat piggybacked it to the edge).
	w.TickCluster(ctx)
	w.TickCluster(ctx)
	edgeNode := w.Nodes[w.gatewayIndex(edge)]
	if loc, ok := edgeNode.Locations().Get(agentID); !ok || loc.Addr != "bank-b" {
		t.Fatalf("edge location = %+v, %v; want bank-b", loc, ok)
	}
	w.Run()
	if rd, err := dev.Collect(ctx, agentID); err != nil || !rd.OK() {
		t.Fatalf("collect after chase: %v", err)
	}
}

// TestClusterDispatchDuringMemberKill is the satellite reroute test: a
// dispatch whose ring home is dead still completes — the edge reroutes
// along the ring when the forward fails, without waiting for the
// failure detector.
func TestClusterDispatchDuringMemberKill(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 13})
	defer w.Close()
	ctx, _ := w.NewJourney()
	owner := "alice"
	edge, home := edgeAndHome(t, w, owner)
	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, edge, AppEBanking); err != nil {
		t.Fatal(err)
	}
	if err := w.CrashGateway(home); err != nil {
		t.Fatal(err)
	}
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1))
	if err != nil {
		t.Fatalf("dispatch with dead home member: %v", err)
	}
	w.Run()
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.OK() {
		t.Fatalf("rerouted journey failed: %s", rd.Error)
	}
	// The failure detector eventually evicts the dead member from
	// placement for future dispatches.
	for i := 0; i < 6; i++ {
		w.TickCluster(ctx)
	}
	for i := 0; i < 64; i++ {
		key := cluster.SubscriptionKey(AppEBanking, fmt.Sprintf("dev-%d", i))
		for _, node := range w.Nodes {
			if node == nil || w.crashedGW[node.Self()] {
				continue
			}
			if h := node.Home(key); h == home {
				t.Fatalf("dead member %s still receives placements", home)
			}
		}
	}
}

// TestClusterMemberKillMidItineraryExactlyOnce is the hard acceptance
// criterion: the agent's home member dies while the agent is mid-
// itinerary; the journaled fleet recovers and the journey completes
// exactly once (no double-spend), with the device collecting through
// its original edge member.
func TestClusterMemberKillMidItineraryExactlyOnce(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 17, Journal: true})
	defer w.Close()
	ctx, _ := w.NewJourney()
	owner := "alice"
	edge, home := edgeAndHome(t, w, owner)
	dev := deviceAt(t, w, owner)
	if err := dev.Subscribe(ctx, edge, AppEBanking); err != nil {
		t.Fatal(err)
	}
	const txns = 2
	agentID, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, txns))
	if err != nil {
		t.Fatal(err)
	}
	// Let the agent reach bank-a, then kill its home member.
	for w.Hosts["bank-a"].AgentStates()[agentID] != mas.StateRunning {
		if !w.Queue.Step() {
			t.Fatal("agent never reached bank-a")
		}
	}
	if err := w.CrashGateway(home); err != nil {
		t.Fatal(err)
	}
	w.Run()
	// The journey cannot deliver home: the agent parks (journaled) at
	// the host that failed to reach the dead member.
	if _, err := dev.Collect(ctx, agentID); err == nil {
		t.Fatal("result available while the home member is dead")
	}

	if _, err := w.RestartGateway(ctx, home); err != nil {
		t.Fatal(err)
	}
	if n := w.RetryParked(ctx); n == 0 {
		t.Fatal("no parked transfers to retry after restart")
	}
	w.Run()

	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		t.Fatalf("collect after member recovery: %v", err)
	}
	if !rd.OK() {
		t.Fatalf("journey failed after recovery: %s", rd.Error)
	}
	// Exactly-once: 10 per txn per bank, no double-spend from retried
	// handoffs.
	for _, b := range []string{"bank-a", "bank-b"} {
		bal, _ := w.Banks[b].Balance("alice")
		if want := int64(10_000 - 10*txns); bal != want {
			t.Errorf("%s alice = %d, want %d", b, bal, want)
		}
	}
}

// TestClusterDrainAndLiveDirectory: a draining member refuses new
// dispatches, leaves the live view immediately, and the §3.5
// directory (central provider + gateway endpoint) reflects it.
func TestClusterDrainAndLiveDirectory(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 19})
	defer w.Close()
	ctx, _ := w.NewJourney()
	dev := deviceAt(t, w, "alice")
	if err := dev.RefreshGateways(ctx, CentralAddr); err != nil {
		t.Fatal(err)
	}
	if got := len(dev.Gateways()); got != 3 {
		t.Fatalf("live directory served %d members, want 3", got)
	}

	draining := w.Gateways[2]
	drainCtx, cancel := context.WithCancel(ctx)
	cancel() // no residents: Drain must return immediately even cancelled
	if left := draining.Drain(drainCtx); left != 0 {
		t.Fatalf("drain left %d agents on an idle gateway", left)
	}
	if !draining.Draining() {
		t.Fatal("gateway not marked draining")
	}

	// New dispatches at the drained member are refused retryably.
	if err := dev.Subscribe(ctx, draining.Addr(), AppEBanking); err == nil {
		if _, err := dev.Dispatch(ctx, AppEBanking, ebankingParams([]string{"bank-a"}, 1)); err == nil {
			t.Fatal("drained gateway accepted a dispatch")
		}
	}

	// Peers dropped it without any failure-detector delay...
	for _, node := range w.Nodes[:2] {
		for _, addr := range node.Membership().AliveAddrs() {
			if addr == draining.Addr() {
				t.Fatalf("peer %s still lists the drained member", node.Self())
			}
		}
	}
	// ...and the central directory's live view shrank.
	if err := dev.RefreshGateways(ctx, CentralAddr); err != nil {
		t.Fatal(err)
	}
	if got := len(dev.Gateways()); got != 2 {
		t.Fatalf("live directory after drain = %d members, want 2", got)
	}
	// Placement never homes new keys on the drained member.
	for i := 0; i < 64; i++ {
		key := cluster.SubscriptionKey(AppEBanking, fmt.Sprintf("dev-%d", i))
		if h := w.Nodes[0].Home(key); h == draining.Addr() {
			t.Fatal("placement still uses the drained member")
		}
	}
}

// TestClusterDispatchEndpointRequiresToken: an outsider who forges the
// hop-chain header on the public listener must NOT reach the
// unauthenticated admission path — the shared cluster secret is the
// only accepted proof of membership.
func TestClusterDispatchEndpointRequiresToken(t *testing.T) {
	w := clusterWorld(t, SimConfig{Seed: 29})
	defer w.Close()
	ctx, _ := w.NewJourney()
	rt := w.Transport("wired")
	for _, path := range []string{"/cluster/dispatch", "/cluster/result"} {
		req := &transport.Request{Path: path, Body: []byte("<whatever/>")}
		req.SetHeader("x-cluster-fwd", "gw-1") // forged chain, no token
		resp, err := rt.RoundTrip(ctx, "gw-0", req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != transport.StatusForbidden {
			t.Fatalf("%s without cluster token: status %d, want %d", path, resp.Status, transport.StatusForbidden)
		}
	}
}

// TestClusterShardConfig: the satellite Shards knob reaches the
// registry and rounds up to a power of two.
func TestClusterShardConfig(t *testing.T) {
	w := testWorld(t, SimConfig{Seed: 23})
	defer w.Close()
	if got := w.Gateways[0].Registry().Shards(); got != 32 {
		t.Fatalf("default shards = %d, want 32", got)
	}
}

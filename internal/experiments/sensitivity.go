package experiments

import (
	"fmt"
	"time"

	"pdagent/internal/baseline"
	"pdagent/internal/core"
	"pdagent/internal/netsim"
)

// SensitivityRow is one point of the A5 link-sensitivity sweep: the
// three approaches' connection times at a given wireless latency, for
// small and large workloads.
type SensitivityRow struct {
	WirelessLatency time.Duration
	PDAgentN1       time.Duration
	ClientServerN1  time.Duration
	PDAgentN10      time.Duration
	ClientServerN10 time.Duration
}

// sensitivityLatencies sweeps from LAN-class to satellite-class links.
var sensitivityLatencies = []time.Duration{
	20 * time.Millisecond,
	50 * time.Millisecond,
	150 * time.Millisecond,
	500 * time.Millisecond,
	1500 * time.Millisecond,
}

// measureWithLink runs one approach under a custom wireless link.
func measureWithLink(seed int64, n int, wireless netsim.Link, pdagent bool) (time.Duration, error) {
	_, wired := experimentLinks()
	world, err := core.NewSimWorld(core.SimConfig{
		Seed:     seed,
		Wireless: &wireless,
		Wired:    &wired,
		KeyBits:  1024,
	})
	if err != nil {
		return 0, err
	}
	env := &Env{World: world, BankHosts: []string{"bank-a", "bank-b"}}
	for _, bank := range env.BankHosts {
		web := "web-" + bank
		world.Net.AddHost(web, netsim.ZoneWired, baseline.NewServer(world.Banks[bank]).Handler())
		env.WebBanks = append(env.WebBanks, web)
	}
	ctx, clock := world.NewJourney()

	if !pdagent {
		client := &baseline.Client{Transport: world.Transport(netsim.ZoneWireless)}
		t0 := clock.Now()
		if _, err := client.RunClientServer(ctx, env.baselineTxns(n)); err != nil {
			return 0, err
		}
		return clock.Now() - t0, nil
	}

	dev, err := world.NewDevice("sweep-device")
	if err != nil {
		return 0, err
	}
	env.Device = dev
	if err := dev.Subscribe(ctx, "gw-0", core.AppEBanking); err != nil {
		return 0, err
	}
	t0 := clock.Now()
	agentID, err := dev.Dispatch(ctx, core.AppEBanking, ebankingParams(env.BankHosts, n))
	if err != nil {
		return 0, err
	}
	upload := clock.Now() - t0
	world.Run()
	t1 := clock.Now()
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		return 0, err
	}
	if !rd.OK() {
		return 0, fmt.Errorf("experiments: sweep journey failed: %s", rd.Error)
	}
	return upload + (clock.Now() - t1), nil
}

// LinkSensitivity regenerates the A5 sweep: how the PDAgent advantage
// depends on the wireless link quality. The paper argues the approach
// exists because handheld links are slow; the sweep quantifies the
// crossover — on fast links the two extra messages PDAgent pays per
// session make the baseline competitive at n=1, while on slow links
// PDAgent dominates everywhere.
func LinkSensitivity(seed int64) ([]SensitivityRow, error) {
	var rows []SensitivityRow
	for _, lat := range sensitivityLatencies {
		link := netsim.Link{
			Latency:   lat,
			Jitter:    lat / 2,
			Bandwidth: 18_000,
		}
		row := SensitivityRow{WirelessLatency: lat}
		var err error
		if row.PDAgentN1, err = measureWithLink(seed, 1, link, true); err != nil {
			return nil, err
		}
		if row.ClientServerN1, err = measureWithLink(seed, 1, link, false); err != nil {
			return nil, err
		}
		if row.PDAgentN10, err = measureWithLink(seed, 10, link, true); err != nil {
			return nil, err
		}
		if row.ClientServerN10, err = measureWithLink(seed, 10, link, false); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SensitivityTable renders A5.
func SensitivityTable(rows []SensitivityRow) *Table {
	t := &Table{
		Title:   "A5 — link sensitivity: connection time vs. wireless latency",
		Columns: []string{"latency", "pda n=1", "cs n=1", "pda n=10", "cs n=10", "winner n=1"},
	}
	for _, r := range rows {
		winner := "pdagent"
		if r.ClientServerN1 < r.PDAgentN1 {
			winner = "client-server"
		}
		t.AddRow(
			fmt.Sprintf("%v", r.WirelessLatency),
			secs(r.PDAgentN1), secs(r.ClientServerN1),
			secs(r.PDAgentN10), secs(r.ClientServerN10),
			winner,
		)
	}
	return t
}

package experiments

import (
	"fmt"
	"time"
)

// DefaultMaxN matches the paper's x-axis: 1..10 transactions.
const DefaultMaxN = 10

// DefaultTrialSeeds reproduce the paper's four Figure 13 trials.
var DefaultTrialSeeds = []int64{101, 202, 303, 404}

// Fig12Row is one x-axis point of Figure 12.
type Fig12Row struct {
	N            int
	PDAgent      time.Duration
	ClientServer time.Duration
	WebBased     time.Duration
}

// Fig12 regenerates Figure 12: Internet connection time vs. number of
// transactions for the three approaches.
func Fig12(seed int64, maxN int) ([]Fig12Row, error) {
	rows := make([]Fig12Row, 0, maxN)
	for n := 1; n <= maxN; n++ {
		pda, err := MeasurePDAgent(seed, n)
		if err != nil {
			return nil, fmt.Errorf("fig12 n=%d pdagent: %w", n, err)
		}
		cs, err := MeasureClientServer(seed, n)
		if err != nil {
			return nil, fmt.Errorf("fig12 n=%d client-server: %w", n, err)
		}
		web, err := MeasureWebBased(seed, n)
		if err != nil {
			return nil, fmt.Errorf("fig12 n=%d web: %w", n, err)
		}
		rows = append(rows, Fig12Row{N: n, PDAgent: pda, ClientServer: cs, WebBased: web})
	}
	return rows, nil
}

// Fig12Table renders Figure 12 as a table.
func Fig12Table(rows []Fig12Row) *Table {
	t := &Table{
		Title:   "Figure 12 — Internet connection time (virtual seconds)",
		Columns: []string{"transactions", "pdagent", "client-server", "web-based"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.N), secs(r.PDAgent), secs(r.ClientServer), secs(r.WebBased))
	}
	return t
}

// Fig13Row is one x-axis point of a Figure 13 panel: the completion
// time per trial.
type Fig13Row struct {
	N      int
	Trials []time.Duration
}

// measureFn is one approach's completion-time measurement.
type measureFn func(seed int64, n int) (time.Duration, error)

func fig13(measure measureFn, seeds []int64, maxN int) ([]Fig13Row, error) {
	rows := make([]Fig13Row, 0, maxN)
	for n := 1; n <= maxN; n++ {
		row := Fig13Row{N: n}
		for _, seed := range seeds {
			d, err := measure(seed, n)
			if err != nil {
				return nil, fmt.Errorf("fig13 n=%d seed=%d: %w", n, seed, err)
			}
			row.Trials = append(row.Trials, d)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig13ClientServer regenerates Figure 13 (left panel): client-server
// transaction completion times over the trial seeds. Completion time
// for the client-server platform is offline submission (free) plus the
// online request/response session — the paper's formula.
func Fig13ClientServer(seeds []int64, maxN int) ([]Fig13Row, error) {
	return fig13(MeasureClientServer, seeds, maxN)
}

// Fig13PDAgent regenerates Figure 13 (right panel): PDAgent completion
// times. Per the paper, completion time is "time for sending 'Packed
// information' (online) + time for downloading result (online)".
func Fig13PDAgent(seeds []int64, maxN int) ([]Fig13Row, error) {
	return fig13(MeasurePDAgent, seeds, maxN)
}

// Fig13Table renders one Figure 13 panel.
func Fig13Table(title string, rows []Fig13Row) *Table {
	cols := []string{"transactions"}
	if len(rows) > 0 {
		for i := range rows[0].Trials {
			cols = append(cols, fmt.Sprintf("trial-%d", i+1))
		}
		cols = append(cols, "spread")
	}
	t := &Table{Title: title, Columns: cols}
	for _, r := range rows {
		cells := []string{fmt.Sprint(r.N)}
		min, max := r.Trials[0], r.Trials[0]
		for _, d := range r.Trials {
			cells = append(cells, secs(d))
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		cells = append(cells, secs(max-min))
		t.AddRow(cells...)
	}
	return t
}

// Spread returns max-min across a row's trials (the variance measure
// the paper eyeballs in Figure 13).
func (r Fig13Row) Spread() time.Duration {
	if len(r.Trials) == 0 {
		return 0
	}
	min, max := r.Trials[0], r.Trials[0]
	for _, d := range r.Trials {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return max - min
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

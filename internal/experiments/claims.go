package experiments

import (
	"fmt"

	"pdagent/internal/compress"
	"pdagent/internal/core"
	"pdagent/internal/mascript"
	"pdagent/internal/mavm"
)

// CodeSizeRow is one application's size under the paper's §2 claim
// ("the MA code is of a size ranging from 1KB to 8KB, and can be
// compressed before download").
type CodeSizeRow struct {
	App           string
	RawBytes      int
	LZSSBytes     int
	FlateBytes    int
	CompiledBytes int
}

// CodeSizes measures every standard application's MAScript source raw,
// under both compressors, and compiled to mavm bytecode.
func CodeSizes() ([]CodeSizeRow, error) {
	var rows []CodeSizeRow
	for _, cp := range core.StandardApps() {
		src := []byte(cp.Source)
		lz, err := compress.Encode(compress.LZSS, src)
		if err != nil {
			return nil, err
		}
		fl, err := compress.Encode(compress.Flate, src)
		if err != nil {
			return nil, err
		}
		prog, err := mascript.Compile(cp.Source)
		if err != nil {
			return nil, fmt.Errorf("experiments: compiling %s: %w", cp.CodeID, err)
		}
		bin, err := mavm.MarshalProgram(prog)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CodeSizeRow{
			App:           cp.CodeID,
			RawBytes:      len(src),
			LZSSBytes:     len(lz),
			FlateBytes:    len(fl),
			CompiledBytes: len(bin),
		})
	}
	return rows, nil
}

// CodeSizeTable renders the E5 table.
func CodeSizeTable(rows []CodeSizeRow) *Table {
	t := &Table{
		Title:   "Claim E5 — MA code size (paper: 1 KB–8 KB, compressed before download)",
		Columns: []string{"application", "raw", "lzss", "flate", "compiled"},
	}
	for _, r := range rows {
		t.AddRow(r.App, fmt.Sprint(r.RawBytes), fmt.Sprint(r.LZSSBytes),
			fmt.Sprint(r.FlateBytes), fmt.Sprint(r.CompiledBytes))
	}
	return t
}

// FootprintReport quantifies the on-device database footprint behind
// the paper's "120KB storage space" claim (which covered the J2ME
// platform JAR + kXML; our analogue is the RMS database holding all
// subscriptions, compressed, plus platform bookkeeping records — the
// Go platform code itself lives in the binary, not in the database).
type FootprintReport struct {
	// Records is the number of RMS records.
	Records int
	// TotalBytes is the stored (compressed) size of the database.
	TotalBytes int
	// PerAppBytes is the subscription record size by application.
	PerAppBytes map[string]int
}

// Footprint subscribes a device to every standard application and
// measures its database.
func Footprint(seed int64) (*FootprintReport, error) {
	env, err := NewEnv(seed)
	if err != nil {
		return nil, err
	}
	ctx, _ := env.World.NewJourney()
	report := &FootprintReport{PerAppBytes: map[string]int{}}
	prev := 0
	for _, cp := range core.StandardApps() {
		if err := env.Device.Subscribe(ctx, "gw-0", cp.CodeID); err != nil {
			return nil, err
		}
		size, err := env.Device.Footprint()
		if err != nil {
			return nil, err
		}
		report.PerAppBytes[cp.CodeID] = size - prev
		prev = size
	}
	n, err := env.Device.Footprint()
	if err != nil {
		return nil, err
	}
	report.TotalBytes = n
	// Count records: subscriptions + (no pending yet) + no list record
	// unless SetGateways persisted one.
	report.Records = len(core.StandardApps())
	if len(env.Device.Gateways()) > 0 {
		report.Records++
	}
	return report, nil
}

// FootprintTable renders the E4 table.
func FootprintTable(r *FootprintReport) *Table {
	t := &Table{
		Title:   "Claim E4 — on-device database footprint (paper: platform + kXML = 120 KB)",
		Columns: []string{"item", "bytes"},
	}
	for _, cp := range core.StandardApps() {
		t.AddRow("subscription "+cp.CodeID, fmt.Sprint(r.PerAppBytes[cp.CodeID]))
	}
	t.AddRow("total database", fmt.Sprint(r.TotalBytes))
	return t
}

package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFig12Shape verifies the paper's Figure 12 claims: baselines grow
// roughly linearly with the number of transactions while PDAgent's
// connection time "is not affected by any increase in the number of
// transactions", staying lowest throughout.
func TestFig12Shape(t *testing.T) {
	rows, err := Fig12(1, 10)
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]

	// PDAgent wins at every point.
	for _, r := range rows {
		if r.PDAgent >= r.ClientServer {
			t.Errorf("n=%d: pdagent %v >= client-server %v", r.N, r.PDAgent, r.ClientServer)
		}
		if r.PDAgent >= r.WebBased {
			t.Errorf("n=%d: pdagent %v >= web %v", r.N, r.PDAgent, r.WebBased)
		}
	}
	// Baselines grow substantially; PDAgent stays within a narrow band.
	if last.ClientServer < 4*first.ClientServer {
		t.Errorf("client-server growth too flat: %v -> %v", first.ClientServer, last.ClientServer)
	}
	if last.WebBased < 4*first.WebBased {
		t.Errorf("web growth too flat: %v -> %v", first.WebBased, last.WebBased)
	}
	if last.PDAgent > 2*first.PDAgent {
		t.Errorf("pdagent not flat: %v -> %v", first.PDAgent, last.PDAgent)
	}
	// By n=10 the gap is at least 5x (paper: ~15x on their testbed).
	if last.ClientServer < 5*last.PDAgent {
		t.Errorf("n=10 gap too small: cs %v vs pda %v", last.ClientServer, last.PDAgent)
	}
	// Web-based costs more than client-server (page overhead).
	if last.WebBased <= last.ClientServer {
		t.Errorf("web %v <= client-server %v at n=10", last.WebBased, last.ClientServer)
	}
}

// TestFig13Shape verifies the variance claims: client-server completion
// times spread out as n grows; PDAgent's stay in a stable narrow band.
func TestFig13Shape(t *testing.T) {
	cs, err := Fig13ClientServer(DefaultTrialSeeds, 10)
	if err != nil {
		t.Fatalf("Fig13ClientServer: %v", err)
	}
	pda, err := Fig13PDAgent(DefaultTrialSeeds, 10)
	if err != nil {
		t.Fatalf("Fig13PDAgent: %v", err)
	}
	if len(cs) != 10 || len(pda) != 10 {
		t.Fatalf("rows = %d/%d", len(cs), len(pda))
	}
	// Spread at n=10 must exceed spread at n=1 for client-server (sum
	// of per-request jitter) ...
	if cs[9].Spread() <= cs[0].Spread() {
		t.Errorf("client-server spread did not widen: %v -> %v", cs[0].Spread(), cs[9].Spread())
	}
	// ... while PDAgent's spread stays bounded by a constant (its two
	// messages draw jitter twice regardless of n).
	maxPDASpread := time.Duration(0)
	for _, r := range pda {
		if s := r.Spread(); s > maxPDASpread {
			maxPDASpread = s
		}
	}
	if maxPDASpread >= cs[9].Spread() {
		t.Errorf("pdagent max spread %v >= client-server n=10 spread %v", maxPDASpread, cs[9].Spread())
	}
	// Every PDAgent trial completes quickly (paper: under ~8 s).
	for _, r := range pda {
		for _, d := range r.Trials {
			if d > 8*time.Second {
				t.Errorf("n=%d: pdagent completion %v exceeds 8s band", r.N, d)
			}
		}
	}
}

func TestCodeSizesClaim(t *testing.T) {
	rows, err := CodeSizes()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper: MA code runs 1 KB–8 KB. Our echo app is tiny; the real
		// apps must sit inside the band.
		if r.App != "app.echo" && (r.RawBytes < 256 || r.RawBytes > 8192) {
			t.Errorf("%s: raw size %d outside sane band", r.App, r.RawBytes)
		}
		if r.LZSSBytes >= r.RawBytes {
			t.Errorf("%s: LZSS did not shrink (%d -> %d)", r.App, r.RawBytes, r.LZSSBytes)
		}
		if r.CompiledBytes == 0 {
			t.Errorf("%s: compiled size 0", r.App)
		}
	}
}

func TestFootprintClaim(t *testing.T) {
	r, err := Footprint(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalBytes == 0 || r.Records == 0 {
		t.Fatalf("report = %+v", r)
	}
	// The on-device database with all apps subscribed stays small —
	// far under the paper's 120 KB platform figure (see EXPERIMENTS.md
	// for why the numbers differ in kind).
	if r.TotalBytes > 120*1024 {
		t.Errorf("database footprint %d exceeds 120KB", r.TotalBytes)
	}
	sum := 0
	for _, b := range r.PerAppBytes {
		sum += b
	}
	if sum > r.TotalBytes {
		t.Errorf("per-app sum %d > total %d", sum, r.TotalBytes)
	}
}

func TestGatewaySelectionExperiment(t *testing.T) {
	r, err := GatewaySelection(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Chosen != "gw-0" {
		t.Errorf("chose %q, want the nearest gw-0", r.Chosen)
	}
	if len(r.Probes) != 5 {
		t.Errorf("probes = %d", len(r.Probes))
	}
	// Probe cost covers all five pings.
	if r.ProbeCost <= r.ChosenRTT {
		t.Errorf("probe cost %v <= single RTT %v", r.ProbeCost, r.ChosenRTT)
	}

	// E6 now exercises the real §3.5 directory path: the probed list is
	// the live membership view downloaded from the central server.
	if !r.Refreshed {
		t.Error("selection probed the static preload, not the live directory view")
	}

	stale, err := GatewaySelectionWithStaleList(6)
	if err != nil {
		t.Fatal(err)
	}
	if !stale.Refreshed {
		t.Error("stale list did not trigger refresh")
	}
	if stale.ChosenRTT > 2*time.Second {
		t.Errorf("post-refresh RTT = %v", stale.ChosenRTT)
	}
}

// TestClusterExperiments smoke-checks the G3 series: every journey
// completes, forwarding appears once the tier has >1 member, and the
// failover run is exactly-once with the result collected at the edge.
func TestClusterExperiments(t *testing.T) {
	rows, err := ClusterScaling(3, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Forwarded != 0 {
		t.Errorf("single-member tier forwarded %d dispatches", rows[0].Forwarded)
	}
	for _, r := range rows {
		if r.MeanCompletion <= 0 {
			t.Errorf("members=%d: non-positive completion", r.Members)
		}
	}

	fo, err := ClusterFailover(3, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !fo.ExactlyOnce {
		t.Error("failover run was not exactly-once")
	}
	if !fo.EdgeCollected {
		t.Error("result not collected through the edge member")
	}
	if fo.WithKill <= fo.Baseline {
		t.Errorf("kill run (%v) not slower than baseline (%v)", fo.WithKill, fo.Baseline)
	}
}

func TestAblations(t *testing.T) {
	comp, err := AblationCompression(1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != 3 {
		t.Fatalf("compression rows = %d", len(comp))
	}
	byName := map[string]CompressionRow{}
	for _, r := range comp {
		byName[r.Codec] = r
	}
	if byName["lzss"].WireBytes >= byName["none"].WireBytes {
		t.Errorf("lzss %d >= none %d", byName["lzss"].WireBytes, byName["none"].WireBytes)
	}
	if byName["lzss"].UploadTime >= byName["none"].UploadTime {
		t.Errorf("lzss upload not faster")
	}

	sec, err := AblationSecurity(1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(sec) != 2 || sec[1].WireBytes <= sec[0].WireBytes {
		t.Fatalf("security rows = %+v", sec)
	}

	flav, err := AblationFlavour(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(flav) != 2 {
		t.Fatalf("flavour rows = %d", len(flav))
	}
	// XML envelope is bulkier than the binary one.
	var agl, voy FlavourRow
	for _, r := range flav {
		if r.Flavour == "aglets" {
			agl = r
		} else {
			voy = r
		}
	}
	if voy.EnvelopeBytes <= agl.EnvelopeBytes {
		t.Errorf("voyager %d <= aglets %d bytes", voy.EnvelopeBytes, agl.EnvelopeBytes)
	}
	if agl.JourneyTime <= 0 || voy.JourneyTime <= 0 {
		t.Error("journey times missing")
	}

	pol, err := AblationSelectionPolicy(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol) != 2 {
		t.Fatalf("policy rows = %d", len(pol))
	}
}

func TestTablesRender(t *testing.T) {
	rows, err := Fig12(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tbl := Fig12Table(rows)
	ascii := tbl.ASCII()
	if !strings.Contains(ascii, "Figure 12") || !strings.Contains(ascii, "client-server") {
		t.Fatalf("ascii = %s", ascii)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "transactions,pdagent") {
		t.Fatalf("csv = %s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 4 { // header + 3 rows
		t.Fatalf("csv lines = %d", got)
	}

	t2 := &Table{Title: "q", Columns: []string{"a", "b"}}
	t2.AddRow(`x,"y`) // needs quoting, padding
	if !strings.Contains(t2.CSV(), `"x,""y"`) {
		t.Fatalf("csv quoting: %s", t2.CSV())
	}
}

func TestDeterministicSeries(t *testing.T) {
	// Network randomness (jitter, loss) is fully seeded, so replays
	// agree to well under a percent. Exact byte-equality is impossible:
	// crypto randomness (subscription secrets, session keys) shifts the
	// compressed PI size by a few bytes, i.e. a few hundred µs of
	// simulated bandwidth time.
	const tolerance = 10 * time.Millisecond
	near := func(x, y time.Duration) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d <= tolerance
	}
	a, err := Fig12(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig12(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !near(a[i].PDAgent, b[i].PDAgent) ||
			!near(a[i].ClientServer, b[i].ClientServer) ||
			!near(a[i].WebBased, b[i].WebBased) {
			t.Fatalf("row %d differs beyond tolerance: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestE7CrashRecovery(t *testing.T) {
	rows, err := E7(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Runs are deterministic up to the random dispatch nonce, whose
	// compressibility shifts the wireless upload delay by a few bytes'
	// worth of bandwidth — allow a small tolerance around the exact
	// claim (recovery costs the restart outage, nothing more).
	const tol = 100 * time.Millisecond
	for _, r := range rows {
		if r.Healthy <= 0 || r.Crash <= 0 {
			t.Fatalf("n=%d: non-positive completion times %+v", r.N, r)
		}
		overhead := r.Crash - r.Healthy
		if overhead < E7Outage-tol || overhead > E7Outage+tol {
			t.Fatalf("n=%d: recovery overhead %v, want ~%v (crash %v, healthy %v)",
				r.N, overhead, E7Outage, r.Crash, r.Healthy)
		}
	}
	// Replay under the same seed stays within the nonce tolerance.
	again, err := MeasureCompletion(7, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := again - rows[1].Crash; d < -tol || d > tol {
		t.Fatalf("crash measurement not reproducible: %v vs %v", again, rows[1].Crash)
	}
	tbl := E7Table(rows)
	if len(tbl.Rows) != 3 || len(tbl.Columns) != 4 {
		t.Fatalf("table shape: %+v", tbl)
	}
}

func TestE8DisconnectedDelivery(t *testing.T) {
	outages := []time.Duration{time.Second, 4 * time.Second}
	rows, err := E8(7, outages)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The disconnected device pays exactly its outage on top of the
	// always-on total (the result waited in the mailbox), up to the
	// nonce-compressibility tolerance of the E7 test.
	const tol = 100 * time.Millisecond
	for _, r := range rows {
		if r.AlwaysOn <= 0 || r.Disconnected <= r.AlwaysOn {
			t.Fatalf("outage=%v: totals %+v", r.Outage, r)
		}
		extra := r.Disconnected - r.AlwaysOn
		if extra < r.Outage-tol || extra > r.Outage+tol {
			t.Fatalf("outage=%v: disconnection cost %v, want ~%v", r.Outage, extra, r.Outage)
		}
		// Delivery lag is the outage plus the session round trips —
		// strictly more than the outage, well under outage + 10s.
		if r.DeliveryLag <= r.Outage || r.DeliveryLag > r.Outage+10*time.Second {
			t.Fatalf("outage=%v: delivery lag %v out of range", r.Outage, r.DeliveryLag)
		}
	}
	tbl := E8Table(rows)
	if len(tbl.Rows) != 2 || len(tbl.Columns) != 4 {
		t.Fatalf("table shape: %+v", tbl)
	}
}

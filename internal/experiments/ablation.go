package experiments

import (
	"fmt"
	"time"

	"pdagent/internal/atp"
	"pdagent/internal/compress"
	"pdagent/internal/core"
	"pdagent/internal/mascript"
	"pdagent/internal/mavm"
	"pdagent/internal/pisec"
	"pdagent/internal/services"
	"pdagent/internal/wire"
)

// representativePI builds the e-banking PI with a 5-transaction
// workload — the payload the ablations size and time.
func representativePI() *wire.PackedInformation {
	params := ebankingParams([]string{"bank-a", "bank-b"}, 5)
	return &wire.PackedInformation{
		CodeID:      core.AppEBanking,
		DispatchKey: "0123456789abcdef0123456789abcdef",
		Owner:       "ablation-device",
		Source:      core.EBankingSource,
		Params:      params,
	}
}

// uploadTime computes the simulated wireless upload time for a body of
// the given size under the evaluation link profile (mean jitter).
func uploadTime(size int) time.Duration {
	wireless, _ := experimentLinks()
	d := wireless.Latency + wireless.Jitter/2
	d += time.Duration(float64(size) / wireless.Bandwidth * float64(time.Second))
	return d
}

// CompressionRow is one A1 ablation point: PI wire size and upload
// time by codec.
type CompressionRow struct {
	Codec      string
	WireBytes  int
	UploadTime time.Duration
}

// AblationCompression measures the PI pipeline under each compression
// codec (sealed, as in the deployed configuration).
func AblationCompression(keyBits int) ([]CompressionRow, error) {
	kp, err := pisec.GenerateKeyPair(keyBits)
	if err != nil {
		return nil, err
	}
	pi := representativePI()
	var rows []CompressionRow
	for _, codec := range []compress.Codec{compress.None, compress.LZSS, compress.Flate} {
		body, err := wire.Pack(pi, codec, kp.Public())
		if err != nil {
			return nil, err
		}
		rows = append(rows, CompressionRow{
			Codec:      codec.String(),
			WireBytes:  len(body),
			UploadTime: uploadTime(len(body)),
		})
	}
	return rows, nil
}

// CompressionTable renders A1.
func CompressionTable(rows []CompressionRow) *Table {
	t := &Table{
		Title:   "A1 — PI compression codec (sealed payload)",
		Columns: []string{"codec", "wire bytes", "upload time"},
	}
	for _, r := range rows {
		t.AddRow(r.Codec, fmt.Sprint(r.WireBytes), secs(r.UploadTime))
	}
	return t
}

// SecurityRow is one A2 ablation point: the cost of the Figure 7
// security model.
type SecurityRow struct {
	Secure     bool
	WireBytes  int
	UploadTime time.Duration
}

// AblationSecurity measures the sealed vs. plain PI pipeline (LZSS).
func AblationSecurity(keyBits int) ([]SecurityRow, error) {
	kp, err := pisec.GenerateKeyPair(keyBits)
	if err != nil {
		return nil, err
	}
	pi := representativePI()
	var rows []SecurityRow
	for _, secure := range []bool{false, true} {
		var key *pisec.PublicKey
		if secure {
			key = kp.Public()
		}
		body, err := wire.Pack(pi, compress.LZSS, key)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SecurityRow{
			Secure:     secure,
			WireBytes:  len(body),
			UploadTime: uploadTime(len(body)),
		})
	}
	return rows, nil
}

// SecurityTable renders A2.
func SecurityTable(rows []SecurityRow) *Table {
	t := &Table{
		Title:   "A2 — PI encryption (Figure 7) on/off (LZSS)",
		Columns: []string{"secure", "wire bytes", "upload time"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Secure), fmt.Sprint(r.WireBytes), secs(r.UploadTime))
	}
	return t
}

// FlavourRow is one A3 ablation point: MAS codec flavour costs.
type FlavourRow struct {
	Flavour       string
	EnvelopeBytes int
	JourneyTime   time.Duration
}

// AblationFlavour measures the agent-transfer envelope size per codec
// flavour and the end-to-end journey time in a world running entirely
// on that flavour.
func AblationFlavour(seed int64) ([]FlavourRow, error) {
	// A representative in-flight agent image.
	prog, err := mascript.Compile(core.EBankingSource)
	if err != nil {
		return nil, err
	}
	vm, err := mavm.New(prog, "ablation-agent", ebankingParams([]string{"bank-a", "bank-b"}, 5))
	if err != nil {
		return nil, err
	}
	pb, err := mavm.MarshalProgram(prog)
	if err != nil {
		return nil, err
	}
	sb, err := mavm.MarshalState(vm)
	if err != nil {
		return nil, err
	}
	im := &atp.Image{
		AgentID: "ablation-agent", Home: "gw-0", CodeID: core.AppEBanking,
		Owner: "ablation-device", Program: pb, State: sb,
	}

	var rows []FlavourRow
	for _, flavour := range atp.Flavours() {
		codec, err := atp.ByName(flavour)
		if err != nil {
			return nil, err
		}
		env, err := codec.Encode(im)
		if err != nil {
			return nil, err
		}
		journey, err := measureFlavourJourney(seed, flavour)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FlavourRow{
			Flavour:       flavour,
			EnvelopeBytes: len(env),
			JourneyTime:   journey,
		})
	}
	return rows, nil
}

// measureFlavourJourney runs the standard e-banking journey in a world
// whose hosts all speak one flavour and returns the total virtual time
// from dispatch to result availability (device + journey).
func measureFlavourJourney(seed int64, flavour string) (time.Duration, error) {
	wireless, wired := experimentLinks()
	hosts := map[string]core.HostSpec{}
	for _, spec := range []string{"bank-a", "bank-b"} {
		hosts[spec] = core.HostSpec{
			Flavour: flavour,
			Bank:    bankFor(spec),
		}
	}
	world, err := core.NewSimWorld(core.SimConfig{
		Seed:     seed,
		Hosts:    hosts,
		Wireless: &wireless,
		Wired:    &wired,
		KeyBits:  1024,
	})
	if err != nil {
		return 0, err
	}
	dev, err := world.NewDevice("flavour-device")
	if err != nil {
		return 0, err
	}
	ctx, clock := world.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", core.AppEBanking); err != nil {
		return 0, err
	}
	t0 := clock.Now()
	agentID, err := dev.Dispatch(ctx, core.AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 5))
	if err != nil {
		return 0, err
	}
	world.Run()
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		return 0, err
	}
	if !rd.OK() {
		return 0, fmt.Errorf("experiments: flavour journey failed: %s", rd.Error)
	}
	return clock.Now() - t0, nil
}

func bankFor(addr string) *services.Bank {
	return services.NewBank(addr, map[string]int64{"alice": 10_000, "bob": 5_000})
}

// FlavourTable renders A3.
func FlavourTable(rows []FlavourRow) *Table {
	t := &Table{
		Title:   "A3 — MAS codec flavour (agent envelope + journey)",
		Columns: []string{"flavour", "envelope bytes", "journey time"},
	}
	for _, r := range rows {
		t.AddRow(r.Flavour, fmt.Sprint(r.EnvelopeBytes), secs(r.JourneyTime))
	}
	return t
}

// PolicyRow is one A4 ablation point: gateway selection policy.
type PolicyRow struct {
	Policy       string
	MeanPIUpload time.Duration
	ProbeCost    time.Duration
}

// AblationSelectionPolicy compares RTT-probe selection against not
// probing at all over the heterogeneous five-gateway world. A device
// that skips probing has no distance information, so its expected PI
// round-trip is the mean over all list entries; probing pays its sweep
// cost once but always lands on the nearest gateway.
func AblationSelectionPolicy(seed int64) ([]PolicyRow, error) {
	report, err := GatewaySelection(seed)
	if err != nil {
		return nil, err
	}
	pi := representativePI()
	body, err := wire.Pack(pi, compress.LZSS, nil)
	if err != nil {
		return nil, err
	}
	// PI round trip to a gateway: its probed RTT plus the uplink
	// bandwidth term for the PI body.
	bwTerm := time.Duration(float64(len(body)) / 18_000 * float64(time.Second))
	cost := func(addr string) (time.Duration, error) {
		for _, p := range report.Probes {
			if p.Addr == addr {
				if p.Err != nil {
					return 0, p.Err
				}
				return p.RTT + bwTerm, nil
			}
		}
		return 0, fmt.Errorf("experiments: no probe for %s", addr)
	}
	var mean time.Duration
	counted := 0
	for _, p := range report.Probes {
		if p.Err != nil {
			continue
		}
		mean += p.RTT + bwTerm
		counted++
	}
	if counted == 0 {
		return nil, fmt.Errorf("experiments: no reachable gateways")
	}
	mean /= time.Duration(counted)
	chosenCost, err := cost(report.Chosen)
	if err != nil {
		return nil, err
	}
	return []PolicyRow{
		{Policy: "no-probe (expected over list)", MeanPIUpload: mean},
		{Policy: "rtt-probe (" + report.Chosen + ")", MeanPIUpload: chosenCost, ProbeCost: report.ProbeCost},
	}, nil
}

// PolicyTable renders A4.
func PolicyTable(rows []PolicyRow) *Table {
	t := &Table{
		Title:   "A4 — gateway selection policy (PI round-trip to chosen gateway)",
		Columns: []string{"policy", "pi round-trip", "probe cost"},
	}
	for _, r := range rows {
		probe := "-"
		if r.ProbeCost > 0 {
			probe = secs(r.ProbeCost)
		}
		t.AddRow(r.Policy, secs(r.MeanPIUpload), probe)
	}
	return t
}

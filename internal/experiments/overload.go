package experiments

import (
	"fmt"
	"time"

	"pdagent/internal/benchkit"
)

// G8Row is one point on the overload curve: the same offered load
// driven through a gateway with admission control off and on
// (DESIGN.md §11). Load is expressed as ρ — offered arrival rate over
// service rate — so ρ>1 is past saturation. All quantities are
// virtual-time deterministic (see benchkit.Overload).
type G8Row struct {
	Rho     float64 // offered/service rate ratio
	Offered int     // arrivals driven

	// Admission control off: everything is admitted, the backlog and
	// the tail sojourn grow without bound past ρ=1.
	OffWithinSLO int   // deliveries inside the SLO
	OffP99US     int64 // p99 virtual sojourn, µs

	// Admission control on (in-flight watermark): excess arrivals are
	// refused retryably at the front door, admitted work finishes in
	// bounded time.
	OnWithinSLO int   // deliveries inside the SLO
	OnShed      int   // dispatches refused 503
	OnP99US     int64 // p99 virtual sojourn, µs
}

// OverloadCurve sweeps offered load across saturation (ρ from well
// under 1 to 3×) and measures delivered-within-SLO throughput with
// shedding off and on. The claim the curve carries: below saturation
// the two configurations are identical (the watermark never trips);
// past saturation the unshed gateway collapses — near-zero goodput,
// unbounded p99 — while the shed gateway holds goodput at the service
// capacity and keeps p99 bounded by the watermark depth.
func OverloadCurve() ([]G8Row, error) {
	const (
		offered      = 2000
		serviceEvery = time.Millisecond
		slo          = 20 * time.Millisecond
		watermark    = 16
	)
	rhos := []float64{0.5, 0.9, 1.2, 1.5, 2.0, 3.0}
	rows := make([]G8Row, 0, len(rhos))
	for _, rho := range rhos {
		arrivalEvery := time.Duration(float64(serviceEvery) / rho)
		base := benchkit.OverloadConfig{
			Offered:      offered,
			ArrivalEvery: arrivalEvery,
			ServiceEvery: serviceEvery,
			SLO:          slo,
		}
		off, err := benchkit.Overload(base)
		if err != nil {
			return nil, fmt.Errorf("overload ρ=%.1f shed=off: %w", rho, err)
		}
		withShed := base
		withShed.MaxInFlight = watermark
		on, err := benchkit.Overload(withShed)
		if err != nil {
			return nil, fmt.Errorf("overload ρ=%.1f shed=on: %w", rho, err)
		}
		rows = append(rows, G8Row{
			Rho:          rho,
			Offered:      offered,
			OffWithinSLO: off.WithinSLO,
			OffP99US:     off.P99US,
			OnWithinSLO:  on.WithinSLO,
			OnShed:       on.Shed,
			OnP99US:      on.P99US,
		})
	}
	return rows, nil
}

// G8Table renders the overload curve.
func G8Table(rows []G8Row) *Table {
	t := &Table{
		Title:   "G8 — overload: delivered-within-SLO throughput, shedding off vs on",
		Columns: []string{"rho", "offered", "goodput(off)", "p99_ms(off)", "goodput(on)", "shed(on)", "p99_ms(on)"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.1f", r.Rho),
			fmt.Sprintf("%d", r.Offered),
			fmt.Sprintf("%d", r.OffWithinSLO),
			fmt.Sprintf("%.1f", float64(r.OffP99US)/1000),
			fmt.Sprintf("%d", r.OnWithinSLO),
			fmt.Sprintf("%d", r.OnShed),
			fmt.Sprintf("%.1f", float64(r.OnP99US)/1000),
		)
	}
	return t
}

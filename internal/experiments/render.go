package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: rows of cells under named
// columns, printable as aligned ASCII or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"time"

	"pdagent/internal/core"
)

// E8 — completion-to-delivery latency for a disconnecting device.
//
// The paper's premise is that the agent roams so the handheld does not
// have to stay online, but its evaluation only measures always-on
// devices polling for results. E8 measures the disconnected-device
// scenario the mailbox subsystem (DESIGN.md §7) makes first-class: the
// device dispatches, drops off the air for a configurable outage while
// the journey completes, then reconnects and opens a session. The
// result reaches it through the durable mailbox exactly once; the
// interesting quantity is the delivery lag — how long after the agent
// came home the device actually held the result — which for an offline
// device collapses to (remaining outage + one delivery round trip),
// versus a poll loop that would have burned the whole outage retrying.

// E8Row is one outage point of the E8 series.
type E8Row struct {
	// Outage is how long the device stayed unreachable after the
	// journey completed under it.
	Outage time.Duration
	// AlwaysOn is the dispatch-to-delivery time of a device that never
	// disconnected (the baseline).
	AlwaysOn time.Duration
	// Disconnected is the dispatch-to-delivery time for the
	// disconnecting device.
	Disconnected time.Duration
	// DeliveryLag is result-ready-to-delivered for the disconnecting
	// device (outage remainder + the session round trip).
	DeliveryLag time.Duration
}

// MeasureDelivery runs one e-banking journey (txns transactions over
// both banks) on a mailbox-enabled world and returns the dispatch-to-
// delivery time plus the result-ready-to-delivered lag. With outage >
// 0 the device disconnects right after the upload and reconnects
// outage after the journey completed; with outage == 0 it stays
// online and opens its session immediately.
func MeasureDelivery(seed int64, txns int, outage time.Duration) (total, lag time.Duration, err error) {
	wireless, wired := experimentLinks()
	world, err := core.NewSimWorld(core.SimConfig{
		Seed:     seed,
		Wireless: &wireless,
		Wired:    &wired,
		KeyBits:  1024,
		Mailbox:  true,
	})
	if err != nil {
		return 0, 0, err
	}
	defer world.Close()
	dev, err := world.NewDevice("e8-device")
	if err != nil {
		return 0, 0, err
	}
	ctx, clock := world.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", core.AppEBanking); err != nil {
		return 0, 0, err
	}

	t0 := clock.Now()
	agentID, err := dev.Dispatch(ctx, core.AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, txns))
	if err != nil {
		return 0, 0, err
	}
	if outage > 0 {
		if err := world.DisconnectDevice("e8-device"); err != nil {
			return 0, 0, err
		}
	}
	world.Run()
	ready := clock.Now() // the agent is home, the mailbox holds the result
	if outage > 0 {
		clock.Advance(outage)
		if err := world.ReconnectDevice("e8-device"); err != nil {
			return 0, 0, err
		}
	}
	s, err := dev.OpenSession(ctx)
	if err != nil {
		return 0, 0, err
	}
	found := false
	for _, d := range s.Deliveries {
		if d.AgentID == agentID && d.Result != nil {
			if !d.Result.OK() {
				return 0, 0, fmt.Errorf("experiments: journey failed: %s", d.Result.Error)
			}
			found = true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("experiments: session delivered no result for %s", agentID)
	}
	done := clock.Now()
	// Exactly once: a second session (after the measurement point) must
	// deliver nothing.
	if s2, err := dev.OpenSession(ctx); err != nil {
		return 0, 0, err
	} else if len(s2.Deliveries) != 0 {
		return 0, 0, fmt.Errorf("experiments: result redelivered (%d extra deliveries)", len(s2.Deliveries))
	}
	return done - t0, done - ready, nil
}

// E8 regenerates the disconnection series: a fixed 3-transaction
// journey, delivered to an always-on device and to devices that stayed
// away for increasing outages.
func E8(seed int64, outages []time.Duration) ([]E8Row, error) {
	const txns = 3
	baseline, _, err := MeasureDelivery(seed, txns, 0)
	if err != nil {
		return nil, fmt.Errorf("e8 always-on: %w", err)
	}
	rows := make([]E8Row, 0, len(outages))
	for _, o := range outages {
		total, lag, err := MeasureDelivery(seed, txns, o)
		if err != nil {
			return nil, fmt.Errorf("e8 outage=%v: %w", o, err)
		}
		rows = append(rows, E8Row{Outage: o, AlwaysOn: baseline, Disconnected: total, DeliveryLag: lag})
	}
	return rows, nil
}

// DefaultE8Outages is the x-axis of the E8 figure.
var DefaultE8Outages = []time.Duration{
	time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 16 * time.Second,
}

// E8Table renders the E8 series.
func E8Table(rows []E8Row) *Table {
	t := &Table{
		Title:   "E8 — completion-to-delivery with a disconnected device (virtual seconds)",
		Columns: []string{"outage", "always-on", "disconnected", "delivery-lag"},
	}
	for _, r := range rows {
		t.AddRow(secs(r.Outage), secs(r.AlwaysOn), secs(r.Disconnected), secs(r.DeliveryLag))
	}
	return t
}

// Package experiments regenerates every quantitative artefact of the
// paper's evaluation (§4): Figure 12 (Internet connection time for
// PDAgent vs. client-server vs. web-based), Figure 13 a/b (transaction
// completion-time variance over four trials), the prose claims about
// on-device footprint and MA code size, the Figure 8 gateway-selection
// behaviour, and ablations over the design choices (compression codec,
// encryption, MAS flavour, selection policy).
//
// Every experiment builds a fresh simulated world per measurement from
// an explicit seed, so all series replay exactly. Times are virtual
// (journey-clock) seconds — the whole suite runs in well under a
// second of wall time.
package experiments

import (
	"fmt"
	"time"

	"pdagent/internal/baseline"
	"pdagent/internal/core"
	"pdagent/internal/device"
	"pdagent/internal/mavm"
	"pdagent/internal/netsim"
)

// Evaluation link profile: a 2004-era handheld link (GPRS/early WLAN
// class) and a wired Internet path. All figure series derive from
// these two links plus payload sizes.
func experimentLinks() (wireless, wired netsim.Link) {
	wireless = netsim.Link{
		Latency:   500 * time.Millisecond,
		Jitter:    350 * time.Millisecond,
		Bandwidth: 18_000, // ~144 kbit/s
	}
	wired = netsim.Link{
		Latency:   15 * time.Millisecond,
		Jitter:    10 * time.Millisecond,
		Bandwidth: 2_000_000,
	}
	return wireless, wired
}

// Env is one ready-to-measure deployment: the simulated world, a
// handheld, and baseline web servers wrapping the same banks.
type Env struct {
	World  *core.SimWorld
	Device *device.Platform
	// WebBanks are the baseline servers' addresses, index-aligned with
	// BankHosts.
	WebBanks  []string
	BankHosts []string
}

// NewEnv builds the standard two-bank evaluation environment.
func NewEnv(seed int64) (*Env, error) {
	wireless, wired := experimentLinks()
	world, err := core.NewSimWorld(core.SimConfig{
		Seed:     seed,
		Wireless: &wireless,
		Wired:    &wired,
		KeyBits:  1024, // small keys keep the sweep fast; size is ablated separately
	})
	if err != nil {
		return nil, err
	}
	env := &Env{World: world, BankHosts: []string{"bank-a", "bank-b"}}
	for _, bank := range env.BankHosts {
		web := "web-" + bank
		world.Net.AddHost(web, netsim.ZoneWired, baseline.NewServer(world.Banks[bank]).Handler())
		env.WebBanks = append(env.WebBanks, web)
	}
	dev, err := world.NewDevice("bench-device")
	if err != nil {
		return nil, err
	}
	env.Device = dev
	return env, nil
}

// workload: "n transactions" means n transfer requests, each executed
// at both bank sites (the paper's one-bank-to-another scenario), i.e.
// 2n transfers total for every approach.

// ebankingParams builds the PDAgent parameters for n transactions.
func ebankingParams(banks []string, n int) map[string]mavm.Value {
	bankVals := make([]mavm.Value, len(banks))
	for i, b := range banks {
		bankVals[i] = mavm.Str(b)
	}
	txns := make([]mavm.Value, n)
	for i := range txns {
		m := mavm.NewMap()
		m.MapEntries()["from"] = mavm.Str("alice")
		m.MapEntries()["to"] = mavm.Str("bob")
		m.MapEntries()["amount"] = mavm.Int(5)
		txns[i] = m
	}
	return map[string]mavm.Value{
		"banks":        mavm.NewList(bankVals...),
		"transactions": mavm.NewList(txns...),
	}
}

// baselineTxns builds the equivalent baseline workload: 2n transfers
// alternating between the two web banks.
func (env *Env) baselineTxns(n int) []baseline.Transaction {
	out := make([]baseline.Transaction, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		out = append(out, baseline.Transaction{
			Bank:   env.WebBanks[i%len(env.WebBanks)],
			From:   "alice",
			To:     "bob",
			Amount: 5,
		})
	}
	return out
}

// MeasurePDAgent runs the PDAgent flow for n transactions and returns
// the paper's metric: online time for PI upload plus online time for
// result download. Subscription is excluded (it happens once, before
// the measured session, like installing the MIDlet in the paper).
func MeasurePDAgent(seed int64, n int) (time.Duration, error) {
	env, err := NewEnv(seed)
	if err != nil {
		return 0, err
	}
	ctx, clock := env.World.NewJourney()
	if err := env.Device.Subscribe(ctx, "gw-0", core.AppEBanking); err != nil {
		return 0, err
	}

	t0 := clock.Now()
	agentID, err := env.Device.Dispatch(ctx, core.AppEBanking, ebankingParams(env.BankHosts, n))
	if err != nil {
		return 0, err
	}
	upload := clock.Now() - t0

	// The user is offline while the agent travels.
	env.World.Run()

	t1 := clock.Now()
	rd, err := env.Device.Collect(ctx, agentID)
	if err != nil {
		return 0, err
	}
	if !rd.OK() {
		return 0, fmt.Errorf("experiments: journey failed: %s", rd.Error)
	}
	download := clock.Now() - t1
	return upload + download, nil
}

// MeasureClientServer runs the client-server session for n
// transactions and returns its online time (the whole session: the
// client must stay connected until the service completes).
func MeasureClientServer(seed int64, n int) (time.Duration, error) {
	env, err := NewEnv(seed)
	if err != nil {
		return 0, err
	}
	ctx, clock := env.World.NewJourney()
	client := &baseline.Client{Transport: env.World.Transport(netsim.ZoneWireless)}
	t0 := clock.Now()
	if _, err := client.RunClientServer(ctx, env.baselineTxns(n)); err != nil {
		return 0, err
	}
	return clock.Now() - t0, nil
}

// MeasureWebBased runs the browser session for n transactions and
// returns its online time.
func MeasureWebBased(seed int64, n int) (time.Duration, error) {
	env, err := NewEnv(seed)
	if err != nil {
		return 0, err
	}
	ctx, clock := env.World.NewJourney()
	client := &baseline.Client{Transport: env.World.Transport(netsim.ZoneWireless)}
	t0 := clock.Now()
	if _, err := client.RunWebBased(ctx, env.baselineTxns(n)); err != nil {
		return 0, err
	}
	return clock.Now() - t0, nil
}

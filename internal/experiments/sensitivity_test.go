package experiments

import (
	"testing"
	"time"
)

// TestLinkSensitivityShape pins the A5 crossover analysis: on very
// fast links the baseline is competitive at n=1 (PDAgent pays two
// extra fixed messages), while at high latency PDAgent wins even the
// single-transaction case; at n=10 PDAgent wins across the sweep.
func TestLinkSensitivityShape(t *testing.T) {
	rows, err := LinkSensitivity(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	fastest, slowest := rows[0], rows[len(rows)-1]
	if fastest.WirelessLatency >= slowest.WirelessLatency {
		t.Fatal("sweep not ordered")
	}
	// n=10: PDAgent wins at every latency.
	for _, r := range rows {
		if r.PDAgentN10 >= r.ClientServerN10 {
			t.Errorf("lat %v: pda n=10 %v >= cs %v", r.WirelessLatency, r.PDAgentN10, r.ClientServerN10)
		}
	}
	// The advantage at n=10 grows with latency.
	gapFast := fastest.ClientServerN10 - fastest.PDAgentN10
	gapSlow := slowest.ClientServerN10 - slowest.PDAgentN10
	if gapSlow <= gapFast {
		t.Errorf("n=10 gap did not grow with latency: %v -> %v", gapFast, gapSlow)
	}
	// At the slowest link PDAgent also wins the single-transaction case
	// by a clear margin.
	if slowest.PDAgentN1 >= slowest.ClientServerN1 {
		t.Errorf("slow link n=1: pda %v >= cs %v", slowest.PDAgentN1, slowest.ClientServerN1)
	}
	// Everything stays sub-minute: sanity bound against unit mistakes.
	for _, r := range rows {
		if r.ClientServerN10 > 5*time.Minute {
			t.Errorf("cs n=10 at %v = %v, implausible", r.WirelessLatency, r.ClientServerN10)
		}
	}
}

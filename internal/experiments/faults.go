package experiments

import (
	"fmt"
	"time"

	"pdagent/internal/core"
	"pdagent/internal/mas"
)

// E7 — transaction completion time under mid-itinerary crashes.
//
// The paper's evaluation assumes agent servers stay up for the whole
// journey. E7 measures what §4's metric becomes when the first bank's
// MAS crashes while the agent is resident: with the write-ahead agent
// journal, the restarted server resumes the journey and the
// transaction set completes exactly once, paying only the restart
// outage; without durability the journey would simply be lost.

// E7Outage is the simulated crash-to-restart wall time charged to the
// journey clock (operator restart latency).
const E7Outage = 2 * time.Second

// E7Row is one x-axis point of the E7 series.
type E7Row struct {
	N       int
	Healthy time.Duration // completion time, no faults
	Crash   time.Duration // completion time with a bank-a crash + recovery
}

// MeasureCompletion runs the e-banking journey for n transactions on a
// journaled world and returns the full transaction completion time
// (dispatch to result availability, virtual). With crash set, bank-a's
// MAS is killed deterministically while the agent is resident there,
// stays down for E7Outage, and is then restarted from its journal.
func MeasureCompletion(seed int64, n int, crash bool) (time.Duration, error) {
	wireless, wired := experimentLinks()
	world, err := core.NewSimWorld(core.SimConfig{
		Seed:     seed,
		Wireless: &wireless,
		Wired:    &wired,
		KeyBits:  1024,
		Journal:  true,
	})
	if err != nil {
		return 0, err
	}
	defer world.Close()
	dev, err := world.NewDevice("e7-device")
	if err != nil {
		return 0, err
	}
	ctx, clock := world.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", core.AppEBanking); err != nil {
		return 0, err
	}

	t0 := clock.Now()
	agentID, err := dev.Dispatch(ctx, core.AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, n))
	if err != nil {
		return 0, err
	}

	if crash {
		arrived := func() bool {
			return world.Hosts["bank-a"].AgentStates()[agentID] == mas.StateRunning
		}
		for !arrived() {
			if !world.Queue.Step() {
				return 0, fmt.Errorf("experiments: agent %s never reached bank-a", agentID)
			}
		}
		if err := world.CrashHost("bank-a"); err != nil {
			return 0, err
		}
		world.Run() // work queued against the dead host is abandoned
		clock.Advance(E7Outage)
		resumed, err := world.RestartHost(ctx, "bank-a")
		if err != nil {
			return 0, err
		}
		if resumed != 1 {
			return 0, fmt.Errorf("experiments: resumed %d agents, want 1", resumed)
		}
	}

	world.Run()
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		return 0, err
	}
	if !rd.OK() {
		return 0, fmt.Errorf("experiments: journey failed: %s", rd.Error)
	}
	// Exactly-once check: each of the n transactions moved 5 units at
	// each bank, once.
	for _, b := range []string{"bank-a", "bank-b"} {
		bal, ok := world.Banks[b].Balance("alice")
		if !ok || bal != int64(10_000-5*n) {
			return 0, fmt.Errorf("experiments: %s alice balance %d after %d txns (lost or replayed transactions)", b, bal, n)
		}
	}
	return clock.Now() - t0, nil
}

// E7 regenerates the crash-recovery series for 1..maxN transactions.
func E7(seed int64, maxN int) ([]E7Row, error) {
	rows := make([]E7Row, 0, maxN)
	for n := 1; n <= maxN; n++ {
		healthy, err := MeasureCompletion(seed, n, false)
		if err != nil {
			return nil, fmt.Errorf("e7 n=%d healthy: %w", n, err)
		}
		crash, err := MeasureCompletion(seed, n, true)
		if err != nil {
			return nil, fmt.Errorf("e7 n=%d crash: %w", n, err)
		}
		rows = append(rows, E7Row{N: n, Healthy: healthy, Crash: crash})
	}
	return rows, nil
}

// E7Table renders the E7 series.
func E7Table(rows []E7Row) *Table {
	t := &Table{
		Title:   "E7 — transaction completion time under a mid-itinerary MAS crash (virtual seconds)",
		Columns: []string{"transactions", "healthy", "crash+recovery", "overhead"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.N), secs(r.Healthy), secs(r.Crash), secs(r.Crash-r.Healthy))
	}
	return t
}

package experiments

import (
	"fmt"
	"time"

	"pdagent/internal/cluster"
	"pdagent/internal/core"
	"pdagent/internal/mas"
)

// G3 — gateway federation (DESIGN.md §6). Two virtual-time series
// complement the wall-clock throughput numbers in BENCH_4.json:
// ClusterScaling measures completion time as the middle tier grows
// (forwarded dispatches pay visible extra wired hops), and
// ClusterFailover measures the cost of losing the home member mid-
// itinerary (journal recovery + reroute, exactly-once).

// G3Row is one member-count point of the scaling series.
type G3Row struct {
	Members int
	// Journeys is the number of measured dispatches.
	Journeys int
	// Forwarded counts dispatches whose ring home differed from the
	// edge member the device uploaded through.
	Forwarded int
	// MeanCompletion is the mean dispatch→result virtual time.
	MeanCompletion time.Duration
}

// ClusterScaling runs the same e-banking journeys against clustered
// middle tiers of growing size. Devices upload round-robin across the
// members (the worst case for mis-homing: no directory-aware client),
// so the forwarded share grows with the fleet while completion time
// stays within a few wired RTTs of the single-gateway baseline.
func ClusterScaling(seed int64, memberCounts []int, journeys int) ([]G3Row, error) {
	wireless, wired := experimentLinks()
	var rows []G3Row
	for _, n := range memberCounts {
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("gw-%d", i)
		}
		world, err := core.NewSimWorld(core.SimConfig{
			Seed:         seed,
			GatewayAddrs: addrs,
			Wireless:     &wireless,
			Wired:        &wired,
			KeyBits:      1024,
			Cluster:      true,
		})
		if err != nil {
			return nil, err
		}
		row := G3Row{Members: n, Journeys: journeys}
		var total time.Duration
		for j := 0; j < journeys; j++ {
			owner := fmt.Sprintf("g3-dev-%d", j)
			edge := addrs[j%n]
			dev, err := world.NewDevice(owner)
			if err != nil {
				return nil, err
			}
			ctx, clock := world.NewJourney()
			if err := dev.Subscribe(ctx, edge, core.AppEBanking); err != nil {
				return nil, err
			}
			key := cluster.SubscriptionKey(core.AppEBanking, owner)
			if home := world.Nodes[0].Home(key); home != edge {
				row.Forwarded++
			}
			t0 := clock.Now()
			agentID, err := dev.Dispatch(ctx, core.AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, 1))
			if err != nil {
				return nil, err
			}
			world.Run()
			rd, err := dev.Collect(ctx, agentID)
			if err != nil {
				return nil, err
			}
			if !rd.OK() {
				return nil, fmt.Errorf("experiments: G3 journey failed: %s", rd.Error)
			}
			total += clock.Now() - t0
		}
		row.MeanCompletion = total / time.Duration(journeys)
		rows = append(rows, row)
		world.Close()
	}
	return rows, nil
}

// G3Table renders the scaling series.
func G3Table(rows []G3Row) *Table {
	t := &Table{
		Title:   "G3 — federation scaling: completion time vs middle-tier size (round-robin edges)",
		Columns: []string{"members", "journeys", "forwarded", "mean completion"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Members), fmt.Sprint(r.Journeys), fmt.Sprint(r.Forwarded), secs(r.MeanCompletion))
	}
	return t
}

// FailoverReport is the member-kill rerouting result.
type FailoverReport struct {
	// Baseline is the undisturbed completion time.
	Baseline time.Duration
	// WithKill is the completion time when the agent's home member is
	// crashed mid-itinerary and restarted after RestartOutage.
	WithKill time.Duration
	// RestartOutage is how long the member stayed down.
	RestartOutage time.Duration
	// ExactlyOnce reports whether the bank ledgers saw each transfer
	// exactly once despite the crash and the retried handoffs.
	ExactlyOnce bool
	// EdgeCollected reports whether the device collected through its
	// original edge member after the home member's restart.
	EdgeCollected bool
}

// ClusterFailover kills the agent's home member while the agent is at
// bank-a, restarts it after outage, retries parked transfers and
// measures the end-to-end completion against an undisturbed run of the
// same seed.
func ClusterFailover(seed int64, outage time.Duration) (*FailoverReport, error) {
	const txns = 2
	run := func(kill bool) (time.Duration, bool, bool, error) {
		wireless, wired := experimentLinks()
		world, err := core.NewSimWorld(core.SimConfig{
			Seed:         seed,
			GatewayAddrs: []string{"gw-0", "gw-1", "gw-2"},
			Wireless:     &wireless,
			Wired:        &wired,
			KeyBits:      1024,
			Cluster:      true,
			Journal:      true,
		})
		if err != nil {
			return 0, false, false, err
		}
		defer world.Close()
		owner := "alice"
		key := cluster.SubscriptionKey(core.AppEBanking, owner)
		home := world.Nodes[0].Home(key)
		edge := ""
		for _, a := range world.GatewayAddrs() {
			if a != home {
				edge = a
				break
			}
		}
		dev, err := world.NewDevice(owner)
		if err != nil {
			return 0, false, false, err
		}
		ctx, clock := world.NewJourney()
		if err := dev.Subscribe(ctx, edge, core.AppEBanking); err != nil {
			return 0, false, false, err
		}
		t0 := clock.Now()
		agentID, err := dev.Dispatch(ctx, core.AppEBanking, ebankingParams([]string{"bank-a", "bank-b"}, txns))
		if err != nil {
			return 0, false, false, err
		}
		if kill {
			for world.Hosts["bank-a"].AgentStates()[agentID] != mas.StateRunning {
				if !world.Queue.Step() {
					return 0, false, false, fmt.Errorf("experiments: agent never reached bank-a")
				}
			}
			if err := world.CrashGateway(home); err != nil {
				return 0, false, false, err
			}
			world.Run()
			clock.Advance(outage) // the member stays down this long
			if _, err := world.RestartGateway(ctx, home); err != nil {
				return 0, false, false, err
			}
			world.RetryParked(ctx)
		}
		world.Run()
		rd, err := dev.Collect(ctx, agentID)
		if err != nil {
			return 0, false, false, err
		}
		if !rd.OK() {
			return 0, false, false, fmt.Errorf("experiments: failover journey failed: %s", rd.Error)
		}
		exactly := true
		for _, b := range []string{"bank-a", "bank-b"} {
			if bal, _ := world.Banks[b].Balance("alice"); bal != 10_000-5*txns {
				exactly = false
			}
		}
		return clock.Now() - t0, exactly, true, nil
	}

	base, _, _, err := run(false)
	if err != nil {
		return nil, err
	}
	killed, exactly, collected, err := run(true)
	if err != nil {
		return nil, err
	}
	return &FailoverReport{
		Baseline:      base,
		WithKill:      killed,
		RestartOutage: outage,
		ExactlyOnce:   exactly,
		EdgeCollected: collected,
	}, nil
}

// FailoverTable renders the member-kill experiment.
func FailoverTable(r *FailoverReport) *Table {
	t := &Table{
		Title:   "G3 — member-kill rerouting (home member crashes mid-itinerary)",
		Columns: []string{"scenario", "completion", "exactly-once", "edge collect"},
	}
	t.AddRow("undisturbed", secs(r.Baseline), "-", "-")
	t.AddRow(fmt.Sprintf("home killed (%.0fs outage)", r.RestartOutage.Seconds()),
		secs(r.WithKill), fmt.Sprint(r.ExactlyOnce), fmt.Sprint(r.EdgeCollected))
	return t
}

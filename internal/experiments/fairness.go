package experiments

import (
	"fmt"
	"time"

	"pdagent/internal/benchkit"
)

// E9Row is one point on the noisy-neighbour curve: a well-behaved
// tenant holds 10% of service capacity at weight 4 while an
// adversarial tenant's offered load sweeps from polite to 4× capacity,
// under the pre-§12 flat FIFO watermark and under the §12 weighted-fair
// control plane. All quantities are virtual-time deterministic (see
// benchkit.Fairness).
type E9Row struct {
	HogRho float64 // hog offered rate over service rate
	HogOff int     // hog arrivals driven

	// Flat FIFO watermark: admission is first-come and service order
	// rides the hog's backlog — the meek tenant's latency and goodput
	// collapse with the flood.
	FIFOMeekWithinSLO int   // meek deliveries inside the SLO
	FIFOMeekP99US     int64 // meek p99 virtual sojourn, µs
	FIFOHogAdmitted   int

	// §12 weighted-fair: tenants under their share stay admitted (the
	// hog absorbs the 503s) and the WFQ interleaves service by weight.
	FairMeekWithinSLO int   // meek deliveries inside the SLO
	FairMeekP99US     int64 // meek p99 virtual sojourn, µs
	FairHogAdmitted   int
	FairHogShed       int
}

// FairnessCurve sweeps the adversarial tenant's offered load across
// saturation and measures what each admission regime leaves the
// well-behaved tenant. The claim the curve carries: under FIFO the
// meek tenant's p99 tracks the hog's backlog (the watermark depth in
// service times) the moment the hog saturates the server, while under
// the §12 control plane the meek tenant's p99 stays within 2× its
// solo baseline at every hog intensity, because the fair shed caps
// the hog's in-flight share and the WFQ serves the meek tenant's
// trickle ahead of the flood's backlog.
func FairnessCurve() ([]E9Row, error) {
	const (
		serviceEvery = time.Millisecond
		slo          = 20 * time.Millisecond
		watermark    = 32
		meekOffered  = 200
		meekEvery    = 10 * time.Millisecond // 10% of capacity
		horizon      = 2 * time.Second       // hog arrivals span the meek run
	)
	rhos := []float64{0.5, 1.0, 2.0, 4.0}
	rows := make([]E9Row, 0, len(rhos))
	for _, rho := range rhos {
		hogEvery := time.Duration(float64(serviceEvery) / rho)
		base := benchkit.FairnessConfig{
			HogOffered: int(horizon / hogEvery), HogEvery: hogEvery,
			MeekOffered: meekOffered, MeekEvery: meekEvery,
			ServiceEvery: serviceEvery,
			SLO:          slo,
			MaxInFlight:  watermark,
			HogWeight:    1, MeekWeight: 4,
		}
		fifo := base
		fifoPt, err := benchkit.Fairness(fifo)
		if err != nil {
			return nil, fmt.Errorf("fairness ρ=%.1f fifo: %w", rho, err)
		}
		fair := base
		fair.Fair = true
		fairPt, err := benchkit.Fairness(fair)
		if err != nil {
			return nil, fmt.Errorf("fairness ρ=%.1f fair: %w", rho, err)
		}
		rows = append(rows, E9Row{
			HogRho:            rho,
			HogOff:            base.HogOffered,
			FIFOMeekWithinSLO: fifoPt.Meek.WithinSLO,
			FIFOMeekP99US:     fifoPt.Meek.P99US,
			FIFOHogAdmitted:   fifoPt.Hog.Admitted,
			FairMeekWithinSLO: fairPt.Meek.WithinSLO,
			FairMeekP99US:     fairPt.Meek.P99US,
			FairHogAdmitted:   fairPt.Hog.Admitted,
			FairHogShed:       fairPt.Hog.Shed,
		})
	}
	return rows, nil
}

// E9Table renders the fairness curve.
func E9Table(rows []E9Row) *Table {
	t := &Table{
		Title:   "E9 — noisy neighbour: well-behaved tenant under FIFO vs weighted-fair admission (meek offers 200 @ 10% capacity)",
		Columns: []string{"hog_rho", "hog_offered", "meek_slo(fifo)", "meek_p99_ms(fifo)", "meek_slo(fair)", "meek_p99_ms(fair)", "hog_admitted(fair)", "hog_shed(fair)"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.1f", r.HogRho),
			fmt.Sprintf("%d", r.HogOff),
			fmt.Sprintf("%d", r.FIFOMeekWithinSLO),
			fmt.Sprintf("%.1f", float64(r.FIFOMeekP99US)/1000),
			fmt.Sprintf("%d", r.FairMeekWithinSLO),
			fmt.Sprintf("%.1f", float64(r.FairMeekP99US)/1000),
			fmt.Sprintf("%d", r.FairHogAdmitted),
			fmt.Sprintf("%d", r.FairHogShed),
		)
	}
	return t
}

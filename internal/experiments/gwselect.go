package experiments

import (
	"fmt"
	"time"

	"pdagent/internal/core"
	"pdagent/internal/device"
	"pdagent/internal/netsim"
)

// SelectReport is the E6 (Figure 8) result: the probe sweep, the
// chosen gateway, and what the probing itself cost in online time.
type SelectReport struct {
	Probes    []device.ProbeResult
	Chosen    string
	ChosenRTT time.Duration
	ProbeCost time.Duration
	// Refreshed reports whether the probed list came from the central
	// directory (the live membership view in clustered worlds) rather
	// than the device's static preload — in the stale-list scenario it
	// means the §3.5 threshold policy triggered the refresh.
	Refreshed bool
}

// gatewayZoneLatencies places five gateways at increasing distances.
var gatewayZoneLatencies = []time.Duration{
	120 * time.Millisecond,
	250 * time.Millisecond,
	480 * time.Millisecond,
	800 * time.Millisecond,
	1400 * time.Millisecond,
}

// GatewaySelection builds a five-gateway clustered world with
// heterogeneous latencies and runs the Figure 8 nearest-gateway
// selection. The probed list is the LIVE membership view downloaded
// from the central directory (the §3.5 path the deployed system
// takes), not the device's baked-in static list; if the refresh fails
// the preloaded static list is the fallback.
func GatewaySelection(seed int64) (*SelectReport, error) {
	addrs := make([]string, len(gatewayZoneLatencies))
	for i := range addrs {
		addrs[i] = fmt.Sprintf("gw-%d", i)
	}
	world, err := core.NewSimWorld(core.SimConfig{
		Seed:         seed,
		GatewayAddrs: addrs,
		KeyBits:      1024,
		Cluster:      true,
	})
	if err != nil {
		return nil, err
	}
	// Re-home each gateway into its own latency zone.
	for i, gw := range world.Gateways {
		zone := fmt.Sprintf("ring-%d", i)
		world.Net.AddHost(gw.Addr(), zone, gw.Handler())
		world.Net.SetLinkBoth(netsim.ZoneWireless, zone, netsim.Link{
			Latency: gatewayZoneLatencies[i],
			Jitter:  40 * time.Millisecond,
		})
		world.Net.SetLinkBoth(netsim.ZoneWired, zone, netsim.Link{Latency: 15 * time.Millisecond})
	}
	dev, err := world.NewDevice("probe-device")
	if err != nil {
		return nil, err
	}
	ctx, clock := world.NewJourney()

	// Download the live member view from the central directory; the
	// static list preloaded by NewDevice stays as the fallback.
	refreshed := false
	if err := dev.RefreshGateways(ctx, core.CentralAddr); err == nil {
		refreshed = true
	}

	t0 := clock.Now()
	probes, err := dev.ProbeGateways(ctx)
	if err != nil {
		return nil, err
	}
	probeCost := clock.Now() - t0

	chosen, rtt, err := dev.SelectGateway(ctx)
	if err != nil {
		return nil, err
	}
	return &SelectReport{
		Probes:    probes,
		Chosen:    chosen,
		ChosenRTT: rtt,
		ProbeCost: probeCost,
		Refreshed: refreshed,
	}, nil
}

// GatewaySelectionWithStaleList runs the threshold-breach scenario:
// the device's list holds only far gateways, so selection must refresh
// from the central server before settling on a near one.
func GatewaySelectionWithStaleList(seed int64) (*SelectReport, error) {
	world, err := core.NewSimWorld(core.SimConfig{
		Seed:         seed,
		GatewayAddrs: []string{"gw-near", "gw-far"},
		KeyBits:      1024,
	})
	if err != nil {
		return nil, err
	}
	world.Net.AddHost("gw-far", "far-ring", world.Gateways[1].Handler())
	world.Net.SetLinkBoth(netsim.ZoneWireless, "far-ring", netsim.Link{Latency: 3 * time.Second})
	world.Net.SetLinkBoth(netsim.ZoneWired, "far-ring", netsim.Link{Latency: 15 * time.Millisecond})

	dev, err := world.NewDevice("probe-device")
	if err != nil {
		return nil, err
	}
	if err := dev.SetGateways([]string{"gw-far"}); err != nil {
		return nil, err
	}
	ctx, _ := world.NewJourney()
	chosen, rtt, err := dev.SelectGateway(ctx)
	if err != nil {
		return nil, err
	}
	return &SelectReport{
		Chosen:    chosen,
		ChosenRTT: rtt,
		Refreshed: chosen != "gw-far",
	}, nil
}

// SelectTable renders the E6 report.
func SelectTable(r *SelectReport) *Table {
	t := &Table{
		Title:   "E6 / Figure 8 — nearest-gateway selection by RTT probe",
		Columns: []string{"gateway", "rtt", "chosen"},
	}
	for _, p := range r.Probes {
		mark := ""
		if p.Addr == r.Chosen {
			mark = "<=="
		}
		if p.Err != nil {
			t.AddRow(p.Addr, "unreachable", mark)
			continue
		}
		t.AddRow(p.Addr, secs(p.RTT), mark)
	}
	t.AddRow("probe cost", secs(r.ProbeCost), "")
	return t
}

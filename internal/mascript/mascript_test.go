package mascript

import (
	"fmt"
	"strings"
	"testing"

	"pdagent/internal/mavm"
)

// runHost is a scriptable mavm.Host for language tests.
type runHost struct {
	name     string
	services map[string]func(args []mavm.Value) (mavm.Value, error)
	logs     []string
}

func newRunHost(name string) *runHost {
	return &runHost{name: name, services: map[string]func([]mavm.Value) (mavm.Value, error){}}
}

func (h *runHost) HostName() string { return h.name }
func (h *runHost) HomeAddr() string { return "gw-0" }
func (h *runHost) CallService(name string, args []mavm.Value) (mavm.Value, error) {
	if fn, ok := h.services[name]; ok {
		return fn(args)
	}
	return mavm.Nil(), fmt.Errorf("no service %q", name)
}
func (h *runHost) Log(agentID, msg string) { h.logs = append(h.logs, msg) }

// run compiles src, executes it to completion on a single host, and
// returns the delivered results as a map.
func run(t *testing.T, src string, params map[string]mavm.Value) map[string]mavm.Value {
	t.Helper()
	vm, host := startVM(t, src, params)
	st, err := vm.Run(host, mavm.DefaultFuel)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st != mavm.StatusDone {
		t.Fatalf("status = %v", st)
	}
	out := map[string]mavm.Value{}
	for _, r := range vm.Results {
		out[r.Key] = r.Value
	}
	return out
}

func startVM(t *testing.T, src string, params map[string]mavm.Value) (*mavm.VM, *runHost) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v\nsource:\n%s", err, src)
	}
	vm, err := mavm.New(prog, "test-agent", params)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return vm, newRunHost("host-a")
}

func wantInt(t *testing.T, res map[string]mavm.Value, key string, want int64) {
	t.Helper()
	v, ok := res[key]
	if !ok {
		t.Fatalf("result %q missing (have %v)", key, res)
	}
	if v.Kind() != mavm.KindInt || v.AsInt() != want {
		t.Fatalf("result %q = %v, want %d", key, v, want)
	}
}

func wantStr(t *testing.T, res map[string]mavm.Value, key, want string) {
	t.Helper()
	v, ok := res[key]
	if !ok {
		t.Fatalf("result %q missing (have %v)", key, res)
	}
	if v.Kind() != mavm.KindStr || v.AsStr() != want {
		t.Fatalf("result %q = %v, want %q", key, v, want)
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	res := run(t, `
		deliver("a", 2 + 3 * 4);
		deliver("b", (2 + 3) * 4);
		deliver("c", 10 / 3);
		deliver("d", 10 % 3);
		deliver("e", -5 + 2);
		deliver("f", 7 - 2 - 1);
	`, nil)
	wantInt(t, res, "a", 14)
	wantInt(t, res, "b", 20)
	wantInt(t, res, "c", 3)
	wantInt(t, res, "d", 1)
	wantInt(t, res, "e", -3)
	wantInt(t, res, "f", 4)
}

func TestFloatsAndMixedArithmetic(t *testing.T) {
	res := run(t, `
		deliver("a", 1.5 + 2);
		deliver("b", 7 / 2.0);
		deliver("c", floor(3.9));
	`, nil)
	if res["a"].AsFloat() != 3.5 {
		t.Fatalf("a = %v", res["a"])
	}
	if res["b"].AsFloat() != 3.5 {
		t.Fatalf("b = %v", res["b"])
	}
	wantInt(t, res, "c", 3)
}

func TestStringsAndBuiltins(t *testing.T) {
	res := run(t, `
		let s = "hello" + " " + "world";
		deliver("s", s);
		deliver("up", upper(s));
		deliver("len", len(s));
		deliver("sub", substr(s, 0, 5));
		deliver("idx", find(s, "world"));
		deliver("join", join(split("a,b,c", ","), "-"));
		deliver("trim", trim("  x  "));
		deliver("ch", s[4]);
	`, nil)
	wantStr(t, res, "s", "hello world")
	wantStr(t, res, "up", "HELLO WORLD")
	wantInt(t, res, "len", 11)
	wantStr(t, res, "sub", "hello")
	wantInt(t, res, "idx", 6)
	wantStr(t, res, "join", "a-b-c")
	wantStr(t, res, "trim", "x")
	wantStr(t, res, "ch", "o")
}

func TestListsAndMaps(t *testing.T) {
	res := run(t, `
		let l = [1, 2, 3];
		push(l, 4);
		l[0] = 10;
		deliver("sum0", l[0] + l[3]);
		deliver("len", len(l));
		deliver("cat", len([1] + [2, 3]));

		let m = {"x": 1, "y": 2};
		m["z"] = 3;
		del(m, "x");
		deliver("keys", join(keys(m), ","));
		deliver("hasY", has(m, "y"));
		deliver("missing", m["x"]);
		deliver("popped", pop(l));
	`, nil)
	wantInt(t, res, "sum0", 14)
	wantInt(t, res, "len", 4)
	wantInt(t, res, "cat", 3)
	wantStr(t, res, "keys", "y,z")
	if !res["hasY"].AsBool() {
		t.Fatal("hasY false")
	}
	if !res["missing"].IsNil() {
		t.Fatalf("missing = %v", res["missing"])
	}
	wantInt(t, res, "popped", 4)
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
		let n = 0;
		let i = 0;
		while i < 10 {
			i = i + 1;
			if i % 2 == 0 { continue; }
			if i > 7 { break; }
			n = n + i;
		}
		deliver("n", n); // 1+3+5+7 = 16

		if n > 20 { deliver("cls", "big"); }
		else if n > 10 { deliver("cls", "mid"); }
		else { deliver("cls", "small"); }
	`, nil)
	wantInt(t, res, "n", 16)
	wantStr(t, res, "cls", "mid")
}

func TestForInLoops(t *testing.T) {
	res := run(t, `
		let total = 0;
		for x in [10, 20, 30] { total = total + x; }
		deliver("list", total);

		let ks = "";
		for k in {"b": 2, "a": 1} { ks = ks + k; }
		deliver("mapKeys", ks); // sorted: "ab"

		let chars = 0;
		for c in "abc" { chars = chars + 1; }
		deliver("str", chars);

		let nested = 0;
		for i in range(3) {
			for j in range(3) {
				if j == 2 { continue; }
				nested = nested + 1;
			}
		}
		deliver("nested", nested);

		let upTo = 0;
		for v in range(2, 5) { upTo = upTo + v; }
		deliver("rng2", upTo); // 2+3+4
	`, nil)
	wantInt(t, res, "list", 60)
	wantStr(t, res, "mapKeys", "ab")
	wantInt(t, res, "str", 3)
	wantInt(t, res, "nested", 6)
	wantInt(t, res, "rng2", 9)
}

func TestForLoopMutationSafe(t *testing.T) {
	// Pushing inside the loop must not extend the iteration (iter copies).
	res := run(t, `
		let l = [1, 2, 3];
		let seen = 0;
		for x in l { push(l, x); seen = seen + 1; }
		deliver("seen", seen);
		deliver("final", len(l));
	`, nil)
	wantInt(t, res, "seen", 3)
	wantInt(t, res, "final", 6)
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := run(t, `
		func fib(n) {
			if n < 2 { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		func apply_twice(x) { return double(double(x)); }
		func double(x) { return x * 2; }
		deliver("fib10", fib(10));
		deliver("quad", apply_twice(3));

		func noReturn() { let x = 1; }
		deliver("nil", noReturn());
	`, nil)
	wantInt(t, res, "fib10", 55)
	wantInt(t, res, "quad", 12)
	if !res["nil"].IsNil() {
		t.Fatalf("nil = %v", res["nil"])
	}
}

func TestGlobalsVisibleInFunctions(t *testing.T) {
	res := run(t, `
		let counter = 0;
		func bump() { counter = counter + 1; return counter; }
		bump(); bump();
		deliver("n", bump());
	`, nil)
	wantInt(t, res, "n", 3)
}

func TestShortCircuit(t *testing.T) {
	res := run(t, `
		let calls = 0;
		func side(v) { calls = calls + 1; return v; }
		let a = false && side(true);
		let b = true || side(true);
		deliver("calls", calls);
		deliver("and", side(true) && 42);
		deliver("or", nil || "fallback");
	`, nil)
	wantInt(t, res, "calls", 0) // both short-circuits skipped side()
	wantInt(t, res, "and", 42)
	wantStr(t, res, "or", "fallback")
}

func TestComparisons(t *testing.T) {
	res := run(t, `
		deliver("a", 1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3);
		deliver("b", "abc" < "abd");
		deliver("c", 1 == 1.0);
		deliver("d", [1, 2] == [1, 2]);
		deliver("e", {"k": 1} == {"k": 1});
		deliver("f", 1 != "1");
		deliver("g", !false);
	`, nil)
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		if !res[k].AsBool() {
			t.Errorf("%s = %v, want true", k, res[k])
		}
	}
}

func TestParamsAndScoping(t *testing.T) {
	params := map[string]mavm.Value{
		"from":   mavm.Str("bank-a"),
		"amount": mavm.Int(100),
	}
	res := run(t, `
		deliver("from", param("from"));
		deliver("missing", param("nope", "default"));
		deliver("nilMissing", param("nope"));
		let p = params();
		deliver("count", len(p));

		let x = 1;
		{
			let x = 2;
			deliver("inner", x);
		}
		deliver("outer", x);
	`, params)
	wantStr(t, res, "from", "bank-a")
	wantStr(t, res, "missing", "default")
	if !res["nilMissing"].IsNil() {
		t.Fatal("nilMissing not nil")
	}
	wantInt(t, res, "count", 2)
	wantInt(t, res, "inner", 2)
	wantInt(t, res, "outer", 1)
}

func TestServiceCalls(t *testing.T) {
	vm, host := startVM(t, `
		let r = service("bank.balance", "acct-1");
		deliver("balance", r["amount"]);
		log("checked " + str(r["amount"]));
	`, nil)
	host.services["bank.balance"] = func(args []mavm.Value) (mavm.Value, error) {
		if len(args) != 1 || args[0].AsStr() != "acct-1" {
			return mavm.Nil(), fmt.Errorf("bad args")
		}
		m := mavm.NewMap()
		m.MapEntries()["amount"] = mavm.Int(250)
		return m, nil
	}
	if _, err := vm.Run(host, mavm.DefaultFuel); err != nil {
		t.Fatal(err)
	}
	if vm.Results[0].Value.AsInt() != 250 {
		t.Fatalf("balance = %v", vm.Results[0].Value)
	}
	if len(host.logs) != 1 || host.logs[0] != "checked 250" {
		t.Fatalf("logs = %v", host.logs)
	}
}

func TestServiceFailureFailsAgent(t *testing.T) {
	vm, host := startVM(t, `service("ghost.service");`, nil)
	st, err := vm.Run(host, mavm.DefaultFuel)
	if st != mavm.StatusFailed || err == nil {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if !strings.Contains(err.Error(), "ghost.service") {
		t.Fatalf("err = %v", err)
	}
}

func TestSortAndTypeBuiltins(t *testing.T) {
	res := run(t, `
		deliver("nums", join(sort([3, 1, 2]), ","));
		deliver("strs", join(sort(["b", "a"]), ","));
		deliver("ty", type([]) + "," + type({}) + "," + type(1) + "," + type(1.5) + "," + type("s") + "," + type(nil) + "," + type(true));
		deliver("minmax", min(3, 1) + max(2, 5));
		deliver("abs", abs(-7));
	`, nil)
	wantStr(t, res, "nums", "1,2,3")
	wantStr(t, res, "strs", "a,b")
	wantStr(t, res, "ty", "list,map,int,float,str,nil,bool")
	wantInt(t, res, "minmax", 6)
	wantInt(t, res, "abs", 7)
}

func TestConversionBuiltins(t *testing.T) {
	res := run(t, `
		deliver("i", int("42") + int(3.9) + int(true));
		deliver("f", float("2.5") + float(1));
		deliver("s", str(12) + str(true) + str(nil));
	`, nil)
	wantInt(t, res, "i", 46)
	if res["f"].AsFloat() != 3.5 {
		t.Fatalf("f = %v", res["f"])
	}
	wantStr(t, res, "s", "12truenil")
}

func TestRuntimeErrorsHaveLines(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"div by zero", "let x = 1;\nlet y = 0;\nlet z = x / y;", ":3:"},
		{"bad index", `let l = [1];` + "\n" + `let v = l[5];`, ":2:"},
		{"type error", "let a = 1 + \"s\";", ":1:"},
		{"undefined svc arg", `let m = {}; let x = m[1];`, "map key"},
		{"int parse", `int("zebra");`, "zebra"},
		{"neg string", `-"s";`, "negate"},
		{"order mixed", `1 < "s";`, "order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vm, host := startVM(t, tc.src, nil)
			st, err := vm.Run(host, mavm.DefaultFuel)
			if st != mavm.StatusFailed || err == nil {
				t.Fatalf("st=%v err=%v, want failure", st, err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined var", "x = 1;", "undeclared"},
		{"undefined read", "let y = x;", "undefined"},
		{"undefined func", "nope();", "undefined function"},
		{"dup global", "let x = 1; let x = 2;", "duplicate global"},
		{"dup local scope", "func f() { let a = 1; let a = 2; } f();", "already declared"},
		{"dup func", "func f() {} func f() {}", "duplicate function"},
		{"builtin clash", "func len(x) {}", "conflicts with a builtin"},
		{"bad argc user", "func f(a, b) {} f(1);", "expects 2"},
		{"break outside", "break;", "break outside loop"},
		{"continue outside", "continue;", "continue outside"},
		{"nested func", "func f() { func g() {} }", "top level"},
		{"assign to call", "len(1) = 2;", "assignment target"},
		{"call non-ident", "(1)(2);", "named functions"},
		{"missing semi", "let x = 1", "expected"},
		{"unterminated block", "if true {", "unterminated"},
		{"bad string", `let s = "abc`, "unterminated string"},
		{"bad escape", `let s = "a\q";`, "unknown escape"},
		{"bad comment", "/* never closed", "unterminated block comment"},
		{"stray amp", "let x = 1 & 2;", "use '&&'"},
		{"var not func", "let v = 1; v();", "not a function"},
		{"dup param", "func f(a, a) {}", "duplicate parameter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("Compile(%q) succeeded", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestCompileErrorPositions(t *testing.T) {
	_, err := Compile("let a = 1;\nlet b = ;\n")
	if err == nil {
		t.Fatal("expected error")
	}
	ce, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ce.Line != 2 {
		t.Fatalf("line = %d, want 2", ce.Line)
	}
}

func TestComments(t *testing.T) {
	res := run(t, `
		// line comment
		let x = 1; // trailing
		/* block
		   comment */
		deliver("x", x /* inline */ + 1);
	`, nil)
	wantInt(t, res, "x", 2)
}

func TestMigrationAcrossHosts(t *testing.T) {
	prog, err := Compile(`
		let visited = [];
		for h in param("route") {
			migrate(h);
			push(visited, here());
		}
		migrate(home());
		deliver("visited", visited);
		deliver("hops", hops());
	`)
	if err != nil {
		t.Fatal(err)
	}
	route := mavm.NewList(mavm.Str("host-b"), mavm.Str("host-c"))
	vm, err := mavm.New(prog, "traveller", map[string]mavm.Value{"route": route})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the MAS transfer loop: run, snapshot, move, resume.
	current := "host-a"
	for i := 0; i < 10; i++ {
		st, err := vm.Run(newRunHost(current), mavm.DefaultFuel)
		if err != nil {
			t.Fatalf("run at %s: %v", current, err)
		}
		if st == mavm.StatusDone {
			break
		}
		if st != mavm.StatusMigrating {
			t.Fatalf("status %v", st)
		}
		target := vm.MigrateTarget()
		snap, err := mavm.MarshalState(vm)
		if err != nil {
			t.Fatal(err)
		}
		vm, err = mavm.UnmarshalState(prog, snap)
		if err != nil {
			t.Fatal(err)
		}
		vm.ClearMigration()
		current = target
	}
	if vm.Status() != mavm.StatusDone {
		t.Fatalf("final status %v", vm.Status())
	}
	res := map[string]mavm.Value{}
	for _, r := range vm.Results {
		res[r.Key] = r.Value
	}
	visited := res["visited"].ListItems()
	if len(visited) != 2 || visited[0].AsStr() != "host-b" || visited[1].AsStr() != "host-c" {
		t.Fatalf("visited = %v", res["visited"])
	}
	wantInt(t, res, "hops", 3) // b, c, home
}

// TestMigrateInsideFunction pins suspension with a multi-frame call
// stack: migrate() three frames deep must resume mid-call-chain at the
// destination with locals intact.
func TestMigrateInsideFunction(t *testing.T) {
	prog, err := Compile(`
		func hopAndTag(host, tag) {
			let local = tag + "-before";
			migrate(host);
			return local + "|" + here() + "|" + tag;
		}
		func outer(host) {
			return hopAndTag(host, "deep");
		}
		deliver("r", outer("host-b"));
	`)
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := mavm.New(prog, "fn-migrate", nil)
	st, err := vm.Run(newRunHost("host-a"), mavm.DefaultFuel)
	if err != nil || st != mavm.StatusMigrating {
		t.Fatalf("st=%v err=%v", st, err)
	}
	snap, err := mavm.MarshalState(vm)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := mavm.UnmarshalState(prog, snap)
	if err != nil {
		t.Fatal(err)
	}
	vm2.ClearMigration()
	if _, err := vm2.Run(newRunHost("host-b"), mavm.DefaultFuel); err != nil {
		t.Fatal(err)
	}
	if got := vm2.Results[0].Value.AsStr(); got != "deep-before|host-b|deep" {
		t.Fatalf("result = %q", got)
	}
}

// TestSnapshotResumeEquivalence is the core mobility property: running
// a program with arbitrary snapshot/resume interruptions produces
// exactly the results of an uninterrupted run.
func TestSnapshotResumeEquivalence(t *testing.T) {
	src := `
		func work(n) {
			let acc = 0;
			for i in range(n) {
				acc = acc + i * i % 7;
			}
			return acc;
		}
		let out = [];
		for round in range(6) {
			push(out, work(20 + round));
			if round % 2 == 0 {
				push(out, "mark" + str(round));
			}
		}
		deliver("out", join(out, "|"));
		deliver("steps", len(out));
	`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference run.
	ref, _ := mavm.New(prog, "ref", nil)
	if _, err := ref.Run(newRunHost("h"), mavm.DefaultFuel); err != nil {
		t.Fatal(err)
	}
	want := ref.Results[0].Value.AsStr()

	// Interrupted runs at several fuel slice sizes, snapshotting at
	// every pause.
	for _, slice := range []uint64{1, 3, 7, 50, 1000} {
		vm, _ := mavm.New(prog, "sliced", nil)
		host := newRunHost("h")
		for i := 0; ; i++ {
			if i > 1_000_000 {
				t.Fatalf("slice %d: did not terminate", slice)
			}
			st, err := vm.Run(host, slice)
			if st == mavm.StatusDone {
				break
			}
			if err != mavm.ErrOutOfFuel {
				t.Fatalf("slice %d: %v (%v)", slice, err, st)
			}
			snap, err := mavm.MarshalState(vm)
			if err != nil {
				t.Fatal(err)
			}
			vm, err = mavm.UnmarshalState(prog, snap)
			if err != nil {
				t.Fatal(err)
			}
		}
		got := vm.Results[0].Value.AsStr()
		if got != want {
			t.Fatalf("slice %d: result %q != reference %q", slice, got, want)
		}
	}
}

// TestAliasingSurvivesSnapshot pins the object-graph property of the
// snapshot codec: two variables referencing one list still alias after
// a snapshot/resume cycle.
func TestAliasingSurvivesSnapshot(t *testing.T) {
	src := `
		let a = [1];
		let b = a;           // alias
		let cyc = [];
		push(cyc, cyc);      // self-referential
		migrate("elsewhere");
		push(a, 2);
		deliver("bLen", len(b));       // must see the push through a
		deliver("cycOK", len(cyc[0]) == len(cyc));
	`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := mavm.New(prog, "alias", nil)
	st, err := vm.Run(newRunHost("h1"), mavm.DefaultFuel)
	if err != nil || st != mavm.StatusMigrating {
		t.Fatalf("st=%v err=%v", st, err)
	}
	snap, err := mavm.MarshalState(vm)
	if err != nil {
		t.Fatalf("MarshalState with cycle: %v", err)
	}
	vm2, err := mavm.UnmarshalState(prog, snap)
	if err != nil {
		t.Fatalf("UnmarshalState: %v", err)
	}
	vm2.ClearMigration()
	if _, err := vm2.Run(newRunHost("h2"), mavm.DefaultFuel); err != nil {
		t.Fatal(err)
	}
	res := map[string]mavm.Value{}
	for _, r := range vm2.Results {
		res[r.Key] = r.Value
	}
	wantInt(t, res, "bLen", 2)
	if !res["cycOK"].AsBool() {
		t.Fatal("cycle broken by snapshot")
	}
}

func TestProgramSourceRetained(t *testing.T) {
	src := `deliver("x", 1);`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Source != src {
		t.Fatalf("Source = %q", prog.Source)
	}
	if prog.Digest() == "" {
		t.Fatal("empty digest")
	}
}

func TestDeepRecursionFailsCleanly(t *testing.T) {
	vm, host := startVM(t, `
		func f(n) { return f(n + 1); }
		f(0);
	`, nil)
	st, err := vm.Run(host, mavm.DefaultFuel)
	if st != mavm.StatusFailed || err == nil || !strings.Contains(err.Error(), "call stack overflow") {
		t.Fatalf("st=%v err=%v", st, err)
	}
}

func TestEmptyProgram(t *testing.T) {
	res := run(t, "", nil)
	if len(res) != 0 {
		t.Fatalf("results = %v", res)
	}
}

func TestReturnAtTopLevelEndsProgram(t *testing.T) {
	res := run(t, `
		deliver("before", 1);
		return;
		deliver("after", 2);
	`, nil)
	if _, ok := res["after"]; ok {
		t.Fatal("statement after top-level return executed")
	}
	wantInt(t, res, "before", 1)
}

package mascript

import (
	"math/rand"
	"testing"
)

// corpus is a set of valid programs whose mutations must never panic
// the front end.
var corpus = []string{
	`let x = 1; deliver("x", x);`,
	`func f(a, b) { return a + b; } deliver("s", f(1, 2));`,
	`for i in range(10) { if i % 2 == 0 { continue; } }`,
	`let m = {"k": [1, 2.5, "s", nil, true]}; m["k"][0] = 9;`,
	`while true { break; }`,
	`let s = "esc \n \t \" \\ done"; log(s);`,
	`migrate("host"); deliver("r", service("svc", 1, 2));`,
}

// TestMutatedSourceNeverPanics drives the lexer/parser/compiler with
// thousands of randomly mutated programs: every outcome must be a
// clean (program, nil) or (nil, error) — never a panic.
func TestMutatedSourceNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	mutations := []func([]byte) []byte{
		func(b []byte) []byte { // flip a byte
			if len(b) == 0 {
				return b
			}
			b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
			return b
		},
		func(b []byte) []byte { // delete a span
			if len(b) < 2 {
				return b
			}
			i := r.Intn(len(b) - 1)
			j := i + 1 + r.Intn(len(b)-i-1)
			return append(b[:i], b[j:]...)
		},
		func(b []byte) []byte { // duplicate a span
			if len(b) < 2 {
				return b
			}
			i := r.Intn(len(b) - 1)
			j := i + 1 + r.Intn(len(b)-i-1)
			out := append([]byte{}, b[:j]...)
			out = append(out, b[i:j]...)
			return append(out, b[j:]...)
		},
		func(b []byte) []byte { // insert random punctuation
			punct := []byte(`{}[]();"=<>&|!+-*/%`)
			i := r.Intn(len(b) + 1)
			out := append([]byte{}, b[:i]...)
			out = append(out, punct[r.Intn(len(punct))])
			return append(out, b[i:]...)
		},
	}
	for iter := 0; iter < 3000; iter++ {
		src := []byte(corpus[r.Intn(len(corpus))])
		for m := 0; m <= r.Intn(3); m++ {
			src = mutations[r.Intn(len(mutations))](src)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on mutated source %q: %v", src, p)
				}
			}()
			prog, err := Compile(string(src))
			if err == nil && prog == nil {
				t.Fatalf("nil program with nil error for %q", src)
			}
		}()
	}
}

// TestValidCorpusCompilesAndValidates pins that the corpus itself is
// healthy and produces structurally valid programs.
func TestValidCorpusCompilesAndValidates(t *testing.T) {
	for _, src := range corpus {
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("corpus program failed: %v\n%s", err, src)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("compiled program invalid: %v\n%s", err, src)
		}
	}
}

func BenchmarkCompileEBankingSized(b *testing.B) {
	// A program of the paper's typical MA code size.
	src := corpus[1] + corpus[2] + corpus[3] + `
		let receipts = [];
		for bank in param("banks") {
			migrate(bank);
			for t in param("transactions") {
				let r2 = service("bank.transfer", t["from"], t["to"], t["amount"]);
				if r2["ok"] { push(receipts, r2["txid"]); }
			}
		}
		migrate(home());
		deliver("receipts", receipts);
	`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

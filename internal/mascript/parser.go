package mascript

import "strconv"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks  []Token
	pos   int
	depth int
}

// maxParseDepth bounds statement/expression nesting so hostile input
// (fuzzers, user code) cannot overflow the Go stack.
const maxParseDepth = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		c := p.cur()
		return errAt(c.Line, c.Col, "nesting exceeds %d levels", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// Parse parses MAScript source into an AST.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF) {
		if p.at(tokFunc) {
			fd, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fd)
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

func (p *parser) cur() Token          { return p.toks[p.pos] }
func (p *parser) at(t TokenType) bool { return p.cur().Type == t }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Type != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(t TokenType) (Token, error) {
	if !p.at(t) {
		c := p.cur()
		return Token{}, errAt(c.Line, c.Col, "expected %v, found %v", t, c.Type)
	}
	return p.advance(), nil
}

func (p *parser) posOf(t Token) pos { return pos{line: t.Line, col: t.Col} }

// --- declarations and statements --------------------------------------

func (p *parser) funcDecl() (*FuncDecl, error) {
	kw := p.advance() // 'func'
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var params []string
	seen := map[string]bool{}
	for !p.at(tokRParen) {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if seen[id.Text] {
			return nil, errAt(id.Line, id.Col, "duplicate parameter %q", id.Text)
		}
		seen[id.Text] = true
		params = append(params, id.Text)
		if !p.at(tokComma) {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{pos: p.posOf(kw), Name: name.Text, Params: params, Body: body}, nil
}

func (p *parser) block() (*Block, error) {
	open, err := p.expect(tokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{pos: p.posOf(open)}
	for !p.at(tokRBrace) {
		if p.at(tokEOF) {
			return nil, errAt(open.Line, open.Col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // '}'
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.cur().Type {
	case tokLet:
		return p.letStmt()
	case tokIf:
		return p.ifStmt()
	case tokWhile:
		return p.whileStmt()
	case tokFor:
		return p.forStmt()
	case tokReturn:
		return p.returnStmt()
	case tokBreak:
		t := p.advance()
		if _, err := p.expect(tokSemicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{pos: p.posOf(t)}, nil
	case tokContinue:
		t := p.advance()
		if _, err := p.expect(tokSemicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{pos: p.posOf(t)}, nil
	case tokLBrace:
		return p.block()
	case tokFunc:
		c := p.cur()
		return nil, errAt(c.Line, c.Col, "functions may only be declared at top level")
	default:
		return p.exprOrAssign()
	}
}

func (p *parser) letStmt() (Stmt, error) {
	kw := p.advance()
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return nil, err
	}
	return &LetStmt{pos: p.posOf(kw), Name: name.Text, Init: init}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	kw := p.advance()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{pos: p.posOf(kw), Cond: cond, Then: then}
	if p.at(tokElse) {
		p.advance()
		if p.at(tokIf) {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	kw := p.advance()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{pos: p.posOf(kw), Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	kw := p.advance()
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIn); err != nil {
		return nil, err
	}
	seq, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForStmt{pos: p.posOf(kw), Var: name.Text, Seq: seq, Body: body}, nil
}

func (p *parser) returnStmt() (Stmt, error) {
	kw := p.advance()
	st := &ReturnStmt{pos: p.posOf(kw)}
	if !p.at(tokSemicolon) {
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Value = v
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) exprOrAssign() (Stmt, error) {
	start := p.cur()
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.at(tokAssign) {
		eq := p.advance()
		switch x.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, errAt(eq.Line, eq.Col, "invalid assignment target")
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemicolon); err != nil {
			return nil, err
		}
		return &AssignStmt{pos: p.posOf(start), Target: x, Value: v}, nil
	}
	if _, err := p.expect(tokSemicolon); err != nil {
		return nil, err
	}
	return &ExprStmt{pos: p.posOf(start), X: x}, nil
}

// --- expressions (precedence climbing) ---------------------------------

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokOrOr) {
		op := p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: p.posOf(op), Op: tokOrOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.eqExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokAndAnd) {
		op := p.advance()
		r, err := p.eqExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: p.posOf(op), Op: tokAndAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) eqExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokEq) || p.at(tokNe) {
		op := p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: p.posOf(op), Op: op.Type, L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokLt) || p.at(tokLe) || p.at(tokGt) || p.at(tokGe) {
		op := p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: p.posOf(op), Op: op.Type, L: l, R: r}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		op := p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: p.posOf(op), Op: op.Type, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) || p.at(tokSlash) || p.at(tokPercent) {
		op := p.advance()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{pos: p.posOf(op), Op: op.Type, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if p.at(tokBang) || p.at(tokMinus) {
		op := p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{pos: p.posOf(op), Op: op.Type, X: x}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokLBracket):
			open := p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			x = &IndexExpr{pos: p.posOf(open), X: x, Index: idx}
		case p.at(tokLParen):
			id, ok := x.(*Ident)
			if !ok {
				c := p.cur()
				return nil, errAt(c.Line, c.Col, "only named functions can be called")
			}
			p.advance() // '('
			var args []Expr
			for !p.at(tokRParen) {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.at(tokComma) {
					break
				}
				p.advance()
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			x = &CallExpr{pos: pos{id.line, id.col}, Name: id.Name, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Type {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "integer %q out of range", t.Text)
		}
		return &IntLit{pos: p.posOf(t), Value: v}, nil
	case tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errAt(t.Line, t.Col, "bad float %q", t.Text)
		}
		return &FloatLit{pos: p.posOf(t), Value: v}, nil
	case tokStr:
		p.advance()
		return &StrLit{pos: p.posOf(t), Value: t.Text}, nil
	case tokTrue:
		p.advance()
		return &BoolLit{pos: p.posOf(t), Value: true}, nil
	case tokFalse:
		p.advance()
		return &BoolLit{pos: p.posOf(t), Value: false}, nil
	case tokNil:
		p.advance()
		return &NilLit{pos: p.posOf(t)}, nil
	case tokIdent:
		p.advance()
		return &Ident{pos: p.posOf(t), Name: t.Text}, nil
	case tokLParen:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tokLBracket:
		p.advance()
		lit := &ListLit{pos: p.posOf(t)}
		for !p.at(tokRBracket) {
			item, err := p.expr()
			if err != nil {
				return nil, err
			}
			lit.Items = append(lit.Items, item)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return lit, nil
	case tokLBrace:
		p.advance()
		lit := &MapLit{pos: p.posOf(t)}
		for !p.at(tokRBrace) {
			k, err := p.expect(tokStr)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon); err != nil {
				return nil, err
			}
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			lit.Keys = append(lit.Keys, k.Text)
			lit.Values = append(lit.Values, v)
			if !p.at(tokComma) {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return lit, nil
	default:
		return nil, errAt(t.Line, t.Col, "unexpected %v in expression", t.Type)
	}
}

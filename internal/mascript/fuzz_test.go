package mascript

import "testing"

// FuzzCompile throws arbitrary source at the MAScript front end
// (lexer, parser, compiler): every input must produce a clean
// (program, nil) or (nil, error) — no panics, no hangs, no stack
// overflow from pathological nesting.
func FuzzCompile(f *testing.F) {
	for _, s := range corpus {
		f.Add(s)
	}
	f.Add(`((((((((1))))))))`)
	f.Add(`if 1 { } else if 2 { } else if 3 { } else { }`)
	f.Add(`let l = [[[{"k": [1]}]]]; l[0][0]["k"] = -  - !true;`)
	f.Add("let s = \"unterminated")
	f.Add(`func f() { return f(); } f();`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // keep single fuzz executions fast
		}
		prog, err := Compile(src)
		if (prog == nil) == (err == nil) {
			t.Fatalf("Compile(%q) = (%v, %v): want exactly one of program/error", src, prog, err)
		}
	})
}

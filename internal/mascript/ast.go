package mascript

// AST node definitions. Every node records the source line of its
// leading token so the compiler can attach positions to bytecode.

// Node is the common interface of statements and expressions.
type Node interface {
	Pos() (line, col int)
}

type pos struct{ line, col int }

func (p pos) Pos() (int, int) { return p.line, p.col }

// --- Statements -------------------------------------------------------

// Program is a parsed compilation unit.
type Program struct {
	Funcs []*FuncDecl
	Stmts []Stmt // top-level statements, in order
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// FuncDecl is a top-level function declaration.
type FuncDecl struct {
	pos
	Name   string
	Params []string
	Body   *Block
}

// Block is a braced statement list with its own lexical scope.
type Block struct {
	pos
	Stmts []Stmt
}

// LetStmt declares and initialises a variable.
type LetStmt struct {
	pos
	Name string
	Init Expr
}

// AssignStmt assigns to a variable or an index expression.
type AssignStmt struct {
	pos
	// Target is either *Ident or *IndexExpr.
	Target Expr
	Value  Expr
}

// IfStmt is if/else; Else may be nil, a *Block, or another *IfStmt.
type IfStmt struct {
	pos
	Cond Expr
	Then *Block
	Else Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	pos
	Cond Expr
	Body *Block
}

// ForStmt is for-in over a list, map (keys) or string.
type ForStmt struct {
	pos
	Var  string
	Seq  Expr
	Body *Block
}

// ReturnStmt returns from the enclosing function (nil Value = nil).
type ReturnStmt struct {
	pos
	Value Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ pos }

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct {
	pos
	X Expr
}

func (*Block) stmtNode()        {}
func (*LetStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// --- Expressions ------------------------------------------------------

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	pos
	Value float64
}

// StrLit is a string literal (already unescaped).
type StrLit struct {
	pos
	Value string
}

// BoolLit is true/false.
type BoolLit struct {
	pos
	Value bool
}

// NilLit is nil.
type NilLit struct{ pos }

// Ident is a variable reference.
type Ident struct {
	pos
	Name string
}

// ListLit is [a, b, c].
type ListLit struct {
	pos
	Items []Expr
}

// MapLit is {"k": v, ...}.
type MapLit struct {
	pos
	Keys   []string
	Values []Expr
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	pos
	Op TokenType // tokBang or tokMinus
	X  Expr
}

// BinaryExpr is a binary operation including && and ||.
type BinaryExpr struct {
	pos
	Op   TokenType
	L, R Expr
}

// CallExpr is name(args...); Name resolves to a user function or a
// builtin at compile time.
type CallExpr struct {
	pos
	Name string
	Args []Expr
}

// IndexExpr is container[index].
type IndexExpr struct {
	pos
	X     Expr
	Index Expr
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StrLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*NilLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*ListLit) exprNode()    {}
func (*MapLit) exprNode()     {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}

package mascript

import (
	"strings"
)

// lexer scans MAScript source into tokens.
type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) eof() bool { return l.pos >= len(l.src) }

func (l *lexer) peek() byte { return l.src[l.pos] }

func (l *lexer) peek2() byte {
	if l.pos+1 < len(l.src) {
		return l.src[l.pos+1]
	}
	return 0
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace, // line comments and
// /* block */ comments.
func (l *lexer) skipSpaceAndComments() error {
	for !l.eof() {
		switch c := l.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for !l.eof() && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for !l.eof() {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errAt(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.eof() {
		return Token{Type: tokEOF, Line: line, Col: col}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for !l.eof() && isIdentChar(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if kw, ok := keywords[text]; ok {
			return Token{Type: kw, Text: text, Line: line, Col: col}, nil
		}
		return Token{Type: tokIdent, Text: text, Line: line, Col: col}, nil

	case isDigit(c):
		start := l.pos
		isFloat := false
		for !l.eof() && isDigit(l.peek()) {
			l.advance()
		}
		if !l.eof() && l.peek() == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			isFloat = true
			l.advance()
			for !l.eof() && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.pos]
		if isFloat {
			return Token{Type: tokFloat, Text: text, Line: line, Col: col}, nil
		}
		return Token{Type: tokInt, Text: text, Line: line, Col: col}, nil

	case c == '"':
		return l.lexString(line, col)
	}

	l.advance()
	simple := func(t TokenType) (Token, error) {
		return Token{Type: t, Text: l.src[l.pos-1 : l.pos], Line: line, Col: col}, nil
	}
	pair := func(second byte, both, single TokenType) (Token, error) {
		if !l.eof() && l.peek() == second {
			l.advance()
			return Token{Type: both, Line: line, Col: col}, nil
		}
		return Token{Type: single, Line: line, Col: col}, nil
	}
	switch c {
	case '(':
		return simple(tokLParen)
	case ')':
		return simple(tokRParen)
	case '{':
		return simple(tokLBrace)
	case '}':
		return simple(tokRBrace)
	case '[':
		return simple(tokLBracket)
	case ']':
		return simple(tokRBracket)
	case ',':
		return simple(tokComma)
	case ';':
		return simple(tokSemicolon)
	case ':':
		return simple(tokColon)
	case '+':
		return simple(tokPlus)
	case '-':
		return simple(tokMinus)
	case '*':
		return simple(tokStar)
	case '/':
		return simple(tokSlash)
	case '%':
		return simple(tokPercent)
	case '=':
		return pair('=', tokEq, tokAssign)
	case '!':
		return pair('=', tokNe, tokBang)
	case '<':
		return pair('=', tokLe, tokLt)
	case '>':
		return pair('=', tokGe, tokGt)
	case '&':
		if !l.eof() && l.peek() == '&' {
			l.advance()
			return Token{Type: tokAndAnd, Line: line, Col: col}, nil
		}
		return Token{}, errAt(line, col, "unexpected '&' (use '&&')")
	case '|':
		if !l.eof() && l.peek() == '|' {
			l.advance()
			return Token{Type: tokOrOr, Line: line, Col: col}, nil
		}
		return Token{}, errAt(line, col, "unexpected '|' (use '||')")
	default:
		return Token{}, errAt(line, col, "unexpected character %q", string(c))
	}
}

func (l *lexer) lexString(line, col int) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.eof() {
			return Token{}, errAt(line, col, "unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			return Token{Type: tokStr, Text: b.String(), Line: line, Col: col}, nil
		case '\n':
			return Token{}, errAt(line, col, "newline in string literal")
		case '\\':
			if l.eof() {
				return Token{}, errAt(line, col, "unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				return Token{}, errAt(l.line, l.col, "unknown escape \\%s", string(e))
			}
		default:
			b.WriteByte(c)
		}
	}
}

// lexAll tokenises an entire source string (the EOF token included).
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == tokEOF {
			return out, nil
		}
	}
}

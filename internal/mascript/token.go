// Package mascript is the mobile-agent scripting language of this
// PDAgent reproduction: the "MA code" that a handheld downloads at
// subscription time, parameterises, and ships inside the Packed
// Information. Gateways compile MAScript source to internal/mavm
// bytecode, which any mobile-agent server flavour can execute — the
// paper's "standard MA code format ... understood and interpreted by
// gateways and different MA servers".
//
// The language is a small imperative scripting language:
//
//	// visit every bank in the itinerary
//	let banks = param("banks");
//	let done = [];
//	for b in banks {
//	    migrate(b);
//	    let r = service("bank.transfer", param("from"), param("to"), param("amount"));
//	    push(done, r);
//	}
//	migrate(home());
//	deliver("transactions", done);
//
// Types: nil, bool, int, float, str, list, map. Control flow: if/else,
// while, for-in, functions, break/continue/return. Builtins are listed
// by mavm.BuiltinNames; the mobility primitives are migrate(host),
// home(), here(), service(name, ...), deliver(key, value), log(msg).
package mascript

import "fmt"

// TokenType identifies a lexical token class.
type TokenType int

// Token types.
const (
	tokEOF TokenType = iota
	tokIdent
	tokInt
	tokFloat
	tokStr

	// Keywords.
	tokLet
	tokFunc
	tokIf
	tokElse
	tokWhile
	tokFor
	tokIn
	tokReturn
	tokBreak
	tokContinue
	tokTrue
	tokFalse
	tokNil

	// Punctuation and operators.
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokSemicolon
	tokColon
	tokAssign
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokBang
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
	tokAndAnd
	tokOrOr
)

var tokenNames = map[TokenType]string{
	tokEOF: "end of input", tokIdent: "identifier", tokInt: "int literal",
	tokFloat: "float literal", tokStr: "string literal",
	tokLet: "'let'", tokFunc: "'func'", tokIf: "'if'", tokElse: "'else'",
	tokWhile: "'while'", tokFor: "'for'", tokIn: "'in'", tokReturn: "'return'",
	tokBreak: "'break'", tokContinue: "'continue'", tokTrue: "'true'",
	tokFalse: "'false'", tokNil: "'nil'",
	tokLParen: "'('", tokRParen: "')'", tokLBrace: "'{'", tokRBrace: "'}'",
	tokLBracket: "'['", tokRBracket: "']'", tokComma: "','",
	tokSemicolon: "';'", tokColon: "':'", tokAssign: "'='",
	tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'", tokSlash: "'/'",
	tokPercent: "'%'", tokBang: "'!'", tokEq: "'=='", tokNe: "'!='",
	tokLt: "'<'", tokLe: "'<='", tokGt: "'>'", tokGe: "'>='",
	tokAndAnd: "'&&'", tokOrOr: "'||'",
}

func (t TokenType) String() string {
	if s, ok := tokenNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TokenType(%d)", int(t))
}

var keywords = map[string]TokenType{
	"let": tokLet, "func": tokFunc, "if": tokIf, "else": tokElse,
	"while": tokWhile, "for": tokFor, "in": tokIn, "return": tokReturn,
	"break": tokBreak, "continue": tokContinue,
	"true": tokTrue, "false": tokFalse, "nil": tokNil,
}

// Token is one lexical token with source position.
type Token struct {
	Type      TokenType
	Text      string // literal text (identifier name, decoded string, digits)
	Line, Col int
}

// Error is a compile-time (lex/parse/resolve) error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("mascript: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

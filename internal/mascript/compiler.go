package mascript

import (
	"encoding/binary"
	"fmt"
	"math"

	"pdagent/internal/mavm"
)

// CompileEntry is the compiler entry point the compiled-program cache
// (internal/progcache) drives. It exists as a variable so tests can
// poison it and prove that a cache-hit dispatch performs zero lexer or
// parser work; production code never reassigns it.
var CompileEntry func(src string) (*mavm.Program, error) = Compile

// Compile parses and compiles MAScript source into an executable
// mavm.Program. The original source is retained in Program.Source.
func Compile(src string) (*mavm.Program, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		prog:      &mavm.Program{Source: src},
		constIdx:  make(map[string]int),
		funcIdx:   make(map[string]int),
		globalIdx: make(map[string]int),
	}
	return c.compile(ast)
}

// compiler holds program-wide compilation state.
type compiler struct {
	prog      *mavm.Program
	constIdx  map[string]int // dedup key -> pool index
	funcIdx   map[string]int // function name -> Functions index
	globalIdx map[string]int // global name -> slot
	funcDecls []*FuncDecl
}

func (c *compiler) compile(ast *Program) (*mavm.Program, error) {
	// Pass 1: function table (entry 0 is main) and global slots, so
	// bodies can reference functions and globals declared later.
	main := &mavm.Function{Name: "main"}
	c.prog.Functions = append(c.prog.Functions, main)
	for _, fd := range ast.Funcs {
		if _, dup := c.funcIdx[fd.Name]; dup {
			return nil, errAt(fd.line, fd.col, "duplicate function %q", fd.Name)
		}
		if _, isBuiltin := mavm.BuiltinIndex(fd.Name); isBuiltin {
			return nil, errAt(fd.line, fd.col, "function %q conflicts with a builtin", fd.Name)
		}
		c.funcIdx[fd.Name] = len(c.prog.Functions)
		c.prog.Functions = append(c.prog.Functions, &mavm.Function{
			Name:      fd.Name,
			NumParams: len(fd.Params),
		})
		c.funcDecls = append(c.funcDecls, fd)
	}
	for _, s := range ast.Stmts {
		if let, ok := s.(*LetStmt); ok {
			if _, dup := c.globalIdx[let.Name]; dup {
				return nil, errAt(let.line, let.col, "duplicate global %q", let.Name)
			}
			c.globalIdx[let.Name] = len(c.prog.Globals)
			c.prog.Globals = append(c.prog.Globals, let.Name)
		}
	}
	if len(c.prog.Globals) > math.MaxUint16 {
		return nil, fmt.Errorf("mascript: too many globals (%d)", len(c.prog.Globals))
	}

	// Pass 2: compile bodies.
	fc := newFuncCompiler(c, main, nil)
	for _, s := range ast.Stmts {
		if err := fc.stmt(s, true); err != nil {
			return nil, err
		}
	}
	fc.emit(0, mavm.OpHalt)
	fc.finish()

	for i, fd := range c.funcDecls {
		fn := c.prog.Functions[i+1]
		fc := newFuncCompiler(c, fn, fd.Params)
		for _, s := range fd.Body.Stmts {
			if err := fc.stmt(s, false); err != nil {
				return nil, err
			}
		}
		// Implicit return nil on fall-through.
		fc.emit(0, mavm.OpNil)
		fc.emit(0, mavm.OpReturn)
		fc.finish()
	}

	if err := c.prog.Validate(); err != nil {
		return nil, fmt.Errorf("mascript: internal error: compiled program invalid: %w", err)
	}
	return c.prog, nil
}

// constant interns a scalar in the pool.
func (c *compiler) constant(v mavm.Value) (int, error) {
	key := v.Kind().String() + "\x00" + v.String()
	if idx, ok := c.constIdx[key]; ok {
		return idx, nil
	}
	if len(c.prog.Constants) >= math.MaxUint16 {
		return 0, fmt.Errorf("mascript: constant pool overflow")
	}
	idx := len(c.prog.Constants)
	c.prog.Constants = append(c.prog.Constants, v)
	c.constIdx[key] = idx
	return idx, nil
}

// funcCompiler compiles one function body.
type funcCompiler struct {
	c  *compiler
	fn *mavm.Function
	// scopes maps names to local slots, innermost last.
	scopes   []map[string]int
	nextSlot int
	maxSlot  int
	loops    []*loopCtx
	hidden   int // counter for synthesised loop variables
}

type loopCtx struct {
	breakPatches    []int
	continuePatches []int
}

func newFuncCompiler(c *compiler, fn *mavm.Function, params []string) *funcCompiler {
	fc := &funcCompiler{c: c, fn: fn}
	fc.pushScope()
	for _, p := range params {
		fc.declareLocal(p)
	}
	return fc
}

func (fc *funcCompiler) pushScope() { fc.scopes = append(fc.scopes, map[string]int{}) }
func (fc *funcCompiler) popScope()  { fc.scopes = fc.scopes[:len(fc.scopes)-1] }

func (fc *funcCompiler) declareLocal(name string) int {
	slot := fc.nextSlot
	fc.nextSlot++
	if fc.nextSlot > fc.maxSlot {
		fc.maxSlot = fc.nextSlot
	}
	fc.scopes[len(fc.scopes)-1][name] = slot
	return slot
}

// resolveLocal returns the slot for name if locally bound.
func (fc *funcCompiler) resolveLocal(name string) (int, bool) {
	for i := len(fc.scopes) - 1; i >= 0; i-- {
		if slot, ok := fc.scopes[i][name]; ok {
			return slot, true
		}
	}
	return 0, false
}

func (fc *funcCompiler) finish() {
	fc.fn.NumLocals = fc.maxSlot
}

// emit appends an op with operands, recording the source line.
func (fc *funcCompiler) emit(line int, op mavm.Op, operands ...int) int {
	at := len(fc.fn.Code)
	fc.fn.Code = append(fc.fn.Code, byte(op))
	for len(fc.fn.Lines) < len(fc.fn.Code) {
		fc.fn.Lines = append(fc.fn.Lines, 0)
	}
	fc.fn.Lines[at] = int32(line)
	switch op {
	case mavm.OpConst, mavm.OpLoadGlobal, mavm.OpStoreGlobal,
		mavm.OpLoadLocal, mavm.OpStoreLocal, mavm.OpMakeList, mavm.OpMakeMap:
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], uint16(operands[0]))
		fc.fn.Code = append(fc.fn.Code, b[:]...)
	case mavm.OpJump, mavm.OpJumpIfFalse, mavm.OpJumpIfTrue:
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(operands[0]))
		fc.fn.Code = append(fc.fn.Code, b[:]...)
	case mavm.OpCall, mavm.OpCallBuiltin:
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], uint16(operands[0]))
		fc.fn.Code = append(fc.fn.Code, b[:]...)
		fc.fn.Code = append(fc.fn.Code, byte(operands[1]))
	}
	for len(fc.fn.Lines) < len(fc.fn.Code) {
		fc.fn.Lines = append(fc.fn.Lines, 0)
	}
	return at
}

// emitJump emits a jump with a placeholder target, returning the patch
// position.
func (fc *funcCompiler) emitJump(line int, op mavm.Op) int {
	at := fc.emit(line, op, 0)
	return at
}

// patch sets the jump at patchPos to target the current code end (or an
// explicit position).
func (fc *funcCompiler) patchTo(patchPos, target int) {
	binary.BigEndian.PutUint32(fc.fn.Code[patchPos+1:], uint32(target))
}

func (fc *funcCompiler) patchHere(patchPos int) {
	fc.patchTo(patchPos, len(fc.fn.Code))
}

// --- statements --------------------------------------------------------

// stmt compiles one statement. topLevel is true only for statements
// directly in the program body (where let declares a global).
func (fc *funcCompiler) stmt(s Stmt, topLevel bool) error {
	switch st := s.(type) {
	case *LetStmt:
		if err := fc.expr(st.Init); err != nil {
			return err
		}
		if topLevel {
			slot := fc.c.globalIdx[st.Name] // registered in pass 1
			fc.emit(st.line, mavm.OpStoreGlobal, slot)
			return nil
		}
		if _, exists := fc.scopes[len(fc.scopes)-1][st.Name]; exists {
			return errAt(st.line, st.col, "variable %q already declared in this scope", st.Name)
		}
		slot := fc.declareLocal(st.Name)
		fc.emit(st.line, mavm.OpStoreLocal, slot)
		return nil

	case *AssignStmt:
		return fc.assign(st)

	case *ExprStmt:
		if err := fc.expr(st.X); err != nil {
			return err
		}
		fc.emit(st.line, mavm.OpPop)
		return nil

	case *Block:
		fc.pushScope()
		defer fc.popScope()
		for _, inner := range st.Stmts {
			if err := fc.stmt(inner, false); err != nil {
				return err
			}
		}
		return nil

	case *IfStmt:
		if err := fc.expr(st.Cond); err != nil {
			return err
		}
		elseJump := fc.emitJump(st.line, mavm.OpJumpIfFalse)
		if err := fc.stmt(st.Then, false); err != nil {
			return err
		}
		if st.Else == nil {
			fc.patchHere(elseJump)
			return nil
		}
		endJump := fc.emitJump(st.line, mavm.OpJump)
		fc.patchHere(elseJump)
		if err := fc.stmt(st.Else, false); err != nil {
			return err
		}
		fc.patchHere(endJump)
		return nil

	case *WhileStmt:
		condPos := len(fc.fn.Code)
		if err := fc.expr(st.Cond); err != nil {
			return err
		}
		exitJump := fc.emitJump(st.line, mavm.OpJumpIfFalse)
		fc.loops = append(fc.loops, &loopCtx{})
		if err := fc.stmt(st.Body, false); err != nil {
			return err
		}
		loop := fc.loops[len(fc.loops)-1]
		fc.loops = fc.loops[:len(fc.loops)-1]
		for _, p := range loop.continuePatches {
			fc.patchTo(p, condPos)
		}
		fc.emit(st.line, mavm.OpJump, condPos)
		fc.patchHere(exitJump)
		for _, p := range loop.breakPatches {
			fc.patchHere(p)
		}
		return nil

	case *ForStmt:
		return fc.forStmt(st)

	case *ReturnStmt:
		if st.Value != nil {
			if err := fc.expr(st.Value); err != nil {
				return err
			}
		} else {
			fc.emit(st.line, mavm.OpNil)
		}
		fc.emit(st.line, mavm.OpReturn)
		return nil

	case *BreakStmt:
		if len(fc.loops) == 0 {
			return errAt(st.line, st.col, "break outside loop")
		}
		p := fc.emitJump(st.line, mavm.OpJump)
		loop := fc.loops[len(fc.loops)-1]
		loop.breakPatches = append(loop.breakPatches, p)
		return nil

	case *ContinueStmt:
		if len(fc.loops) == 0 {
			return errAt(st.line, st.col, "continue outside loop")
		}
		p := fc.emitJump(st.line, mavm.OpJump)
		loop := fc.loops[len(fc.loops)-1]
		loop.continuePatches = append(loop.continuePatches, p)
		return nil

	default:
		line, col := s.Pos()
		return errAt(line, col, "unhandled statement %T", s)
	}
}

// forStmt compiles `for x in seq { body }` into an index loop over
// iter(seq) using hidden locals, so no iterator state ever exists
// outside plain VM values (which keeps snapshots simple).
func (fc *funcCompiler) forStmt(st *ForStmt) error {
	iterIdx, ok := mavm.BuiltinIndex("iter")
	if !ok {
		return fmt.Errorf("mascript: internal error: iter builtin missing")
	}
	lenIdx, _ := mavm.BuiltinIndex("len")

	fc.pushScope()
	defer fc.popScope()
	fc.hidden++
	seqSlot := fc.declareLocal(fmt.Sprintf("#seq%d", fc.hidden))
	idxSlot := fc.declareLocal(fmt.Sprintf("#idx%d", fc.hidden))
	varSlot := fc.declareLocal(st.Var)

	// #seq = iter(seq); #idx = 0
	if err := fc.expr(st.Seq); err != nil {
		return err
	}
	fc.emit(st.line, mavm.OpCallBuiltin, iterIdx, 1)
	fc.emit(st.line, mavm.OpStoreLocal, seqSlot)
	zero, err := fc.c.constant(mavm.Int(0))
	if err != nil {
		return err
	}
	fc.emit(st.line, mavm.OpConst, zero)
	fc.emit(st.line, mavm.OpStoreLocal, idxSlot)

	// while #idx < len(#seq)
	condPos := len(fc.fn.Code)
	fc.emit(st.line, mavm.OpLoadLocal, idxSlot)
	fc.emit(st.line, mavm.OpLoadLocal, seqSlot)
	fc.emit(st.line, mavm.OpCallBuiltin, lenIdx, 1)
	fc.emit(st.line, mavm.OpLt)
	exitJump := fc.emitJump(st.line, mavm.OpJumpIfFalse)

	// x = #seq[#idx]
	fc.emit(st.line, mavm.OpLoadLocal, seqSlot)
	fc.emit(st.line, mavm.OpLoadLocal, idxSlot)
	fc.emit(st.line, mavm.OpIndex)
	fc.emit(st.line, mavm.OpStoreLocal, varSlot)

	fc.loops = append(fc.loops, &loopCtx{})
	if err := fc.stmt(st.Body, false); err != nil {
		return err
	}
	loop := fc.loops[len(fc.loops)-1]
	fc.loops = fc.loops[:len(fc.loops)-1]

	// continue target: the increment.
	incPos := len(fc.fn.Code)
	for _, p := range loop.continuePatches {
		fc.patchTo(p, incPos)
	}
	one, err := fc.c.constant(mavm.Int(1))
	if err != nil {
		return err
	}
	fc.emit(st.line, mavm.OpLoadLocal, idxSlot)
	fc.emit(st.line, mavm.OpConst, one)
	fc.emit(st.line, mavm.OpAdd)
	fc.emit(st.line, mavm.OpStoreLocal, idxSlot)
	fc.emit(st.line, mavm.OpJump, condPos)

	fc.patchHere(exitJump)
	for _, p := range loop.breakPatches {
		fc.patchHere(p)
	}
	return nil
}

func (fc *funcCompiler) assign(st *AssignStmt) error {
	switch target := st.Target.(type) {
	case *Ident:
		if err := fc.expr(st.Value); err != nil {
			return err
		}
		if slot, ok := fc.resolveLocal(target.Name); ok {
			fc.emit(st.line, mavm.OpStoreLocal, slot)
			return nil
		}
		if slot, ok := fc.c.globalIdx[target.Name]; ok {
			fc.emit(st.line, mavm.OpStoreGlobal, slot)
			return nil
		}
		return errAt(target.line, target.col, "assignment to undeclared variable %q", target.Name)
	case *IndexExpr:
		if err := fc.expr(target.X); err != nil {
			return err
		}
		if err := fc.expr(target.Index); err != nil {
			return err
		}
		if err := fc.expr(st.Value); err != nil {
			return err
		}
		fc.emit(st.line, mavm.OpSetIndex)
		return nil
	default:
		return errAt(st.line, st.col, "invalid assignment target %T", st.Target)
	}
}

// --- expressions --------------------------------------------------------

func (fc *funcCompiler) expr(e Expr) error {
	switch ex := e.(type) {
	case *IntLit:
		idx, err := fc.c.constant(mavm.Int(ex.Value))
		if err != nil {
			return err
		}
		fc.emit(ex.line, mavm.OpConst, idx)
		return nil
	case *FloatLit:
		idx, err := fc.c.constant(mavm.Float(ex.Value))
		if err != nil {
			return err
		}
		fc.emit(ex.line, mavm.OpConst, idx)
		return nil
	case *StrLit:
		idx, err := fc.c.constant(mavm.Str(ex.Value))
		if err != nil {
			return err
		}
		fc.emit(ex.line, mavm.OpConst, idx)
		return nil
	case *BoolLit:
		if ex.Value {
			fc.emit(ex.line, mavm.OpTrue)
		} else {
			fc.emit(ex.line, mavm.OpFalse)
		}
		return nil
	case *NilLit:
		fc.emit(ex.line, mavm.OpNil)
		return nil

	case *Ident:
		if slot, ok := fc.resolveLocal(ex.Name); ok {
			fc.emit(ex.line, mavm.OpLoadLocal, slot)
			return nil
		}
		if slot, ok := fc.c.globalIdx[ex.Name]; ok {
			fc.emit(ex.line, mavm.OpLoadGlobal, slot)
			return nil
		}
		return errAt(ex.line, ex.col, "undefined variable %q", ex.Name)

	case *ListLit:
		if len(ex.Items) > math.MaxUint16 {
			return errAt(ex.line, ex.col, "list literal too long")
		}
		for _, it := range ex.Items {
			if err := fc.expr(it); err != nil {
				return err
			}
		}
		fc.emit(ex.line, mavm.OpMakeList, len(ex.Items))
		return nil

	case *MapLit:
		if len(ex.Keys) > math.MaxUint16 {
			return errAt(ex.line, ex.col, "map literal too long")
		}
		for i := range ex.Keys {
			idx, err := fc.c.constant(mavm.Str(ex.Keys[i]))
			if err != nil {
				return err
			}
			fc.emit(ex.line, mavm.OpConst, idx)
			if err := fc.expr(ex.Values[i]); err != nil {
				return err
			}
		}
		fc.emit(ex.line, mavm.OpMakeMap, len(ex.Keys))
		return nil

	case *UnaryExpr:
		if err := fc.expr(ex.X); err != nil {
			return err
		}
		if ex.Op == tokBang {
			fc.emit(ex.line, mavm.OpNot)
		} else {
			fc.emit(ex.line, mavm.OpNeg)
		}
		return nil

	case *BinaryExpr:
		return fc.binary(ex)

	case *CallExpr:
		return fc.call(ex)

	case *IndexExpr:
		if err := fc.expr(ex.X); err != nil {
			return err
		}
		if err := fc.expr(ex.Index); err != nil {
			return err
		}
		fc.emit(ex.line, mavm.OpIndex)
		return nil

	default:
		line, col := e.Pos()
		return errAt(line, col, "unhandled expression %T", e)
	}
}

func (fc *funcCompiler) binary(ex *BinaryExpr) error {
	// Short-circuit forms keep the deciding operand as the result.
	if ex.Op == tokAndAnd || ex.Op == tokOrOr {
		if err := fc.expr(ex.L); err != nil {
			return err
		}
		fc.emit(ex.line, mavm.OpDup)
		var skip int
		if ex.Op == tokAndAnd {
			skip = fc.emitJump(ex.line, mavm.OpJumpIfFalse)
		} else {
			skip = fc.emitJump(ex.line, mavm.OpJumpIfTrue)
		}
		fc.emit(ex.line, mavm.OpPop)
		if err := fc.expr(ex.R); err != nil {
			return err
		}
		fc.patchHere(skip)
		return nil
	}

	if err := fc.expr(ex.L); err != nil {
		return err
	}
	if err := fc.expr(ex.R); err != nil {
		return err
	}
	ops := map[TokenType]mavm.Op{
		tokPlus: mavm.OpAdd, tokMinus: mavm.OpSub, tokStar: mavm.OpMul,
		tokSlash: mavm.OpDiv, tokPercent: mavm.OpMod,
		tokEq: mavm.OpEq, tokNe: mavm.OpNe,
		tokLt: mavm.OpLt, tokLe: mavm.OpLe, tokGt: mavm.OpGt, tokGe: mavm.OpGe,
	}
	op, ok := ops[ex.Op]
	if !ok {
		return errAt(ex.line, ex.col, "unhandled operator %v", ex.Op)
	}
	fc.emit(ex.line, op)
	return nil
}

func (fc *funcCompiler) call(ex *CallExpr) error {
	if len(ex.Args) > 255 {
		return errAt(ex.line, ex.col, "too many arguments")
	}
	for _, a := range ex.Args {
		if err := fc.expr(a); err != nil {
			return err
		}
	}
	if fnIdx, ok := fc.c.funcIdx[ex.Name]; ok {
		want := fc.c.prog.Functions[fnIdx].NumParams
		if len(ex.Args) != want {
			return errAt(ex.line, ex.col, "%s expects %d argument(s), got %d", ex.Name, want, len(ex.Args))
		}
		fc.emit(ex.line, mavm.OpCall, fnIdx, len(ex.Args))
		return nil
	}
	if _, shadowed := fc.resolveLocal(ex.Name); shadowed {
		return errAt(ex.line, ex.col, "%q is a variable, not a function", ex.Name)
	}
	if _, isGlobal := fc.c.globalIdx[ex.Name]; isGlobal {
		return errAt(ex.line, ex.col, "%q is a variable, not a function", ex.Name)
	}
	if bIdx, ok := mavm.BuiltinIndex(ex.Name); ok {
		fc.emit(ex.line, mavm.OpCallBuiltin, bIdx, len(ex.Args))
		return nil
	}
	return errAt(ex.line, ex.col, "undefined function %q", ex.Name)
}

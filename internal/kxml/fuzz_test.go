package kxml

import (
	"bytes"
	"testing"
)

// FuzzParse throws arbitrary bytes at the XML parser: it must never
// panic or hang, and any document it accepts must survive an
// encode→parse→encode round trip (the encoder is a fixpoint of the
// parser).
func FuzzParse(f *testing.F) {
	seeds := [][]byte{
		[]byte(`<a/>`),
		[]byte(`<a b="c">text</a>`),
		[]byte(`<?xml version="1.0"?><mas addr="gw-0" flavour="aglets"><service name="bank.transfer"/></mas>`),
		[]byte(`<r><v t="s">&lt;escaped &amp; entities&gt;</v><!-- comment --></r>`),
		[]byte(`<packed-information code-id="app.ebanking" key="k"><code>migrate("b");</code><params><param name="n"><value type="int">3</value></param></params></packed-information>`),
		[]byte(`<a><b><c><d>deep</d></c></b></a>`),
		[]byte(`<broken`),
		[]byte(``),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		root, err := ParseBytes(data)
		if err != nil {
			return
		}
		enc := root.EncodeDocument()
		root2, err := ParseBytes(enc)
		if err != nil {
			t.Fatalf("re-parse of encoded document failed: %v\ninput: %q\nencoded: %q", err, data, enc)
		}
		enc2 := root2.EncodeDocument()
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode not a parser fixpoint:\nfirst:  %q\nsecond: %q", enc, enc2)
		}
	})
}

package kxml

import (
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleDocument(t *testing.T) {
	doc := `<?xml version="1.0"?><pi id="42"><code lang="mascript">x</code><param name="to">bank-a</param></pi>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if root.Name != "pi" {
		t.Fatalf("root name = %q, want pi", root.Name)
	}
	if v, ok := root.Attr("id"); !ok || v != "42" {
		t.Fatalf("id attr = %q,%v", v, ok)
	}
	if got := root.ChildText("code"); got != "x" {
		t.Fatalf("code text = %q", got)
	}
	p := root.Find("param")
	if p == nil {
		t.Fatal("param child missing")
	}
	if v, _ := p.Attr("name"); v != "to" {
		t.Fatalf("param name = %q", v)
	}
}

func TestParseEscapes(t *testing.T) {
	doc := `<m a="&lt;&gt;&amp;&quot;&apos;">&#65;&#x42;c &amp; d</m>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if v, _ := root.Attr("a"); v != `<>&"'` {
		t.Fatalf("attr = %q", v)
	}
	if got := root.TextContent(); got != "ABc & d" {
		t.Fatalf("text = %q", got)
	}
}

func TestParseCDATAAndComments(t *testing.T) {
	doc := `<r><!-- a comment --><![CDATA[<raw> & unescaped]]></r>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if got := root.TextContent(); got != "<raw> & unescaped" {
		t.Fatalf("cdata text = %q", got)
	}
}

func TestParseSelfClosing(t *testing.T) {
	root, err := ParseString(`<a><b/><c x="1"/></a>`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children))
	}
	if root.Children[0].Name != "b" || root.Children[1].Name != "c" {
		t.Fatalf("child names = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
}

func TestParseDoctypeSkipped(t *testing.T) {
	doc := `<!DOCTYPE pi [<!ELEMENT pi (code)>]><pi><code>k</code></pi>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if root.Name != "pi" {
		t.Fatalf("root = %q", root.Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></a>"},
		{"mismatch", "<a></b>"},
		{"stray end", "</a>"},
		{"two roots", "<a/><b/>"},
		{"text outside root", "hello<a/>"},
		{"bad entity", "<a>&bogus;</a>"},
		{"unterminated entity", "<a>&amp</a>"},
		{"dup attr", `<a x="1" x="2"/>`},
		{"attr missing eq", `<a x "1"/>`},
		{"attr unquoted", `<a x=1/>`},
		{"lt in attr", `<a x="<"/>`},
		{"unterminated comment", "<a><!-- x</a>"},
		{"unterminated cdata", "<a><![CDATA[x</a>"},
		{"eof in tag", "<a"},
		{"bad char ref", "<a>&#xZZ;</a>"},
		{"cdata outside root", "<![CDATA[x]]><a/>"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.doc); err == nil {
				t.Fatalf("ParseString(%q) succeeded, want error", tc.doc)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := ParseString("<a>\n  <b></c>\n</a>")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 2 {
		t.Fatalf("line = %d, want 2", se.Line)
	}
}

func TestPullEvents(t *testing.T) {
	p := NewParserBytes([]byte(`<?xml version="1.0"?><a x="1">t<b/></a>`))
	var types []EventType
	var names []string
	for {
		ev, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		types = append(types, ev.Type)
		names = append(names, ev.Name)
	}
	want := []EventType{StartDocument, ProcInst, StartElement, Text, StartElement, EndElement, EndElement, EndDocument}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	if names[2] != "a" || names[4] != "b" || names[5] != "b" || names[6] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestDepthLimit(t *testing.T) {
	var b strings.Builder
	for i := 0; i < MaxDepth+1; i++ {
		b.WriteString("<a>")
	}
	if _, err := ParseString(b.String()); err == nil {
		t.Fatal("expected depth-limit error")
	}
}

func TestNodeHelpers(t *testing.T) {
	root := NewElement("pi").SetAttr("id", "1")
	root.AddElement("code").AddText("body")
	root.AddElement("param").SetAttr("name", "a").AddText("1")
	root.AddElement("param").SetAttr("name", "b").AddText("2")

	if root.Find("missing") != nil {
		t.Fatal("Find(missing) != nil")
	}
	if got := len(root.FindAll("param")); got != 2 {
		t.Fatalf("FindAll = %d", got)
	}
	if got := root.Path("code"); got == nil || got.TextContent() != "body" {
		t.Fatalf("Path(code) = %v", got)
	}
	if root.Path("code", "missing") != nil {
		t.Fatal("Path through missing should be nil")
	}
	if got := root.AttrDefault("id", "x"); got != "1" {
		t.Fatalf("AttrDefault = %q", got)
	}
	if got := root.AttrDefault("nope", "x"); got != "x" {
		t.Fatalf("AttrDefault fallback = %q", got)
	}

	clone := root.Clone()
	if !root.Equal(clone) {
		t.Fatal("clone not equal to original")
	}
	clone.SetAttr("id", "9")
	if v, _ := root.Attr("id"); v != "1" {
		t.Fatal("mutating clone affected original")
	}
	if root.Equal(clone) {
		t.Fatal("Equal should detect attr difference")
	}
}

func TestWriterStream(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Declaration()
	w.Start("pi", Attr{Name: "id", Value: "7"})
	w.Element("code", "let x = 1")
	w.Start("params")
	w.Element("p", "a&b", Attr{Name: "n", Value: `q"`})
	w.End()
	w.End()
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	root, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("reparse: %v\ndoc: %s", err, b.String())
	}
	if root.ChildText("code") != "let x = 1" {
		t.Fatalf("code = %q", root.ChildText("code"))
	}
	p := root.Path("params", "p")
	if p.TextContent() != "a&b" {
		t.Fatalf("p text = %q", p.TextContent())
	}
	if v, _ := p.Attr("n"); v != `q"` {
		t.Fatalf("attr n = %q", v)
	}
}

func TestWriterUnbalanced(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Start("a")
	if err := w.Flush(); err == nil {
		t.Fatal("expected unclosed-element error")
	}
	w2 := NewWriter(&b)
	w2.End()
	if err := w2.Flush(); err == nil {
		t.Fatal("expected End-without-Start error")
	}
}

func TestWriterCDataSplit(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Start("a")
	w.CData("x]]>y")
	w.End()
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	root, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("reparse: %v (doc %q)", err, b.String())
	}
	if got := root.TextContent(); got != "x]]>y" {
		t.Fatalf("cdata round-trip = %q", got)
	}
}

func TestIndentWriterReparses(t *testing.T) {
	var b strings.Builder
	w := NewIndentWriter(&b, "  ")
	w.Start("root")
	w.Start("child", Attr{Name: "k", Value: "v"})
	w.Element("leaf", "text")
	w.End()
	w.Empty("solo")
	w.End()
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !strings.Contains(b.String(), "\n") {
		t.Fatal("indent writer produced no newlines")
	}
	root, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if root.Path("child", "leaf") == nil {
		t.Fatal("structure lost in indent round-trip")
	}
}

// genNode builds a random tree for property tests.
func genNode(r *rand.Rand, depth int) *Node {
	n := NewElement(randName(r))
	for i := 0; i < r.Intn(3); i++ {
		n.SetAttr(randName(r)+string(rune('a'+i)), randText(r))
	}
	kids := r.Intn(4)
	for i := 0; i < kids; i++ {
		if depth <= 0 || r.Intn(2) == 0 {
			if t := randText(r); t != "" {
				n.Add(NewText(t))
			}
		} else {
			n.Add(genNode(r, depth-1))
		}
	}
	return n
}

func randName(r *rand.Rand) string {
	const letters = "abcdefghijklmnop"
	n := 1 + r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

func randText(r *rand.Rand) string {
	const alphabet = "ab<>&\"' \tλ日=;#x2"
	runes := []rune(alphabet)
	n := r.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = runes[r.Intn(len(runes))]
	}
	return string(out)
}

// normalize merges adjacent text children so trees compare equal after a
// round-trip (the writer may merge what the generator kept separate).
func normalize(n *Node) *Node {
	out := &Node{Name: n.Name, Attrs: n.Attrs, Text: n.Text}
	var textRun strings.Builder
	flush := func() {
		if textRun.Len() > 0 {
			out.Children = append(out.Children, NewText(textRun.String()))
			textRun.Reset()
		}
	}
	for _, c := range n.Children {
		if c.IsText() {
			textRun.WriteString(c.Text)
			continue
		}
		flush()
		out.Children = append(out.Children, normalize(c))
	}
	flush()
	return out
}

func TestPropertyTreeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		tree := genNode(r, 4)
		doc := tree.Encode()
		back, err := ParseBytes(doc)
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\ndoc: %s", i, err, doc)
		}
		want, got := normalize(tree), normalize(back)
		if !want.Equal(got) {
			t.Fatalf("iter %d: round-trip mismatch\nwant %s\ngot  %s", i, want, got)
		}
	}
}

func TestQuickEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !strings.Contains(s, "\r") { // bare CR is normalised by XML rules; our writer escapes only in attrs
			got, err := Unescape(EscapeText(s))
			if err != nil || got != s {
				return false
			}
		}
		got, err := Unescape(EscapeAttr(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDocumentHasDeclaration(t *testing.T) {
	n := NewElement("a")
	doc := n.EncodeDocument()
	if !strings.HasPrefix(string(doc), "<?xml") {
		t.Fatalf("EncodeDocument = %q", doc)
	}
	if _, err := ParseBytes(doc); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestNamespacePrefixPassthrough(t *testing.T) {
	// kXML passes namespace prefixes through as literal names; so do we.
	doc := `<soap:Envelope xmlns:soap="http://example/soap"><soap:Body attr:x="1">v</soap:Body></soap:Envelope>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if root.Name != "soap:Envelope" {
		t.Fatalf("root = %q", root.Name)
	}
	if v, ok := root.Attr("xmlns:soap"); !ok || v != "http://example/soap" {
		t.Fatalf("xmlns attr = %q,%v", v, ok)
	}
	body := root.Find("soap:Body")
	if body == nil || body.TextContent() != "v" {
		t.Fatalf("body = %v", body)
	}
	// Round-trips.
	back, err := ParseBytes(root.Encode())
	if err != nil || !root.Equal(back) {
		t.Fatalf("prefix round-trip: %v", err)
	}
}

func TestUTF8Content(t *testing.T) {
	doc := `<msg lang="日本語">héllo — 世界 ✓</msg>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if got := root.TextContent(); got != "héllo — 世界 ✓" {
		t.Fatalf("text = %q", got)
	}
	if v, _ := root.Attr("lang"); v != "日本語" {
		t.Fatalf("attr = %q", v)
	}
	back, err := ParseBytes(root.Encode())
	if err != nil || !root.Equal(back) {
		t.Fatalf("utf8 round-trip: %v", err)
	}
}

func TestWhitespacePreservedInsideElements(t *testing.T) {
	root, err := ParseString("<a>  two  spaces  </a>")
	if err != nil {
		t.Fatal(err)
	}
	if got := root.TextContent(); got != "  two  spaces  " {
		t.Fatalf("text = %q", got)
	}
}

func TestSortAttrs(t *testing.T) {
	n := NewElement("a").SetAttr("z", "1").SetAttr("a", "2")
	c := n.AddElement("b").SetAttr("m", "3").SetAttr("b", "4")
	n.SortAttrs()
	if n.Attrs[0].Name != "a" || n.Attrs[1].Name != "z" {
		t.Fatalf("attrs not sorted: %v", n.Attrs)
	}
	if c.Attrs[0].Name != "b" {
		t.Fatalf("child attrs not sorted: %v", c.Attrs)
	}
}

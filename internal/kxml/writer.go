package kxml

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

// needsTextEscape reports whether s contains character-data specials.
func needsTextEscape(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&', '<', '>':
			return true
		}
	}
	return false
}

// needsAttrEscape reports whether s contains attribute-value specials.
func needsAttrEscape(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&', '<', '>', '"', '\n', '\t', '\r':
			return true
		}
	}
	return false
}

// AppendEscapedText appends s to dst escaped as character data and
// returns the extended slice. It is the allocation-free counterpart of
// EscapeText for append-style encoders.
func AppendEscapedText(dst []byte, s string) []byte {
	if !needsTextEscape(s) {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// AppendEscapedAttr appends s to dst escaped for a double-quoted
// attribute value and returns the extended slice.
func AppendEscapedAttr(dst []byte, s string) []byte {
	if !needsAttrEscape(s) {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '"':
			dst = append(dst, "&quot;"...)
		case '\n':
			dst = append(dst, "&#10;"...)
		case '\t':
			dst = append(dst, "&#9;"...)
		case '\r':
			dst = append(dst, "&#13;"...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// EscapeText escapes character data for inclusion between tags. Strings
// without specials are returned unchanged (no allocation).
func EscapeText(s string) string {
	if !needsTextEscape(s) {
		return s
	}
	return string(AppendEscapedText(make([]byte, 0, len(s)+8), s))
}

// EscapeAttr escapes an attribute value for inclusion in double quotes.
// Strings without specials are returned unchanged (no allocation).
func EscapeAttr(s string) string {
	if !needsAttrEscape(s) {
		return s
	}
	return string(AppendEscapedAttr(make([]byte, 0, len(s)+8), s))
}

// Writer emits XML as a stream of calls, tracking open elements. It is
// the serialising half of the kXML analogue.
type Writer struct {
	w      io.Writer
	stack  []string
	indent string // "" = compact
	// inText tracks whether the current element has mixed content, which
	// suppresses indentation so text round-trips exactly.
	hadText []bool
	err     error
}

// NewWriter returns a compact (no-whitespace) writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// NewIndentWriter returns a writer that pretty-prints using the given
// indent unit. Elements containing text are kept inline.
func NewIndentWriter(w io.Writer, indent string) *Writer {
	return &Writer{w: w, indent: indent}
}

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

// Declaration writes the standard <?xml ...?> document declaration.
func (w *Writer) Declaration() {
	w.printf("<?xml version=\"1.0\" encoding=\"UTF-8\"?>")
	w.newline()
}

func (w *Writer) newline() {
	if w.indent != "" {
		w.printf("\n")
	}
}

func (w *Writer) pad() {
	if w.indent != "" {
		w.printf("%s", strings.Repeat(w.indent, len(w.stack)))
	}
}

// Start opens an element with optional attributes.
func (w *Writer) Start(name string, attrs ...Attr) {
	w.pad()
	w.printf("<%s", name)
	for _, a := range attrs {
		w.printf(" %s=\"%s\"", a.Name, EscapeAttr(a.Value))
	}
	w.printf(">")
	w.newline()
	w.stack = append(w.stack, name)
	w.hadText = append(w.hadText, false)
}

// Empty writes a self-closing element with optional attributes.
func (w *Writer) Empty(name string, attrs ...Attr) {
	w.pad()
	w.printf("<%s", name)
	for _, a := range attrs {
		w.printf(" %s=\"%s\"", a.Name, EscapeAttr(a.Value))
	}
	w.printf("/>")
	w.newline()
}

// End closes the most recently opened element.
func (w *Writer) End() {
	if len(w.stack) == 0 {
		if w.err == nil {
			w.err = fmt.Errorf("kxml: End with no open element")
		}
		return
	}
	name := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	w.hadText = w.hadText[:len(w.hadText)-1]
	w.pad()
	w.printf("</%s>", name)
	w.newline()
}

// Text writes escaped character data.
func (w *Writer) Text(s string) {
	if len(w.hadText) > 0 {
		w.hadText[len(w.hadText)-1] = true
	}
	w.pad()
	w.printf("%s", EscapeText(s))
	w.newline()
}

// CData writes a CDATA section. The body must not contain "]]>"; if it
// does, the section is split so the document stays well-formed.
func (w *Writer) CData(s string) {
	w.pad()
	for {
		i := strings.Index(s, "]]>")
		if i < 0 {
			break
		}
		w.printf("<![CDATA[%s]]>", s[:i+2])
		s = s[i+2:]
	}
	w.printf("<![CDATA[%s]]>", s)
	w.newline()
}

// Comment writes an XML comment. Double hyphens in the body are padded
// so the comment stays well-formed.
func (w *Writer) Comment(s string) {
	w.pad()
	w.printf("<!--%s-->", strings.ReplaceAll(s, "--", "- -"))
	w.newline()
}

// Element writes a complete leaf element with text content.
func (w *Writer) Element(name, text string, attrs ...Attr) {
	w.pad()
	w.printf("<%s", name)
	for _, a := range attrs {
		w.printf(" %s=\"%s\"", a.Name, EscapeAttr(a.Value))
	}
	if text == "" {
		w.printf("/>")
	} else {
		w.printf(">%s</%s>", EscapeText(text), name)
	}
	w.newline()
}

// Flush reports any error accumulated during writing and verifies all
// elements were closed.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.stack) > 0 {
		return fmt.Errorf("kxml: %d unclosed element(s), innermost <%s>", len(w.stack), w.stack[len(w.stack)-1])
	}
	return nil
}

// Write serialises the subtree rooted at n to w in compact form.
func (n *Node) Write(w io.Writer) error {
	var b bytes.Buffer
	writeNode(&b, n)
	_, err := w.Write(b.Bytes())
	return err
}

func writeNode(b *bytes.Buffer, n *Node) {
	if n.IsText() {
		b.WriteString(EscapeText(n.Text))
		return
	}
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range n.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString("=\"")
		b.WriteString(EscapeAttr(a.Value))
		b.WriteByte('"')
	}
	if len(n.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	for _, c := range n.Children {
		writeNode(b, c)
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
}

// Encode returns the compact serialised bytes of the subtree.
func (n *Node) Encode() []byte {
	var b bytes.Buffer
	writeNode(&b, n)
	return b.Bytes()
}

// String returns the compact serialised form of the subtree.
func (n *Node) String() string { return string(n.Encode()) }

// EncodeDocument returns the subtree serialised with an XML declaration
// prefix — the form PDAgent sends on the wire.
func (n *Node) EncodeDocument() []byte {
	var b bytes.Buffer
	b.WriteString("<?xml version=\"1.0\" encoding=\"UTF-8\"?>")
	writeNode(&b, n)
	return b.Bytes()
}

package kxml

import (
	"strings"
	"testing"
)

// benchDoc approximates a 10-transaction result document.
func benchDoc() []byte {
	root := NewElement("result-document").SetAttr("agent", "ag-1").SetAttr("status", "done")
	for i := 0; i < 20; i++ {
		r := root.AddElement("result").SetAttr("key", "receipts")
		v := r.AddElement("value").SetAttr("type", "map")
		v.AddElement("entry").SetAttr("key", "bank").AddElement("value").SetAttr("type", "str").AddText("bank-a")
		v.AddElement("entry").SetAttr("key", "txid").AddElement("value").SetAttr("type", "str").AddText("bank-a-tx-1")
		v.AddElement("entry").SetAttr("key", "amount").AddElement("value").SetAttr("type", "int").AddText("100")
	}
	return root.EncodeDocument()
}

func BenchmarkParse(b *testing.B) {
	doc := benchDoc()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseBytes(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	root, err := ParseBytes(benchDoc())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(root.Encode()) == 0 {
			b.Fatal("empty encode")
		}
	}
}

func BenchmarkEscapeText(b *testing.B) {
	s := strings.Repeat("plain text with <some> &escapes& mixed in ", 50)
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		EscapeText(s)
	}
}

package kxml

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// EventType identifies the kind of event the pull parser produced.
type EventType int

// Pull-parser event kinds, mirroring kXML's XmlPullParser constants.
const (
	StartDocument EventType = iota
	EndDocument
	StartElement
	EndElement
	Text
	CData
	Comment
	ProcInst
)

func (t EventType) String() string {
	switch t {
	case StartDocument:
		return "StartDocument"
	case EndDocument:
		return "EndDocument"
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	case CData:
		return "CData"
	case Comment:
		return "Comment"
	case ProcInst:
		return "ProcInst"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is one pull-parser event. Name is set for Start/EndElement and
// ProcInst (the target); Attrs for StartElement; Text for Text, CData,
// Comment and ProcInst (the instruction body).
type Event struct {
	Type      EventType
	Name      string
	Attrs     []Attr
	Text      string
	Line, Col int
	// SelfClose marks a StartElement that was written as <name/>; the
	// parser still synthesises the matching EndElement event.
	SelfClose bool
}

// MaxDepth bounds element nesting to keep hostile documents from
// exhausting the stack.
const MaxDepth = 256

// Parser is a streaming pull parser over an input document.
type Parser struct {
	src       []byte
	pos       int
	line, col int

	stack   []string // open element names
	started bool
	done    bool
	pending *Event // synthesised EndElement for self-closing tags
}

// NewParser returns a parser reading the whole of r up front. Documents
// in this system are bounded (PIs are a few kilobytes), so slurping is
// both simpler and faster than incremental decoding.
func NewParser(r io.Reader) (*Parser, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("kxml: reading input: %w", err)
	}
	return NewParserBytes(b), nil
}

// NewParserBytes returns a parser over the given document bytes.
func NewParserBytes(b []byte) *Parser {
	return &Parser{src: b, line: 1, col: 1}
}

func (p *Parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) eof() bool { return p.pos >= len(p.src) }

func (p *Parser) peek() byte { return p.src[p.pos] }

func (p *Parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *Parser) skipSpace() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\r', '\n':
			p.advance()
		default:
			return
		}
	}
}

func (p *Parser) hasPrefix(s string) bool {
	if len(p.src)-p.pos < len(s) {
		return false
	}
	// Compare in place; converting the whole tail to a string here
	// would make readUntil quadratic.
	return string(p.src[p.pos:p.pos+len(s)]) == s
}

func (p *Parser) consume(s string) bool {
	if !p.hasPrefix(s) {
		return false
	}
	for range s {
		p.advance()
	}
	return true
}

// readUntil consumes input until the terminator string, returning the
// text before it. The terminator itself is consumed.
func (p *Parser) readUntil(term string) (string, error) {
	start := p.pos
	for !p.eof() {
		if p.hasPrefix(term) {
			text := string(p.src[start:p.pos])
			p.consume(term)
			return text, nil
		}
		p.advance()
	}
	return "", p.errf("unterminated construct, expected %q", term)
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *Parser) readName() (string, error) {
	if p.eof() || !isNameStart(p.peek()) {
		return "", p.errf("expected name")
	}
	start := p.pos
	for !p.eof() && isNameChar(p.peek()) {
		p.advance()
	}
	return internName(p.src[start:p.pos]), nil
}

// internName maps the element and attribute names of the PDAgent
// dialect to shared string constants, so scanning a tag allocates
// nothing on the pull fast path. The switch comparisons do not convert
// b to a heap string; only unknown names pay the allocation.
func internName(b []byte) string {
	switch string(b) {
	case "packed-information":
		return "packed-information"
	case "code":
		return "code"
	case "params":
		return "params"
	case "param":
		return "param"
	case "value":
		return "value"
	case "entry":
		return "entry"
	case "name":
		return "name"
	case "type":
		return "type"
	case "key":
		return "key"
	case "code-id":
		return "code-id"
	case "owner":
		return "owner"
	case "nonce":
		return "nonce"
	case "result-document":
		return "result-document"
	case "result":
		return "result"
	case "error":
		return "error"
	case "agent":
		return "agent"
	case "status":
		return "status"
	case "hops":
		return "hops"
	case "steps":
		return "steps"
	case "subscription":
		return "subscription"
	case "code-package":
		return "code-package"
	case "description":
		return "description"
	case "source":
		return "source"
	case "secret":
		return "secret"
	case "gateway-key":
		return "gateway-key"
	case "gateway":
		return "gateway"
	case "gateway-list":
		return "gateway-list"
	case "catalogue":
		return "catalogue"
	case "id":
		return "id"
	case "version":
		return "version"
	case "addr":
		return "addr"
	case "state":
		return "state"
	case "moved-to":
		return "moved-to"
	case "mas":
		return "mas"
	case "service":
		return "service"
	case "xml":
		return "xml"
	}
	return string(b)
}

// Next returns the next event, or io.EOF after EndDocument was returned.
func (p *Parser) Next() (Event, error) {
	if p.pending != nil {
		ev := *p.pending
		p.pending = nil
		return ev, nil
	}
	if p.done {
		return Event{}, io.EOF
	}
	if !p.started {
		p.started = true
		return Event{Type: StartDocument, Line: p.line, Col: p.col}, nil
	}

	// Outside any element, whitespace between constructs is skipped.
	if len(p.stack) == 0 {
		p.skipSpace()
	}
	if p.eof() {
		if len(p.stack) > 0 {
			return Event{}, p.errf("unexpected end of document inside <%s>", p.stack[len(p.stack)-1])
		}
		p.done = true
		return Event{Type: EndDocument, Line: p.line, Col: p.col}, nil
	}

	line, col := p.line, p.col
	if p.peek() != '<' {
		text, err := p.readText()
		if err != nil {
			return Event{}, err
		}
		if len(p.stack) == 0 {
			return Event{}, &SyntaxError{Line: line, Col: col, Msg: "character data outside root element"}
		}
		return Event{Type: Text, Text: text, Line: line, Col: col}, nil
	}

	switch {
	case p.consume("<!--"):
		text, err := p.readUntil("-->")
		if err != nil {
			return Event{}, err
		}
		return Event{Type: Comment, Text: text, Line: line, Col: col}, nil
	case p.consume("<![CDATA["):
		if len(p.stack) == 0 {
			return Event{}, &SyntaxError{Line: line, Col: col, Msg: "CDATA outside root element"}
		}
		text, err := p.readUntil("]]>")
		if err != nil {
			return Event{}, err
		}
		return Event{Type: CData, Text: text, Line: line, Col: col}, nil
	case p.consume("<?"):
		return p.readProcInst(line, col)
	case p.consume("<!"):
		// DOCTYPE (or other declaration): skip, tracking bracket nesting.
		if err := p.skipDecl(); err != nil {
			return Event{}, err
		}
		return p.Next()
	case p.consume("</"):
		return p.readEndTag(line, col)
	default:
		p.advance() // consume '<'
		return p.readStartTag(line, col)
	}
}

func (p *Parser) readProcInst(line, col int) (Event, error) {
	target, err := p.readName()
	if err != nil {
		return Event{}, err
	}
	body, err := p.readUntil("?>")
	if err != nil {
		return Event{}, err
	}
	return Event{Type: ProcInst, Name: target, Text: strings.TrimSpace(body), Line: line, Col: col}, nil
}

func (p *Parser) skipDecl() error {
	depth := 1
	for !p.eof() {
		switch p.advance() {
		case '<':
			depth++
		case '>':
			depth--
			if depth == 0 {
				return nil
			}
		}
	}
	return p.errf("unterminated declaration")
}

func (p *Parser) readStartTag(line, col int) (Event, error) {
	name, err := p.readName()
	if err != nil {
		return Event{}, err
	}
	var attrs []Attr
	for {
		p.skipSpace()
		if p.eof() {
			return Event{}, p.errf("unterminated start tag <%s", name)
		}
		if p.consume("/>") {
			if len(p.stack) >= MaxDepth {
				return Event{}, p.errf("element nesting exceeds %d", MaxDepth)
			}
			p.pending = &Event{Type: EndElement, Name: name, Line: p.line, Col: p.col}
			return Event{Type: StartElement, Name: name, Attrs: attrs, Line: line, Col: col, SelfClose: true}, nil
		}
		if p.peek() == '>' {
			p.advance()
			if len(p.stack) >= MaxDepth {
				return Event{}, p.errf("element nesting exceeds %d", MaxDepth)
			}
			p.stack = append(p.stack, name)
			return Event{Type: StartElement, Name: name, Attrs: attrs, Line: line, Col: col}, nil
		}
		attr, err := p.readAttr()
		if err != nil {
			return Event{}, err
		}
		for _, a := range attrs {
			if a.Name == attr.Name {
				return Event{}, p.errf("duplicate attribute %q on <%s>", attr.Name, name)
			}
		}
		attrs = append(attrs, attr)
	}
}

func (p *Parser) readAttr() (Attr, error) {
	name, err := p.readName()
	if err != nil {
		return Attr{}, err
	}
	p.skipSpace()
	if p.eof() || p.peek() != '=' {
		return Attr{}, p.errf("expected '=' after attribute %q", name)
	}
	p.advance()
	p.skipSpace()
	if p.eof() || (p.peek() != '"' && p.peek() != '\'') {
		return Attr{}, p.errf("expected quoted value for attribute %q", name)
	}
	quote := p.advance()
	start := p.pos
	for !p.eof() && p.peek() != quote {
		if p.peek() == '<' {
			return Attr{}, p.errf("'<' in attribute value of %q", name)
		}
		p.advance()
	}
	if p.eof() {
		return Attr{}, p.errf("unterminated value for attribute %q", name)
	}
	raw := string(p.src[start:p.pos])
	p.advance() // closing quote
	val, err := Unescape(raw)
	if err != nil {
		return Attr{}, p.errf("attribute %q: %v", name, err)
	}
	return Attr{Name: name, Value: val}, nil
}

func (p *Parser) readEndTag(line, col int) (Event, error) {
	name, err := p.readName()
	if err != nil {
		return Event{}, err
	}
	p.skipSpace()
	if p.eof() || p.peek() != '>' {
		return Event{}, p.errf("malformed end tag </%s", name)
	}
	p.advance()
	if len(p.stack) == 0 {
		return Event{}, &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected end tag </%s>", name)}
	}
	open := p.stack[len(p.stack)-1]
	if open != name {
		return Event{}, &SyntaxError{Line: line, Col: col,
			Msg: fmt.Sprintf("end tag </%s> does not match open <%s>", name, open)}
	}
	p.stack = p.stack[:len(p.stack)-1]
	return Event{Type: EndElement, Name: name, Line: line, Col: col}, nil
}

func (p *Parser) readText() (string, error) {
	start := p.pos
	for !p.eof() && p.peek() != '<' {
		p.advance()
	}
	return Unescape(string(p.src[start:p.pos]))
}

// Parse reads a whole document and returns its root element. Comments
// and processing instructions are dropped; CDATA becomes text; adjacent
// text runs are preserved as written.
func Parse(r io.Reader) (*Node, error) {
	p, err := NewParser(r)
	if err != nil {
		return nil, err
	}
	return buildTree(p)
}

// ParseBytes is Parse over an in-memory document.
func ParseBytes(b []byte) (*Node, error) {
	return buildTree(NewParserBytes(b))
}

// ParseString is Parse over a string document.
func ParseString(s string) (*Node, error) {
	return buildTree(NewParserBytes([]byte(s)))
}

func buildTree(p *Parser) (*Node, error) {
	var root *Node
	var stack []*Node
	for {
		ev, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Type {
		case StartElement:
			nodeAllocs.Add(1)
			n := &Node{Name: ev.Name, Attrs: ev.Attrs}
			if len(stack) == 0 {
				if root != nil {
					return nil, &SyntaxError{Line: ev.Line, Col: ev.Col, Msg: "multiple root elements"}
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case EndElement:
			stack = stack[:len(stack)-1]
		case Text, CData:
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, NewText(ev.Text))
			}
		case EndDocument:
			if root == nil {
				return nil, ErrNoElement
			}
			return root, nil
		}
	}
	if root == nil {
		return nil, ErrNoElement
	}
	return root, nil
}

// Unescape expands the five predefined XML entities plus decimal and
// hexadecimal character references.
func Unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(s[i:], ';')
		if end < 0 {
			return "", fmt.Errorf("unterminated entity near %q", s[i:min(i+10, len(s))])
		}
		ent := s[i+1 : i+end]
		switch {
		case ent == "amp":
			b.WriteByte('&')
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "quot":
			b.WriteByte('"')
		case ent == "apos":
			b.WriteByte('\'')
		case strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X"):
			v, err := strconv.ParseUint(ent[2:], 16, 32)
			if err != nil || !utf8.ValidRune(rune(v)) {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(v))
		case strings.HasPrefix(ent, "#"):
			v, err := strconv.ParseUint(ent[1:], 10, 32)
			if err != nil || !utf8.ValidRune(rune(v)) {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(v))
		default:
			return "", fmt.Errorf("unknown entity &%s;", ent)
		}
		i += end + 1
	}
	return b.String(), nil
}

// Package kxml is a minimal XML library modelled on the kXML pull parser
// the PDAgent paper uses on the handheld (J2ME) side.
//
// It provides three layers:
//
//   - a streaming pull Parser emitting events (StartElement, Text, ...),
//     mirroring kXML's XmlPullParser;
//   - a DOM-lite Node tree built on top of the pull parser, used for the
//     Packed Information and result documents;
//   - a Writer for serialising trees and streams back to XML text.
//
// The dialect is deliberately small — elements, attributes, character
// data, CDATA, comments, processing instructions and a skipped DOCTYPE —
// which matches what kXML 1.x offered to MIDP applications. Namespaces
// are passed through as literal prefixes.
package kxml

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Attr is a single name="value" attribute. Order is preserved so that
// documents round-trip byte-identically modulo whitespace.
type Attr struct {
	Name  string
	Value string
}

// Node is an element or a text node in the DOM-lite tree. Element nodes
// have a non-empty Name; text nodes have Name == "" and carry Text.
type Node struct {
	Name     string
	Attrs    []Attr
	Children []*Node
	Text     string
}

// nodeAllocs counts every Node this package allocates, process-wide.
// The wire package's fast-path decoders are required to build no DOM at
// all; its zero-DOM tests read this counter around a decode to prove
// it. The counter only ticks on the (now cold) tree paths, so the
// atomic add never sits on a hot loop.
var nodeAllocs atomic.Uint64

// NodeAllocs returns the number of Nodes allocated so far. The absolute
// value is meaningless; deltas around a region of interest are the
// point.
func NodeAllocs() uint64 { return nodeAllocs.Load() }

// NewElement returns an element node with the given name.
func NewElement(name string) *Node {
	nodeAllocs.Add(1)
	return &Node{Name: name}
}

// NewText returns a text node with the given character data.
func NewText(text string) *Node {
	nodeAllocs.Add(1)
	return &Node{Text: text}
}

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n.Name == "" }

// SetAttr sets (or replaces) an attribute and returns n for chaining.
func (n *Node) SetAttr(name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrDefault returns the named attribute value or def if absent.
func (n *Node) AttrDefault(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// Add appends child nodes and returns n for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// AddText appends a text child and returns n for chaining.
func (n *Node) AddText(text string) *Node {
	return n.Add(NewText(text))
}

// AddElement creates, appends and returns a new child element.
func (n *Node) AddElement(name string) *Node {
	c := NewElement(name)
	n.Add(c)
	return c
}

// Find returns the first child element with the given name, or nil.
func (n *Node) Find(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// FindAll returns all child elements with the given name.
func (n *Node) FindAll(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Path descends through successive child names and returns the final
// element, or nil if any step is missing.
func (n *Node) Path(names ...string) *Node {
	cur := n
	for _, name := range names {
		if cur = cur.Find(name); cur == nil {
			return nil
		}
	}
	return cur
}

// TextContent concatenates the text of n and all its descendants.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.IsText() {
		b.WriteString(n.Text)
		return
	}
	for _, c := range n.Children {
		c.appendText(b)
	}
}

// ChildText returns the text content of the first child element with the
// given name, or "" if there is none.
func (n *Node) ChildText(name string) string {
	c := n.Find(name)
	if c == nil {
		return ""
	}
	return c.TextContent()
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	nodeAllocs.Add(1)
	out := &Node{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		out.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// Equal reports deep structural equality of two subtrees.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Name != o.Name || n.Text != o.Text ||
		len(n.Attrs) != len(o.Attrs) || len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Attrs {
		if n.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// SortAttrs orders attributes by name, recursively. Useful in tests that
// compare documents produced by different writers.
func (n *Node) SortAttrs() {
	sort.Slice(n.Attrs, func(i, j int) bool { return n.Attrs[i].Name < n.Attrs[j].Name })
	for _, c := range n.Children {
		if !c.IsText() {
			c.SortAttrs()
		}
	}
}

// ErrNoElement is returned by Parse when the document holds no element.
var ErrNoElement = errors.New("kxml: document contains no root element")

// A SyntaxError describes a malformed document with position info.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("kxml: %d:%d: %s", e.Line, e.Col, e.Msg)
}

package cluster

import (
	"crypto/subtle"
	"strconv"

	"pdagent/internal/transport"
)

// StaticIdentity is a fixed cluster identity for hosts that speak the
// authenticated intra-cluster protocol without being members — a masd
// replicating its journal to a standby, for instance. It stamps the
// same headers Node.StampIdentity does and vets incoming requests with
// the same shared-secret check, but knows nothing about fencing: a
// non-member never gossips fences, so Authorized admits any epoch.
type StaticIdentity struct {
	// Self is the address stamped as the request origin.
	Self string
	// Secret is the shared cluster secret (-cluster-secret).
	Secret string
	// Epoch is the fencing epoch stamped on outgoing requests (0 for a
	// host that has never been promoted over).
	Epoch uint64
}

// Stamp adds the cluster token, origin and epoch to an outgoing
// request, mirroring Node.StampIdentity.
func (id StaticIdentity) Stamp(req *transport.Request) {
	req.SetHeader(tokenHeader, id.Secret)
	req.SetHeader(originHeader, id.Self)
	req.SetHeader(epochHeader, strconv.FormatUint(id.Epoch, 10))
}

// Authorized vets an incoming request by the shared secret alone.
func (id StaticIdentity) Authorized(req *transport.Request) bool {
	return subtle.ConstantTimeCompare([]byte(req.GetHeader(tokenHeader)), []byte(id.Secret)) == 1
}

// Package cluster turns N PDAgent gateways into one logical middle
// tier (DESIGN.md §6). It provides the four pieces the federation
// needs:
//
//   - membership: a static seed list bootstraps the view; periodic
//     heartbeat gossip over the shared transport keeps it live,
//     carries per-member load (queue depth, in-flight agents) and
//     drives failure suspicion and eviction;
//   - placement: a consistent-hash ring with virtual nodes maps each
//     subscription key to a home gateway, skipping suspect, draining
//     and overloaded members (load-aware spill);
//   - location directory: a replicated agent-location table with
//     forwarding pointers, updated from MAS arrival/departure hooks
//     and reconciled by per-agent sequence numbers, so any member can
//     route status chases and result fetches to the agent's current
//     MAS;
//   - forwarding: a Forwarder over transport.RoundTripper that proxies
//     mis-homed requests between members with loop protection.
//
// Everything here is deterministic when driven manually (Node.Tick on
// a simulated world); Node.Start runs the same tick on a wall-clock
// interval for the real daemons.
package cluster

import (
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual node count of the
// placement ring. 64 points per member keeps the key share within a
// few percent of 1/N for small fleets while the ring stays tiny.
const DefaultVirtualNodes = 64

// fnv64a hashes a key for ring placement (FNV-1a, inlined like the
// gateway registry's shard hash so placement allocates nothing).
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	addr string
}

// Ring is an immutable consistent-hash ring over a member set. Build
// one with NewRing whenever the member set changes; lookups are
// lock-free. With virtual nodes, a member joining or leaving moves
// only ~K/N of K keys (see TestRingRebalance).
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring with vnodes virtual nodes per member (0 means
// DefaultVirtualNodes). Member order does not matter; the ring is a
// pure function of the set.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{members: append([]string(nil), members...)}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(members)*vnodes)
	var buf []byte
	for _, m := range r.members {
		for v := 0; v < vnodes; v++ {
			buf = append(append(buf[:0], m...), '#')
			buf = strconv.AppendInt(buf, int64(v), 10)
			r.points = append(r.points, ringPoint{hash: fnv64a(string(buf)), addr: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].addr
}

// OwnerSkipping walks the ring clockwise from key's position and
// returns the first member for which skip returns false. When every
// member is skipped it falls back to the plain owner — under global
// overload the ring still answers, it just cannot spill. Returns ""
// only on an empty ring.
func (r *Ring) OwnerSkipping(key string, skip func(addr string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	start := r.search(key)
	seen := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points) && len(seen) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.addr] {
			continue
		}
		seen[p.addr] = true
		if !skip(p.addr) {
			return p.addr
		}
	}
	return r.points[start].addr
}

// search returns the index of the first ring point at or after key's
// hash, wrapping to 0.
func (r *Ring) search(key string) int {
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// SubscriptionKey is the placement key of one (codeID, owner)
// subscription — the unit the ring distributes over the fleet, so one
// device's dispatches for one application always land on the same
// home gateway (its journal, program pin and result store).
func SubscriptionKey(codeID, owner string) string {
	return codeID + "\x00" + owner
}

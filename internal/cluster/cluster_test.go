package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pdagent/internal/netsim"
	"pdagent/internal/transport"
)

// testFleet wires n nodes over a simulated wired network.
type testFleet struct {
	net   *netsim.Network
	nodes []*Node
	addrs []string
}

func newFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{net: netsim.New(1)}
	for i := 0; i < n; i++ {
		f.addrs = append(f.addrs, fmt.Sprintf("gw-%d", i))
	}
	for _, addr := range f.addrs {
		node := NewNode(Config{
			Self:      addr,
			Seeds:     f.addrs,
			Transport: f.net.Transport(netsim.ZoneWired),
			Secret:    "test-cluster-secret",
		})
		f.net.AddHost(addr, netsim.ZoneWired, node.Handler())
		f.nodes = append(f.nodes, node)
	}
	return f
}

func (f *testFleet) tickAll(ctx context.Context) {
	for _, n := range f.nodes {
		n.Tick(ctx)
	}
}

func TestSeedBootstrap(t *testing.T) {
	f := newFleet(t, 3)
	// Before any heartbeat, the seed list is the live view: placement
	// and the directory work from t=0.
	for _, n := range f.nodes {
		if got := len(n.Membership().AliveAddrs()); got != 3 {
			t.Fatalf("node %s bootstrapped with %d live members, want 3", n.Self(), got)
		}
	}
	home := f.nodes[0].Home(SubscriptionKey("app.echo", "alice"))
	for _, n := range f.nodes[1:] {
		if h := n.Home(SubscriptionKey("app.echo", "alice")); h != home {
			t.Fatalf("placement disagrees: %s vs %s", h, home)
		}
	}
}

// TestHeartbeatEviction is the satellite failure-mode test: a member
// that stops answering is suspected (leaves placement) and then
// evicted; when it comes back, heartbeats restore it.
func TestHeartbeatEviction(t *testing.T) {
	f := newFleet(t, 3)
	ctx := context.Background()
	f.tickAll(ctx)
	if !f.nodes[0].Membership().Alive("gw-2") {
		t.Fatal("gw-2 should be alive after a heartbeat round")
	}

	if err := f.net.KillHost("gw-2"); err != nil {
		t.Fatal(err)
	}
	// Default SuspectAfter is 3 ticks: run the survivors past it.
	for i := 0; i < 5; i++ {
		f.nodes[0].Tick(ctx)
		f.nodes[1].Tick(ctx)
	}
	if f.nodes[0].Membership().Alive("gw-2") {
		t.Fatal("gw-2 still alive after missing 5 ticks")
	}
	for _, addr := range f.nodes[0].Membership().AliveAddrs() {
		if addr == "gw-2" {
			t.Fatal("gw-2 still in the live view")
		}
	}
	// Placement must route around the dead member.
	moved := false
	for i := 0; i < 200; i++ {
		key := SubscriptionKey("app.echo", fmt.Sprintf("dev-%d", i))
		if h := f.nodes[0].Home(key); h == "gw-2" {
			t.Fatalf("key %s placed on dead member", key)
		} else if h != "" {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no keys placed at all")
	}

	// Eviction after EvictAfter more ticks.
	for i := 0; i < 10; i++ {
		f.nodes[0].Tick(ctx)
		f.nodes[1].Tick(ctx)
	}
	for _, m := range f.nodes[0].Membership().Members() {
		if m.Addr == "gw-2" && m.State != StateLeft {
			t.Fatalf("gw-2 state %s after long silence, want %s", m.State, StateLeft)
		}
	}

	// Recovery: the member answers again and re-enters the view.
	if err := f.net.ReviveHost("gw-2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f.tickAll(ctx)
	}
	if !f.nodes[0].Membership().Alive("gw-2") {
		t.Fatal("revived gw-2 did not rejoin the live view")
	}
}

// TestSuspicionSpreadsByGossip: only gw-0 can reach the network in
// time; gw-1 must learn of gw-2's eviction through gw-0's view.
func TestGossipSpreadsEviction(t *testing.T) {
	f := newFleet(t, 3)
	ctx := context.Background()
	f.tickAll(ctx)
	if err := f.net.KillHost("gw-2"); err != nil {
		t.Fatal(err)
	}
	// Only gw-0 ticks: it suspects gw-2 on its own evidence; gw-1's
	// own clock barely advances (each reply it sends is not a tick).
	for i := 0; i < 5; i++ {
		f.nodes[0].Tick(ctx)
	}
	if f.nodes[0].Membership().Alive("gw-2") {
		t.Fatal("gw-0 did not suspect gw-2")
	}
	// One tick of gw-1 pulls gw-0's view (suspect state gossips in).
	f.nodes[1].Tick(ctx)
	f.nodes[1].Tick(ctx)
	if f.nodes[1].Membership().Alive("gw-2") {
		t.Fatal("suspicion did not spread to gw-1 by gossip")
	}
}

func TestLeaveImmediate(t *testing.T) {
	f := newFleet(t, 3)
	ctx := context.Background()
	f.tickAll(ctx)
	f.nodes[2].Leave(ctx)
	// No further ticks needed: the leave broadcast updates peers now.
	if f.nodes[0].Membership().Alive("gw-2") || f.nodes[1].Membership().Alive("gw-2") {
		t.Fatal("peers still count a departed member as alive")
	}
	if f.nodes[2].Membership().Alive("gw-2") {
		t.Fatal("a leaving member counts itself alive")
	}
	if got := f.nodes[2].Home(SubscriptionKey("a", "b")); got == "gw-2" {
		t.Fatalf("leaving member still places keys on itself")
	}
}

func TestLoadAwareSpill(t *testing.T) {
	f := newFleet(t, 3)
	ctx := context.Background()
	key := SubscriptionKey("app.echo", "alice")
	primary := f.nodes[0].Home(key)
	var pi int
	for i, a := range f.addrs {
		if a == primary {
			pi = i
		}
	}
	// The primary reports overload; after gossip, peers spill its keys.
	f.nodes[pi].SetLoadFunc(func() Load { return Load{InFlight: DefaultSpillThreshold + 1} })
	f.tickAll(ctx)
	f.tickAll(ctx)
	for _, n := range f.nodes {
		h := n.Home(key)
		if h == primary {
			t.Fatalf("node %s still homes %q on overloaded %s", n.Self(), key, primary)
		}
		if h == "" {
			t.Fatalf("node %s found no home", n.Self())
		}
	}
	// Overload clears -> placement returns to the primary.
	f.nodes[pi].SetLoadFunc(func() Load { return Load{} })
	f.tickAll(ctx)
	f.tickAll(ctx)
	for _, n := range f.nodes {
		if h := n.Home(key); h != primary {
			t.Fatalf("node %s homes %q on %s after overload cleared, want %s", n.Self(), key, h, primary)
		}
	}
}

func TestLocationReplication(t *testing.T) {
	f := newFleet(t, 3)
	ctx := context.Background()
	// A location published on one member reaches the others
	// immediately (push) and by piggyback (gossip) for late joiners.
	f.nodes[0].PublishLocation(ctx, Location{AgentID: "ag-1", Addr: "bank-a", HomeGW: "gw-0", Seq: 2})
	for _, n := range f.nodes {
		loc, ok := n.Locations().Get("ag-1")
		if !ok || loc.Addr != "bank-a" {
			t.Fatalf("node %s location = %+v, %v", n.Self(), loc, ok)
		}
	}
	// Stale update (lower seq) must not regress any replica.
	f.nodes[1].PublishLocation(ctx, Location{AgentID: "ag-1", Addr: "gw-0", HomeGW: "gw-0", Seq: 1})
	for _, n := range f.nodes {
		if loc, _ := n.Locations().Get("ag-1"); loc.Addr != "bank-a" {
			t.Fatalf("node %s regressed to %q on a stale update", n.Self(), loc.Addr)
		}
	}
	// Fresher update wins everywhere.
	f.nodes[2].PublishLocation(ctx, Location{AgentID: "ag-1", Addr: "bank-b", Seq: 4})
	for _, n := range f.nodes {
		loc, _ := n.Locations().Get("ag-1")
		if loc.Addr != "bank-b" {
			t.Fatalf("node %s did not adopt the fresher pointer", n.Self())
		}
		if loc.HomeGW != "gw-0" {
			t.Fatalf("node %s lost the home gateway on a partial update: %+v", n.Self(), loc)
		}
	}
}

func TestForwarderLoopProtection(t *testing.T) {
	f := newFleet(t, 2)
	ctx := context.Background()
	fw0 := f.nodes[0].Forwarder()
	fw1 := f.nodes[1].Forwarder()

	locBody := EncodeUpdate(Location{AgentID: "ag-x", Addr: "bank-a", Seq: 1})
	r1 := reqTo("/cluster/loc")
	r1.Body = locBody
	resp, err := fw0.Forward(ctx, "gw-1", r1)
	if err != nil || !resp.IsOK() {
		t.Fatalf("first hop: %v %v", err, resp)
	}
	if Forwarded(r1) {
		t.Fatal("Forward mutated the caller's request")
	}
	// Simulate gw-1 bouncing the same request back: the chain contains
	// gw-0, so the forward must refuse.
	r2 := reqTo("/cluster/loc")
	r2.Body = locBody
	r2.SetHeader("x-cluster-fwd", "gw-0")
	if _, err := fw1.Forward(ctx, "gw-0", r2); err == nil {
		t.Fatal("loop not refused")
	}
	// And chains at the bound are refused outright.
	r3 := reqTo("/cluster/loc")
	r3.Body = locBody
	r3.SetHeader("x-cluster-fwd", "a,b,c,d")
	if _, err := fw0.Forward(ctx, "gw-1", r3); err == nil {
		t.Fatal("over-long chain not refused")
	}
}

// TestClusterEndpointsRequireToken: the /cluster/ endpoints live on
// the public listener and transport headers are client-settable, so a
// request without the shared secret must be refused even when it
// carries a plausible hop chain — the chain alone is not trust.
func TestClusterEndpointsRequireToken(t *testing.T) {
	f := newFleet(t, 2)
	ctx := context.Background()
	rt := f.net.Transport(netsim.ZoneWired)

	hb := f.nodes[0].Membership().viewDoc()
	for _, path := range []string{"/cluster/heartbeat", "/cluster/loc"} {
		req := &transport.Request{Path: path, Body: hb}
		req.SetHeader("x-cluster-fwd", "gw-0") // forged chain
		resp, err := rt.RoundTrip(ctx, "gw-1", req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != transport.StatusForbidden {
			t.Fatalf("%s without token: status %d, want %d", path, resp.Status, transport.StatusForbidden)
		}
		req.SetHeader("x-cluster-token", "wrong-secret")
		resp, err = rt.RoundTrip(ctx, "gw-1", req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != transport.StatusForbidden {
			t.Fatalf("%s with wrong token: status %d, want %d", path, resp.Status, transport.StatusForbidden)
		}
	}
	// The real forwarder (which stamps the right token) still works.
	locReq := &transport.Request{Path: "/cluster/loc", Body: EncodeUpdate(Location{AgentID: "a", Addr: "b", Seq: 1})}
	resp, err := f.nodes[0].Forwarder().Forward(ctx, "gw-1", locReq)
	if err != nil || !resp.IsOK() {
		t.Fatalf("authorised push refused: %v %v", err, resp)
	}
}

// TestTenantUsageGossipConvergence: each member reports its own
// per-tenant usage; after a gossip round every member's remote sum
// covers the rest of the cluster, and a member's updated tallies
// replace (not accumulate with) its previous rows.
func TestTenantUsageGossipConvergence(t *testing.T) {
	f := newFleet(t, 3)
	ctx := context.Background()
	for i, n := range f.nodes {
		i := i
		n.SetTenantUsageFunc(func() []TenantUsage {
			return []TenantUsage{
				{Tenant: "acme", InFlight: int64(i + 1), MailboxBytes: 100},
				{Tenant: "default", Residents: 10},
			}
		})
	}
	f.tickAll(ctx)
	f.tickAll(ctx)
	for i, n := range f.nodes {
		got := n.RemoteTenantUsage()
		// Remote sum excludes self: acme in-flight = 1+2+3 minus own.
		wantAcme := int64(6 - (i + 1))
		if got["acme"].InFlight != wantAcme {
			t.Fatalf("node %s remote acme in-flight = %d, want %d", n.Self(), got["acme"].InFlight, wantAcme)
		}
		if got["acme"].MailboxBytes != 200 {
			t.Fatalf("node %s remote acme mailbox bytes = %d, want 200", n.Self(), got["acme"].MailboxBytes)
		}
		if got["default"].Residents != 20 {
			t.Fatalf("node %s remote default residents = %d, want 20", n.Self(), got["default"].Residents)
		}
	}
	// Updated tallies replace the old rows on the next heartbeat.
	f.nodes[2].SetTenantUsageFunc(func() []TenantUsage {
		return []TenantUsage{{Tenant: "acme", InFlight: 50}}
	})
	f.tickAll(ctx)
	got := f.nodes[0].RemoteTenantUsage()
	if got["acme"].InFlight != 2+50 {
		t.Fatalf("remote acme in-flight after update = %d, want 52", got["acme"].InFlight)
	}
	if got["default"].Residents != 10 {
		t.Fatalf("gw-2's dropped default row still counted: residents = %d, want 10", got["default"].Residents)
	}
	// An evicted member's usage stops counting toward cluster totals.
	if err := f.net.KillHost("gw-2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f.nodes[0].Tick(ctx)
		f.nodes[1].Tick(ctx)
	}
	got = f.nodes[0].RemoteTenantUsage()
	if got["acme"].InFlight != 2 {
		t.Fatalf("evicted member still counted: acme in-flight = %d, want 2", got["acme"].InFlight)
	}
}

// TestConcurrentGossip exercises membership, placement and the
// location table under -race: concurrent ticks, publishes and reads.
func TestConcurrentGossip(t *testing.T) {
	f := newFleet(t, 3)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i, n := range f.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for r := 0; r < 25; r++ {
				n.Tick(ctx)
				n.PublishLocation(ctx, Location{
					AgentID: fmt.Sprintf("ag-%d-%d", i, r%5),
					Addr:    fmt.Sprintf("bank-%d", r%3),
					HomeGW:  n.Self(),
					Seq:     r,
				})
				_ = n.Home(SubscriptionKey("app.echo", fmt.Sprintf("dev-%d", r)))
				_ = n.Membership().AliveAddrs()
				n.SetTenantUsageFunc(func() []TenantUsage {
					return []TenantUsage{{Tenant: "acme", InFlight: int64(r)}}
				})
				_ = n.RemoteTenantUsage()
			}
		}(i, n)
	}
	wg.Wait()
	for _, n := range f.nodes {
		if got := len(n.Membership().AliveAddrs()); got != 3 {
			t.Fatalf("node %s ended with %d live members, want 3", n.Self(), got)
		}
	}
}

func reqTo(path string) *transport.Request { return &transport.Request{Path: path} }

package cluster

import (
	"context"

	"pdagent/internal/mas"
	"pdagent/internal/transport"
)

// LocationRelay builds a mas.Config.OnAgentMove hook for a NON-member
// MAS host (a network site): every location event is relayed to the
// agent's home gateway's /cluster/loc endpoint, stamped with the
// shared cluster secret, so mid-itinerary hops between hosts reach
// the replicated directory. Best-effort by design — a missed or
// refused relay only costs chase hops, and unclustered home gateways
// simply 404 it. Used by cmd/masd and core.SimWorld; cluster members
// themselves publish through Node.PublishLocation instead.
func LocationRelay(rt transport.RoundTripper, selfAddr, secret string) func(context.Context, mas.AgentMove) {
	return func(ctx context.Context, mv mas.AgentMove) {
		if mv.Home == "" || mv.Home == selfAddr {
			return
		}
		req := &transport.Request{
			Path: "/cluster/loc",
			Body: EncodeUpdate(Location{
				AgentID: mv.AgentID, Addr: mv.Addr, HomeGW: mv.Home,
				Seq: mv.Seq, Terminal: mv.Terminal,
			}),
		}
		req.SetHeader(tokenHeader, secret)
		pushCtx, cancel := context.WithTimeout(ctx, locationPushTimeout)
		_, _ = rt.RoundTrip(pushCtx, mv.Home, req)
		cancel()
	}
}

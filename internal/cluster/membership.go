package cluster

import (
	"context"
	"crypto/subtle"
	"sort"
	"strconv"
	"sync"

	"pdagent/internal/kxml"
	"pdagent/internal/transport"
)

// MemberState is the failure-detector state of one member.
type MemberState string

// Member states. The zero value of a fresh entry is StateAlive.
const (
	// StateAlive members receive traffic and placement.
	StateAlive MemberState = "alive"
	// StateSuspect members missed SuspectAfter ticks of evidence; they
	// are skipped by placement but still probed, so a heartbeat from
	// them (or fresh gossip) restores StateAlive.
	StateSuspect MemberState = "suspect"
	// StateLeft members announced a graceful departure (drain) or were
	// evicted; the entry lingers as a tombstone so stale gossip cannot
	// resurrect them, then ages out entirely.
	StateLeft MemberState = "left"
)

// Load is the spill signal a heartbeat carries: how much work a member
// has queued and in flight (cs/0407013's load-balanced placement).
type Load struct {
	// QueueDepth is pending work not yet executing (e.g. parked or
	// queued agents).
	QueueDepth int
	// InFlight is dispatched-but-unfinished agent count.
	InFlight int
}

// TenantUsage is one tenant's resource tally on one member, carried
// on heartbeats so per-tenant quotas hold cluster-wide (DESIGN.md
// §12). Each member gossips only its own rows; receivers store them
// under the sender and sum across members on demand.
type TenantUsage struct {
	// Tenant is the account label ("default" for the implicit account).
	Tenant string
	// InFlight is the member's dispatched-but-unfinished agents for
	// this tenant.
	InFlight int64
	// Residents is the tenant's agents resident on the member's MAS.
	Residents int64
	// MailboxBytes is the tenant's pending mailbox payload bytes there.
	MailboxBytes int64
	// JournalBytes is the tenant's journaled agent bytes there.
	JournalBytes int64
}

// Member is a snapshot of one cluster member as seen locally.
type Member struct {
	Addr        string
	State       MemberState
	Incarnation int
	Load        Load
	// Age is how many local ticks ago the last evidence arrived (0 for
	// self).
	Age int
}

// MembershipConfig configures a Membership.
type MembershipConfig struct {
	// Self is this member's advertised address. Required.
	Self string
	// Seeds are addresses that bootstrap the view (self is implied and
	// filtered out). The static §3.5 list becomes the seed list.
	Seeds []string
	// Transport carries heartbeats. Required.
	Transport transport.RoundTripper
	// Secret is the shared cluster credential stamped on every
	// heartbeat and required of every received one (see
	// cluster.Config.Secret).
	Secret string
	// SuspectAfter is how many ticks without evidence mark a member
	// suspect (default 3).
	SuspectAfter int
	// EvictAfter is how many ticks without evidence evict a member from
	// the view entirely (default 8; must exceed SuspectAfter).
	EvictAfter int
	// LoadFn reports local load for outgoing heartbeats (nil: zero).
	LoadFn func() Load
	// TenantUsageFn reports this member's per-tenant usage rows for
	// outgoing heartbeats (nil: none gossiped).
	TenantUsageFn func() []TenantUsage
	// EpochFn reports this member's fencing epoch, stamped on outgoing
	// heartbeats so peers can refuse a fenced zombie (nil: epoch 0).
	EpochFn func() uint64
	// OnEvict fires (outside the membership lock) when suspicion
	// transitions a member to StateLeft — the warm-standby promotion
	// hook. It does NOT fire for graceful leaves or tombstones learned
	// from gossip: only the member that aged the suspect out itself
	// promotes, so a view that merely heard about the eviction does not
	// double-promote.
	OnEvict func(addr string)
	// OnFenced fires (outside the lock) when this member learns its own
	// address is fenced at an epoch above its own — it is a zombie that
	// missed its eviction and must stop serving writes.
	OnFenced func(epoch uint64)
	// Logf receives diagnostics.
	Logf func(format string, args ...any)
}

// memberInfo is the mutable per-member record.
type memberInfo struct {
	state    MemberState
	inc      int
	load     Load
	usage    []TenantUsage // the member's own gossiped per-tenant rows
	lastSeen int           // local tick of last evidence
}

// Membership is the gossiping failure detector. Drive it with Tick —
// manually in simulated worlds (deterministic), or via Node.Start on a
// wall-clock interval in the daemons.
type Membership struct {
	cfg MembershipConfig

	mu       sync.Mutex
	members  map[string]*memberInfo // excludes self
	tick     int
	selfInc  int
	selfLoad Load // cached at heartbeat time; see LoadOf
	leaving  bool
	version  uint64 // bumped whenever the placement-relevant view changes
	// fences maps a member address to its fencing epoch: requests from
	// that address carrying a lower epoch are refused everywhere. Raised
	// by a promoted standby, spread by max-merge gossip, never lowered.
	fences map[string]uint64

	locs *Locations // piggyback source/sink; may be nil
}

// NewMembership builds a membership bootstrapped from the seed list:
// seeds start alive, so placement works before the first heartbeat.
func NewMembership(cfg MembershipConfig) *Membership {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	if cfg.EvictAfter <= cfg.SuspectAfter {
		cfg.EvictAfter = cfg.SuspectAfter + 5
	}
	m := &Membership{cfg: cfg, members: map[string]*memberInfo{}, version: 1, fences: map[string]uint64{}}
	for _, s := range cfg.Seeds {
		if s == "" || s == cfg.Self {
			continue
		}
		m.members[s] = &memberInfo{state: StateAlive}
	}
	return m
}

func (m *Membership) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Self returns the advertised address.
func (m *Membership) Self() string { return m.cfg.Self }

// Version counts placement-relevant view changes; Node caches its ring
// against it.
func (m *Membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Alive reports whether addr is in the live view (self included unless
// leaving).
func (m *Membership) Alive(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == m.cfg.Self {
		return !m.leaving
	}
	e, ok := m.members[addr]
	return ok && e.state == StateAlive
}

// AliveAddrs returns the live member view, sorted, self first. This is
// what the gateway's §3.5 directory endpoint now serves.
func (m *Membership) AliveAddrs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	if !m.leaving {
		out = append(out, m.cfg.Self)
	}
	for addr, e := range m.members {
		if e.state == StateAlive {
			out = append(out, addr)
		}
	}
	if len(out) > 0 {
		sort.Strings(out[1:]) // deterministic order; self stays first
	}
	return out
}

// Members snapshots the full view including suspects and tombstones
// (self excluded), for debugging and tests.
func (m *Membership) Members() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members))
	for addr, e := range m.members {
		out = append(out, Member{
			Addr: addr, State: e.state, Incarnation: e.inc,
			Load: e.load, Age: m.tick - e.lastSeen,
		})
	}
	return out
}

// SetLoadFunc installs the local load reporter; the gateway wires its
// registry gauge here after construction.
func (m *Membership) SetLoadFunc(fn func() Load) {
	m.mu.Lock()
	m.cfg.LoadFn = fn
	m.mu.Unlock()
}

// SetTenantUsageFunc installs the local per-tenant usage reporter;
// the gateway wires its tenant ledger here after construction.
func (m *Membership) SetTenantUsageFunc(fn func() []TenantUsage) {
	m.mu.Lock()
	m.cfg.TenantUsageFn = fn
	m.mu.Unlock()
}

// RemoteTenantUsage sums the per-tenant usage last gossiped by every
// live or suspect member (self excluded — the caller's own ledger is
// authoritative locally), keyed by tenant label. Freshness is
// heartbeat-granularity: a quota can overshoot by what the cluster
// admitted inside one gossip round, which is the documented §12
// trade-off for keeping admission off the cluster's critical path.
func (m *Membership) RemoteTenantUsage() map[string]TenantUsage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]TenantUsage{}
	for _, e := range m.members {
		if e.state == StateLeft {
			continue
		}
		for _, u := range e.usage {
			sum := out[u.Tenant]
			sum.Tenant = u.Tenant
			sum.InFlight += u.InFlight
			sum.Residents += u.Residents
			sum.MailboxBytes += u.MailboxBytes
			sum.JournalBytes += u.JournalBytes
			out[u.Tenant] = sum
		}
	}
	return out
}

// LoadOf returns the last known load of addr. Self answers from the
// snapshot taken at the last heartbeat, NOT a live LoadFn call: LoadOf
// sits on the placement path of every dispatch, and LoadFn may walk
// gateway state under its own locks — heartbeat-granularity freshness
// is exactly what remote members get too.
func (m *Membership) LoadOf(addr string) (Load, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == m.cfg.Self {
		return m.selfLoad, true
	}
	e, ok := m.members[addr]
	if !ok {
		return Load{}, false
	}
	return e.load, true
}

// Leaving reports whether Leave ran.
func (m *Membership) Leaving() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leaving
}

// Tick runs one heartbeat round: advance suspicion/eviction, then
// exchange views with every known peer (and unseen seeds). Peers that
// answer are fresh evidence; merge folds in what they know. Returns
// how many peers answered.
func (m *Membership) Tick(ctx context.Context) int {
	m.mu.Lock()
	m.tick++
	now := m.tick
	var evicted []string
	// Failure suspicion: age out evidence.
	for addr, e := range m.members {
		age := now - e.lastSeen
		switch {
		case e.state == StateAlive && age > m.cfg.SuspectAfter:
			e.state = StateSuspect
			m.version++
			m.logf("cluster %s: suspecting %s (no evidence for %d ticks)", m.cfg.Self, addr, age)
		case e.state == StateSuspect && age > m.cfg.EvictAfter:
			e.state = StateLeft
			m.version++
			evicted = append(evicted, addr)
			m.logf("cluster %s: evicting %s", m.cfg.Self, addr)
		case e.state == StateLeft && age > 3*m.cfg.EvictAfter:
			delete(m.members, addr) // tombstone aged out
		}
	}
	var peers []string
	for addr, e := range m.members {
		if e.state != StateLeft {
			peers = append(peers, addr)
		}
	}
	m.mu.Unlock()
	if m.cfg.OnEvict != nil {
		sort.Strings(evicted)
		for _, addr := range evicted {
			m.cfg.OnEvict(addr)
		}
	}
	sort.Strings(peers) // deterministic heartbeat order for simulated worlds

	doc := m.viewDoc()
	answered := 0
	for _, addr := range peers {
		req := &transport.Request{Path: "/cluster/heartbeat", Body: doc}
		m.stampIdentity(req)
		resp, err := m.cfg.Transport.RoundTrip(ctx, addr, req)
		if err != nil || !resp.IsOK() {
			if err == nil {
				m.noteFencedReply(resp)
			}
			continue
		}
		answered++
		m.noteEvidence(addr)
		if err := m.Merge(resp.Body); err != nil {
			m.logf("cluster %s: bad heartbeat reply from %s: %v", m.cfg.Self, addr, err)
		}
	}
	return answered
}

// stampIdentity adds the cluster token plus the sender's address and
// fencing epoch to an outgoing intra-cluster request.
func (m *Membership) stampIdentity(req *transport.Request) {
	req.SetHeader(tokenHeader, m.cfg.Secret)
	req.SetHeader(originHeader, m.cfg.Self)
	req.SetHeader(epochHeader, strconv.FormatUint(m.epoch(), 10))
}

func (m *Membership) epoch() uint64 {
	if m.cfg.EpochFn == nil {
		return 0
	}
	return m.cfg.EpochFn()
}

// noteFencedReply inspects a refused heartbeat: a Forbidden reply
// carrying the fenced-epoch header means a peer has fenced US — we are
// a zombie that missed its own eviction, and a standby now owns our
// state. Surface it so the embedder stops serving writes.
func (m *Membership) noteFencedReply(resp *transport.Response) {
	if resp == nil || resp.Status != transport.StatusForbidden {
		return
	}
	h := resp.GetHeader(fencedEpochHeader)
	if h == "" {
		return
	}
	epoch, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return
	}
	if m.cfg.OnFenced != nil {
		m.cfg.OnFenced(epoch)
	}
}

// FenceOf returns addr's fencing epoch (0 if never fenced).
func (m *Membership) FenceOf(addr string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fences[addr]
}

// RaiseFence bumps addr's fencing epoch past everything seen so far
// and returns the new value. The caller (a promoting standby) gossips
// it on its next heartbeats; any instance of addr presenting a lower
// epoch is refused cluster writes from then on. A legitimately
// restarted addr re-enters by adopting an epoch >= the fence.
func (m *Membership) RaiseFence(addr string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.fences[addr] + 1
	m.fences[addr] = f
	m.version++
	return f
}

// noteEvidence records direct proof of life for addr. A StateLeft
// member is not resurrected by answering a probe: it departed (or was
// evicted) under its current incarnation and must rejoin by refuting
// with a higher one, so stale processes cannot flap the view.
func (m *Membership) noteEvidence(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.members[addr]
	if !ok {
		e = &memberInfo{}
		m.members[addr] = e
	}
	if e.state == StateSuspect {
		e.state = StateAlive
		m.version++
	}
	e.lastSeen = m.tick
}

// Leave announces a graceful departure: the local member flips to
// leaving (AliveAddrs drops self, placement refuses local homes) and a
// final heartbeat with state=left is pushed to every live peer so they
// drop us without waiting for suspicion.
func (m *Membership) Leave(ctx context.Context) {
	m.mu.Lock()
	if m.leaving {
		m.mu.Unlock()
		return
	}
	m.leaving = true
	m.selfInc++
	m.version++
	var peers []string
	for addr, e := range m.members {
		if e.state != StateLeft {
			peers = append(peers, addr)
		}
	}
	m.mu.Unlock()
	sort.Strings(peers)
	doc := m.viewDoc()
	for _, addr := range peers {
		req := &transport.Request{Path: "/cluster/heartbeat", Body: doc}
		m.stampIdentity(req)
		if _, err := m.cfg.Transport.RoundTrip(ctx, addr, req); err != nil {
			m.logf("cluster %s: leave notification to %s: %v", m.cfg.Self, addr, err)
		}
	}
}

// HandleHeartbeat is the /cluster/heartbeat endpoint: merge the
// sender's view and answer with ours (pull-push gossip). Requests
// without the shared secret are refused — an outsider must not be
// able to evict members or poison the view.
func (m *Membership) HandleHeartbeat(_ context.Context, req *transport.Request) *transport.Response {
	if subtle.ConstantTimeCompare([]byte(req.GetHeader(tokenHeader)), []byte(m.cfg.Secret)) != 1 {
		return transport.Errorf(transport.StatusForbidden, "cluster: missing or wrong cluster token")
	}
	// Epoch fencing: a zombie ex-primary (fenced after its standby
	// promoted) is refused — and told so, with the fence epoch in the
	// reply, so it learns its own death instead of gossiping stale
	// state back into the view. Its entries must not be merged: a
	// zombie's view still lists itself alive.
	if origin := req.GetHeader(originHeader); origin != "" {
		if fence := m.FenceOf(origin); fence > requestEpoch(req) {
			resp := transport.Errorf(transport.StatusForbidden,
				"cluster: %s fenced at epoch %d", origin, fence)
			resp.SetHeader(fencedEpochHeader, strconv.FormatUint(fence, 10))
			return resp
		}
	}
	if err := m.Merge(req.Body); err != nil {
		return transport.Errorf(transport.StatusBadRequest, "cluster view: %v", err)
	}
	return transport.OK(m.viewDoc())
}

// requestEpoch reads the fencing epoch a request claims (0 if absent).
func requestEpoch(req *transport.Request) uint64 {
	e, err := strconv.ParseUint(req.GetHeader(epochHeader), 10, 64)
	if err != nil {
		return 0
	}
	return e
}

// viewDoc renders the local view (plus piggybacked location updates)
// as a cluster-view XML document.
func (m *Membership) viewDoc() []byte {
	m.mu.Lock()
	root := kxml.NewElement("cluster-view")
	root.SetAttr("from", m.cfg.Self)
	root.SetAttr("inc", strconv.Itoa(m.selfInc))
	selfState := StateAlive
	if m.leaving {
		selfState = StateLeft
	}
	var selfLoad Load
	loadFn := m.cfg.LoadFn
	usageFn := m.cfg.TenantUsageFn
	now := m.tick
	type row struct {
		addr  string
		state MemberState
		inc   int
		load  Load
		age   int
	}
	rows := make([]row, 0, len(m.members)+1)
	for addr, e := range m.members {
		rows = append(rows, row{addr, e.state, e.inc, e.load, now - e.lastSeen})
	}
	fences := make(map[string]uint64, len(m.fences))
	for addr, f := range m.fences {
		fences[addr] = f
	}
	m.mu.Unlock()

	// Load is read outside the lock: LoadFn reaches into gateway state.
	if loadFn != nil {
		selfLoad = loadFn()
		m.mu.Lock()
		m.selfLoad = selfLoad // refresh the placement-path snapshot
		m.mu.Unlock()
	}
	rows = append(rows, row{m.cfg.Self, selfState, m.selfIncSnapshot(), selfLoad, 0})
	for _, r := range rows {
		e := root.AddElement("member")
		e.SetAttr("addr", r.addr)
		e.SetAttr("state", string(r.state))
		e.SetAttr("inc", strconv.Itoa(r.inc))
		e.SetAttr("queue", strconv.Itoa(r.load.QueueDepth))
		e.SetAttr("inflight", strconv.Itoa(r.load.InFlight))
		e.SetAttr("age", strconv.Itoa(r.age))
	}
	// Per-tenant usage rows: only our own — each member vouches for its
	// own tallies, receivers sum across senders (RemoteTenantUsage).
	if usageFn != nil {
		for _, u := range usageFn() {
			e := root.AddElement("usage")
			e.SetAttr("tenant", u.Tenant)
			e.SetAttr("inflight", strconv.FormatInt(u.InFlight, 10))
			e.SetAttr("residents", strconv.FormatInt(u.Residents, 10))
			e.SetAttr("mbbytes", strconv.FormatInt(u.MailboxBytes, 10))
			e.SetAttr("jbytes", strconv.FormatInt(u.JournalBytes, 10))
		}
	}
	fenceAddrs := make([]string, 0, len(fences))
	for addr := range fences {
		fenceAddrs = append(fenceAddrs, addr)
	}
	sort.Strings(fenceAddrs)
	for _, addr := range fenceAddrs {
		e := root.AddElement("fence")
		e.SetAttr("addr", addr)
		e.SetAttr("epoch", strconv.FormatUint(fences[addr], 10))
	}
	if m.locs != nil {
		m.locs.appendRecent(root)
	}
	return root.EncodeDocument()
}

func (m *Membership) selfIncSnapshot() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.selfInc
}

// Merge folds a cluster-view document into the local view, SWIM
// style. Rules, per member entry e about member a:
//
//   - a == self and e says suspect/left while we are not leaving:
//     refute by bumping our incarnation (the next heartbeat spreads
//     the higher incarnation, restoring us everywhere);
//   - the document's *sender* reporting on itself is direct evidence:
//     it refreshes liveness and load and clears suspicion;
//   - third-party entries never refresh liveness (an idle reporter's
//     stale "alive" must not keep a dead member alive forever); they
//     only introduce unknown members, spread higher incarnations, and
//     spread worse states (left > suspect > alive) at equal
//     incarnation.
//
// Piggybacked <loc> entries are folded into the location table.
func (m *Membership) Merge(doc []byte) error {
	root, err := kxml.ParseBytes(doc)
	if err != nil {
		return err
	}
	if root.Name != "cluster-view" {
		return errNotView
	}
	from := root.AttrDefault("from", "")
	selfFencedAt := uint64(0)
	usageRows := []TenantUsage{}
	m.mu.Lock()
	for _, child := range root.Children {
		if child.Name == "usage" {
			// Usage rows are the sender's own tallies; collected here and
			// attached to the sender's entry below.
			t := child.AttrDefault("tenant", "")
			if t == "" {
				continue
			}
			usageRows = append(usageRows, TenantUsage{
				Tenant:       t,
				InFlight:     atoi64Default(child.AttrDefault("inflight", "0")),
				Residents:    atoi64Default(child.AttrDefault("residents", "0")),
				MailboxBytes: atoi64Default(child.AttrDefault("mbbytes", "0")),
				JournalBytes: atoi64Default(child.AttrDefault("jbytes", "0")),
			})
			continue
		}
		if child.Name == "fence" {
			// Fencing epochs max-merge: once raised anywhere, a fence
			// spreads everywhere and never lowers.
			addr := child.AttrDefault("addr", "")
			epoch, err := strconv.ParseUint(child.AttrDefault("epoch", "0"), 10, 64)
			if addr == "" || err != nil {
				continue
			}
			if epoch > m.fences[addr] {
				m.fences[addr] = epoch
				m.version++
			}
			if addr == m.cfg.Self && m.fences[addr] > m.epoch() {
				selfFencedAt = m.fences[addr]
			}
			continue
		}
		if child.Name != "member" {
			continue
		}
		addr := child.AttrDefault("addr", "")
		if addr == "" {
			continue
		}
		state := MemberState(child.AttrDefault("state", string(StateAlive)))
		inc := atoiDefault(child.AttrDefault("inc", "0"))
		load := Load{
			QueueDepth: atoiDefault(child.AttrDefault("queue", "0")),
			InFlight:   atoiDefault(child.AttrDefault("inflight", "0")),
		}
		if addr == m.cfg.Self {
			if state != StateAlive && inc >= m.selfInc && !m.leaving {
				m.selfInc = inc + 1 // refutation
				m.version++
			}
			continue
		}
		direct := addr == from // the sender vouches for itself only
		e, ok := m.members[addr]
		if !ok {
			// Unknown member: adopt it with a fresh grace period — if it
			// is actually dead, our own suspicion will age it out.
			m.members[addr] = &memberInfo{state: state, inc: inc, load: load, lastSeen: m.tick}
			m.version++
			continue
		}
		switch {
		case inc > e.inc:
			if e.state != state {
				m.version++
			}
			e.inc, e.state, e.load = inc, state, load
			if direct {
				e.lastSeen = m.tick
			}
		case inc == e.inc:
			if direct {
				e.lastSeen = m.tick
				e.load = load
				if state == StateAlive && e.state != StateAlive && e.state != StateLeft {
					e.state = StateAlive
					m.version++
				}
				if state == StateLeft && e.state != StateLeft {
					e.state = StateLeft // graceful leave announcement
					m.version++
				}
			} else if rank(state) > rank(e.state) {
				e.state = state
				m.version++
			}
		}
	}
	// The sender vouches for its own usage: replace its rows wholesale
	// (an empty heartbeat clears stale tallies).
	if from != "" && from != m.cfg.Self {
		if e, ok := m.members[from]; ok {
			e.usage = usageRows
		}
	}
	m.mu.Unlock()
	if selfFencedAt > 0 && m.cfg.OnFenced != nil {
		m.cfg.OnFenced(selfFencedAt)
	}
	if m.locs != nil {
		m.locs.mergeFrom(root)
	}
	return nil
}

// rank orders states for equal-incarnation merges.
func rank(s MemberState) int {
	switch s {
	case StateLeft:
		return 2
	case StateSuspect:
		return 1
	default:
		return 0
	}
}

func atoiDefault(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}

func atoi64Default(s string) int64 {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// errNotView is returned by Merge for a document of the wrong type.
var errNotView = errorString("cluster: not a cluster-view document")

type errorString string

func (e errorString) Error() string { return string(e) }

package cluster

import (
	"context"
	"crypto/subtle"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pdagent/internal/kxml"
	"pdagent/internal/metrics"
	"pdagent/internal/transport"
)

// DefaultSpillThreshold is the load (queue depth + in-flight) above
// which placement skips a member and spills its keys to the next ring
// position.
const DefaultSpillThreshold = 256

// Config configures a cluster Node.
type Config struct {
	// Self is this member's advertised address (the gateway's Addr).
	Self string
	// Seeds bootstrap membership (the static gateway list).
	Seeds []string
	// Transport carries heartbeats, location pushes and forwarded
	// requests between members.
	Transport transport.RoundTripper
	// Secret is the shared cluster credential: every intra-cluster
	// request (heartbeat, location push, forwarded dispatch/result)
	// carries it, and every /cluster/ endpoint refuses requests
	// without it. The cluster endpoints share the public listener
	// with device traffic and transport headers are client-settable,
	// so WITHOUT a secret the cluster is open — cmd/gateway therefore
	// refuses to federate with an empty -cluster-secret; only trusted
	// single-process fabrics (simulations, benchmarks) may leave it
	// empty.
	Secret string
	// VirtualNodes per member on the placement ring (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// SuspectAfter / EvictAfter are failure-detector tick budgets (see
	// MembershipConfig).
	SuspectAfter, EvictAfter int
	// SpillThreshold is the load at which placement skips a member
	// (default DefaultSpillThreshold; negative disables spill).
	SpillThreshold int
	// LoadFn reports local load for heartbeats (the gateway wires its
	// registry's in-flight count and the MAS queue depth here).
	LoadFn func() Load
	// MaxLocations bounds the location table (0: default).
	MaxLocations int
	// Epoch is this member's starting fencing epoch (DESIGN.md §10). A
	// fresh member starts at 0; a member restarting after its standby
	// promoted (and fenced the old instance) must start at or above the
	// fence to be re-admitted to cluster writes.
	Epoch uint64
	// OnEvict fires when local suspicion evicts a member — the
	// warm-standby promotion hook (see MembershipConfig.OnEvict).
	OnEvict func(addr string)
	// NoLocationPush disables the synchronous per-event push of
	// location updates to peers; replicas then converge only through
	// heartbeat piggyback. Status chases fall back to the home member's
	// pointer chain either way, so this trades chase latency for
	// admission-path round trips (benchmarks use it to isolate
	// forwarding cost).
	NoLocationPush bool
	// Logf receives diagnostics.
	Logf func(format string, args ...any)
	// Log, when set, routes node diagnostics through the shared
	// leveled logger (component-tagged, keyed once-latches) instead of
	// ad-hoc sync.Once sites.
	Log *metrics.Logger
}

// Node is one gateway's cluster runtime: membership + placement ring +
// location directory + forwarder, mounted under /cluster/ on the
// gateway mux.
type Node struct {
	cfg  Config
	mem  *Membership
	locs *Locations
	fwd  *Forwarder
	mux  *transport.Mux

	// epoch is this instance's fencing epoch; selfFenced latches once
	// the node learns a peer fenced it (it is a zombie).
	epoch      atomic.Uint64
	selfFenced atomic.Bool
	log        *metrics.Logger

	ringMu  sync.Mutex
	ring    *Ring
	ringVer uint64

	tickMu   sync.Mutex
	stopTick chan struct{}
}

// NewNode builds a node. The view starts as the seed list, so
// placement and the live directory work before the first heartbeat.
func NewNode(cfg Config) *Node {
	if cfg.SpillThreshold == 0 {
		cfg.SpillThreshold = DefaultSpillThreshold
	}
	n := &Node{
		cfg:  cfg,
		locs: NewLocations(cfg.MaxLocations),
		fwd:  NewForwarder(cfg.Self, cfg.Transport, cfg.Secret),
		log:  cfg.Log,
	}
	if n.log == nil {
		// A private logger keeps the Oncef latch without requiring
		// every caller to build one; it writes to cfg.Logf (or nowhere
		// — quiet simulated nodes stay quiet).
		sink := cfg.Logf
		if sink == nil {
			sink = func(string, ...any) {}
		}
		n.log = metrics.NewLogger("cluster", sink)
	}
	n.epoch.Store(cfg.Epoch)
	n.fwd.SetEpochFn(n.Epoch)
	n.mem = NewMembership(MembershipConfig{
		Self:         cfg.Self,
		Seeds:        cfg.Seeds,
		Transport:    cfg.Transport,
		Secret:       cfg.Secret,
		SuspectAfter: cfg.SuspectAfter,
		EvictAfter:   cfg.EvictAfter,
		LoadFn:       cfg.LoadFn,
		EpochFn:      n.Epoch,
		OnEvict:      cfg.OnEvict,
		OnFenced:     n.noteFenced,
		Logf:         cfg.Logf,
	})
	n.mem.locs = n.locs
	m := transport.NewMux()
	m.HandleFunc("/cluster/heartbeat", n.mem.HandleHeartbeat)
	m.HandleFunc("/cluster/loc", n.handleLoc)
	n.mux = m
	return n
}

// Self returns the advertised address.
func (n *Node) Self() string { return n.cfg.Self }

// SetLoadFunc installs the local load reporter (gateway wiring).
func (n *Node) SetLoadFunc(fn func() Load) { n.mem.SetLoadFunc(fn) }

// SetTenantUsageFunc installs the per-tenant usage reporter gossiped
// on heartbeats.
func (n *Node) SetTenantUsageFunc(fn func() []TenantUsage) { n.mem.SetTenantUsageFunc(fn) }

// RemoteTenantUsage sums the per-tenant usage last gossiped by the
// rest of the cluster, keyed by tenant label.
func (n *Node) RemoteTenantUsage() map[string]TenantUsage { return n.mem.RemoteTenantUsage() }

// Membership exposes the failure detector (directory endpoint, tests).
func (n *Node) Membership() *Membership { return n.mem }

// Locations exposes the location directory.
func (n *Node) Locations() *Locations { return n.locs }

// Forwarder exposes the cross-member request proxy.
func (n *Node) Forwarder() *Forwarder { return n.fwd }

// Authorized reports whether req carries the shared cluster secret —
// the ONLY acceptable proof that a request on a /cluster/ endpoint
// came from a peer member (the hop-chain header is client-settable
// and must never be trusted on its own) — AND, when the request names
// its origin member, that the origin's claimed fencing epoch is not
// below the fence raised for that address. The fence check is what
// stops a zombie ex-primary (dead to the cluster, standby promoted in
// its place) from double-delivering through /cluster/* writes.
func (n *Node) Authorized(req *transport.Request) bool {
	token := req.GetHeader(tokenHeader)
	if subtle.ConstantTimeCompare([]byte(token), []byte(n.cfg.Secret)) != 1 {
		return false
	}
	if origin := req.GetHeader(originHeader); origin != "" {
		if n.mem.FenceOf(origin) > requestEpoch(req) {
			return false
		}
	}
	return true
}

// Epoch returns this instance's fencing epoch.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// StampIdentity adds the cluster token plus this member's address and
// fencing epoch to an outgoing intra-cluster request — the same
// identity heartbeats carry, so replication streams are subject to the
// same zombie fencing.
func (n *Node) StampIdentity(req *transport.Request) {
	req.SetHeader(tokenHeader, n.cfg.Secret)
	req.SetHeader(originHeader, n.cfg.Self)
	req.SetHeader(epochHeader, strconv.FormatUint(n.Epoch(), 10))
}

// AdoptEpoch raises this instance's epoch to at least e — how a
// restarted member re-admits itself past the fence its standby raised.
func (n *Node) AdoptEpoch(e uint64) {
	for {
		cur := n.epoch.Load()
		if cur >= e || n.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Fenced reports whether this node has learned it is a fenced zombie:
// a peer refused its heartbeat with a fence epoch above its own, or
// gossip delivered a fence row for its address. A fenced gateway must
// refuse dispatches (it no longer owns its state — the standby does).
func (n *Node) Fenced() bool { return n.selfFenced.Load() }

func (n *Node) noteFenced(epoch uint64) {
	if n.epoch.Load() >= epoch {
		return // we already adopted past the fence (legitimate restart)
	}
	n.selfFenced.Store(true)
	n.log.Oncef("fenced", "cluster %s: fenced at epoch %d — a standby owns this member's state; refusing writes", n.cfg.Self, epoch)
}

// RaiseFence fences addr at a new, higher epoch and returns it. The
// promoting standby calls it before adopting the dead member's
// replica; gossip spreads the fence fleet-wide.
func (n *Node) RaiseFence(addr string) uint64 { return n.mem.RaiseFence(addr) }

// FenceOf returns addr's current fence epoch (0 if never fenced).
func (n *Node) FenceOf(addr string) uint64 { return n.mem.FenceOf(addr) }

// StandbyFor returns the warm-standby member for addr: the cyclic
// successor of addr in the sorted list of live members (addr itself
// included whether or not it is still alive, so the assignment is
// stable across its death). Returns "" when no other member is alive.
// Every member computes the same answer from a converged view, so
// exactly one live member considers itself the standby of each other
// member.
func (n *Node) StandbyFor(addr string) string {
	members := n.mem.AliveAddrs()
	set := make(map[string]bool, len(members)+1)
	for _, a := range members {
		set[a] = true
	}
	set[addr] = true
	sorted := make([]string, 0, len(set))
	for a := range set {
		sorted = append(sorted, a)
	}
	sort.Strings(sorted)
	idx := -1
	for i, a := range sorted {
		if a == addr {
			idx = i
			break
		}
	}
	for i := 1; i < len(sorted); i++ {
		cand := sorted[(idx+i)%len(sorted)]
		if cand != addr && set[cand] && cand != "" && n.mem.Alive(cand) {
			return cand
		}
	}
	return ""
}

// Handler serves the node's /cluster/ endpoints; the gateway mounts it
// alongside its own federation endpoints.
func (n *Node) Handler() transport.Handler { return n.mux }

// Tick runs one heartbeat round (deterministic driving for simulated
// worlds; Start wraps it in a wall-clock loop).
func (n *Node) Tick(ctx context.Context) int { return n.mem.Tick(ctx) }

// Start drives Tick on a fixed interval until Stop. Safe to call once.
func (n *Node) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	n.tickMu.Lock()
	defer n.tickMu.Unlock()
	if n.stopTick != nil {
		return
	}
	stop := make(chan struct{})
	n.stopTick = stop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n.Tick(context.Background())
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the Start loop (idempotent).
func (n *Node) Stop() {
	n.tickMu.Lock()
	defer n.tickMu.Unlock()
	if n.stopTick != nil {
		close(n.stopTick)
		n.stopTick = nil
	}
}

// Leave gossips a graceful departure and stops the tick loop: peers
// drop this member from the live view immediately instead of waiting
// for suspicion.
func (n *Node) Leave(ctx context.Context) {
	n.Stop()
	n.mem.Leave(ctx)
}

// currentRing returns the ring over the live member view, rebuilt only
// when membership changed.
func (n *Node) currentRing() *Ring {
	v := n.mem.Version()
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	if n.ring == nil || n.ringVer != v {
		n.ring = NewRing(n.mem.AliveAddrs(), n.cfg.VirtualNodes)
		n.ringVer = v
	}
	return n.ring
}

// Home returns the member that should own key under the current view:
// the consistent-hash owner, skipping members that are not alive or
// whose gossiped load exceeds the spill threshold. Returns "" when the
// view is empty (a draining last member).
func (n *Node) Home(key string) string {
	return n.HomeExcluding(key, nil)
}

// HomeExcluding is Home with extra members ruled out — the dispatch
// path uses it to reroute around a member whose forward just failed
// but whose eviction has not happened yet.
func (n *Node) HomeExcluding(key string, exclude map[string]bool) string {
	return n.currentRing().OwnerSkipping(key, func(addr string) bool {
		if exclude[addr] {
			return true
		}
		if !n.mem.Alive(addr) {
			return true
		}
		if n.cfg.SpillThreshold < 0 {
			return false
		}
		load, ok := n.mem.LoadOf(addr)
		return ok && load.QueueDepth+load.InFlight > n.cfg.SpillThreshold
	})
}

// PublishLocation applies one location event locally and pushes it to
// every live peer (best-effort — heartbeat piggyback repairs missed
// pushes). MAS arrival/departure hooks call this synchronously, so by
// the time a transfer is acked the fleet-wide directory already points
// at the receiver.
func (n *Node) PublishLocation(ctx context.Context, loc Location) {
	if !n.locs.Update(loc) {
		return // stale; nothing new to spread
	}
	if n.cfg.NoLocationPush {
		return // heartbeat piggyback only
	}
	doc := EncodeUpdate(loc)
	for _, addr := range n.mem.AliveAddrs() {
		if addr == n.cfg.Self {
			continue
		}
		req := &transport.Request{Path: "/cluster/loc", Body: doc}
		req.SetHeader(tokenHeader, n.cfg.Secret)
		// The push sits on agent admission/arrival paths, so one hung
		// peer must not stall the journey: each push gets its own wall
		// deadline (inert on the inline simulated fabric, where round
		// trips complete before it could fire).
		pushCtx, cancel := context.WithTimeout(ctx, locationPushTimeout)
		_, err := n.cfg.Transport.RoundTrip(pushCtx, addr, req)
		cancel()
		if err != nil && n.cfg.Logf != nil {
			n.cfg.Logf("cluster %s: location push to %s: %v", n.cfg.Self, addr, err)
		}
	}
}

// locationPushTimeout bounds one best-effort location push; heartbeat
// piggyback repairs anything a timed-out push missed.
const locationPushTimeout = 2 * time.Second

// handleLoc is the /cluster/loc push endpoint.
func (n *Node) handleLoc(_ context.Context, req *transport.Request) *transport.Response {
	if !n.Authorized(req) {
		return transport.Errorf(transport.StatusForbidden, "cluster: missing or wrong cluster token")
	}
	root, err := kxml.ParseBytes(req.Body)
	if err != nil || root.Name != "cluster-view" {
		return transport.Errorf(transport.StatusBadRequest, "cluster: bad location update")
	}
	n.locs.mergeFrom(root)
	return transport.OK(nil)
}

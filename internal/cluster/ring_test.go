package cluster

import (
	"fmt"
	"testing"
)

func keysFor(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = SubscriptionKey("app.echo", fmt.Sprintf("dev-%d", i))
	}
	return keys
}

func TestRingDeterministicAndComplete(t *testing.T) {
	members := []string{"gw-0", "gw-1", "gw-2"}
	a := NewRing(members, 0)
	b := NewRing([]string{"gw-2", "gw-0", "gw-1"}, 0) // order must not matter
	for _, k := range keysFor(500) {
		oa, ob := a.Owner(k), b.Owner(k)
		if oa != ob {
			t.Fatalf("owner differs by construction order: %s vs %s", oa, ob)
		}
		if oa == "" {
			t.Fatalf("no owner for %q", k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"gw-0", "gw-1", "gw-2", "gw-3"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	keys := keysFor(4000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Errorf("member %s owns %.0f%% of keys, want roughly 25%%", m, 100*share)
		}
	}
}

// TestRingRebalance is the satellite requirement: a join or leave must
// move at most ~K/N keys (consistent hashing's defining property), not
// reshuffle the space like modulo hashing would.
func TestRingRebalance(t *testing.T) {
	keys := keysFor(3000)
	three := NewRing([]string{"gw-0", "gw-1", "gw-2"}, 0)
	four := NewRing([]string{"gw-0", "gw-1", "gw-2", "gw-3"}, 0)

	moved := 0
	for _, k := range keys {
		before, after := three.Owner(k), four.Owner(k)
		if before != after {
			if after != "gw-3" {
				t.Fatalf("key %q moved %s -> %s on a join; only moves onto the joiner are allowed", k, before, after)
			}
			moved++
		}
	}
	// Expected share for the joiner is K/N = 1/4; allow generous slack
	// for hash variance but far below a reshuffle.
	if limit := len(keys) / 2; moved > limit {
		t.Fatalf("join moved %d of %d keys (> %d): not consistent", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Fatal("join moved no keys; the new member gets no load")
	}

	// Leave: removing gw-3 must restore exactly the old assignment.
	for _, k := range keys {
		if three.Owner(k) != NewRing([]string{"gw-2", "gw-1", "gw-0"}, 0).Owner(k) {
			t.Fatal("leave did not restore prior placement")
		}
		break // one spot check of reconstruction; full sweep below
	}
	movedBack := 0
	for _, k := range keys {
		if three.Owner(k) != four.Owner(k) {
			movedBack++
		}
	}
	if movedBack != moved {
		t.Fatalf("leave moved %d keys, join moved %d; they must mirror", movedBack, moved)
	}
}

func TestOwnerSkipping(t *testing.T) {
	r := NewRing([]string{"gw-0", "gw-1", "gw-2"}, 0)
	key := SubscriptionKey("app.echo", "alice")
	primary := r.Owner(key)

	spilled := r.OwnerSkipping(key, func(addr string) bool { return addr == primary })
	if spilled == primary || spilled == "" {
		t.Fatalf("skip of %s still placed on %q", primary, spilled)
	}
	// Skipping everything falls back to the primary rather than failing.
	all := r.OwnerSkipping(key, func(string) bool { return true })
	if all != primary {
		t.Fatalf("all-skipped fallback = %q, want primary %q", all, primary)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := r.OwnerSkipping("k", func(string) bool { return false }); got != "" {
		t.Fatalf("empty ring spill owner = %q", got)
	}
}

package cluster

import (
	"strconv"
	"sync"

	"pdagent/internal/kxml"
)

// defaultMaxLocations bounds the location table; the oldest terminal
// entries are evicted first, then the oldest of all.
const defaultMaxLocations = 8192

// maxPiggyback bounds how many location updates ride one heartbeat.
const maxPiggyback = 128

// Location is one agent's entry in the replicated location directory:
// a forwarding pointer to the MAS currently (or last known to be)
// holding the agent, plus the gateway that owns its dispatch.
type Location struct {
	// AgentID is the agent.
	AgentID string
	// Addr is the MAS address the agent was last placed at (for a
	// departure this is the *destination* — a forwarding pointer).
	Addr string
	// HomeGW is the gateway whose embedded MAS is the agent's home
	// (where its journal and result document live).
	HomeGW string
	// Seq orders updates per agent: departures publish 2*hops+1,
	// arrivals 2*(hops+1), terminal delivery 2*hops+3 — later events
	// always carry higher numbers, so replicas converge regardless of
	// gossip order.
	Seq int
	// Terminal marks the journey over (result delivered or agent
	// disposed); the entry is then eviction-eligible.
	Terminal bool
}

// Locations is the agent-location table. Every cluster member holds a
// replica: local MAS hooks update it synchronously, and heartbeats
// piggyback recent updates so peers converge without extra round
// trips. Lookups answer with the freshest pointer seen; the gateway
// chase path treats it as a hint and still follows live moved-to
// pointers, so staleness costs hops, never correctness.
type Locations struct {
	mu      sync.Mutex
	byAgent map[string]*Location
	order   []string // insertion order for eviction
	recent  []string // agent ids with updates not yet gossiped
	max     int
}

// NewLocations builds an empty table (maxEntries 0 means the default).
func NewLocations(maxEntries int) *Locations {
	if maxEntries <= 0 {
		maxEntries = defaultMaxLocations
	}
	return &Locations{byAgent: map[string]*Location{}, max: maxEntries}
}

// Update folds one location event into the table; stale events (Seq
// not newer than the stored one) are ignored. Returns whether the
// event was applied.
func (l *Locations) Update(loc Location) bool {
	if loc.AgentID == "" {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.updateLocked(loc)
}

func (l *Locations) updateLocked(loc Location) bool {
	cur, ok := l.byAgent[loc.AgentID]
	if ok && loc.Seq <= cur.Seq {
		return false
	}
	if ok {
		// Preserve a known home gateway if the newer event omits it.
		if loc.HomeGW == "" {
			loc.HomeGW = cur.HomeGW
		}
		*cur = loc
	} else {
		entry := loc
		l.byAgent[loc.AgentID] = &entry
		l.order = append(l.order, loc.AgentID)
		l.evictLocked()
	}
	l.noteRecentLocked(loc.AgentID)
	return true
}

// noteRecentLocked queues an agent id for heartbeat piggyback.
func (l *Locations) noteRecentLocked(id string) {
	for _, r := range l.recent {
		if r == id {
			return
		}
	}
	l.recent = append(l.recent, id)
	if len(l.recent) > maxPiggyback {
		l.recent = l.recent[len(l.recent)-maxPiggyback:]
	}
}

// evictLocked enforces the size bound: terminal entries age out first,
// then the oldest entries of all. Eviction runs in batches — it kicks
// in at 9/8 of the cap and trims back down to the cap — so the O(n)
// sweep amortises over max/8 inserts instead of running per insert on
// a full table.
func (l *Locations) evictLocked() {
	if len(l.byAgent) <= l.max+l.max/8 {
		return
	}
	keep := l.order[:0]
	dropped := 0
	need := len(l.byAgent) - l.max
	for _, id := range l.order {
		e, ok := l.byAgent[id]
		if !ok {
			continue
		}
		if dropped < need && e.Terminal {
			delete(l.byAgent, id)
			dropped++
			continue
		}
		keep = append(keep, id)
	}
	l.order = keep
	for dropped < need && len(l.order) > 0 {
		id := l.order[0]
		l.order = l.order[1:]
		if _, ok := l.byAgent[id]; ok {
			delete(l.byAgent, id)
			dropped++
		}
	}
}

// Get returns the freshest known location of an agent.
func (l *Locations) Get(agentID string) (Location, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.byAgent[agentID]
	if !ok {
		return Location{}, false
	}
	return *e, true
}

// Len returns the number of tracked agents.
func (l *Locations) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byAgent)
}

// appendRecent adds up to maxPiggyback <loc> elements (the most recent
// updates) to a cluster-view document and clears the pending set.
func (l *Locations) appendRecent(root *kxml.Node) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, id := range l.recent {
		e, ok := l.byAgent[id]
		if !ok {
			continue
		}
		n := root.AddElement("loc")
		n.SetAttr("agent", e.AgentID)
		n.SetAttr("addr", e.Addr)
		n.SetAttr("home-gw", e.HomeGW)
		n.SetAttr("seq", strconv.Itoa(e.Seq))
		if e.Terminal {
			n.SetAttr("terminal", "1")
		}
	}
	l.recent = l.recent[:0]
}

// mergeFrom folds the <loc> entries of a received cluster-view
// document into the table. Applied updates re-enter the piggyback
// queue, so location knowledge spreads transitively.
func (l *Locations) mergeFrom(root *kxml.Node) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, child := range root.Children {
		if child.Name != "loc" {
			continue
		}
		l.updateLocked(Location{
			AgentID:  child.AttrDefault("agent", ""),
			Addr:     child.AttrDefault("addr", ""),
			HomeGW:   child.AttrDefault("home-gw", ""),
			Seq:      atoiDefault(child.AttrDefault("seq", "0")),
			Terminal: child.AttrDefault("terminal", "") == "1",
		})
	}
}

// EncodeUpdate renders one location event as a standalone document for
// the /cluster/loc push endpoint.
func EncodeUpdate(loc Location) []byte {
	root := kxml.NewElement("cluster-view")
	root.SetAttr("from", "")
	n := root.AddElement("loc")
	n.SetAttr("agent", loc.AgentID)
	n.SetAttr("addr", loc.Addr)
	n.SetAttr("home-gw", loc.HomeGW)
	n.SetAttr("seq", strconv.Itoa(loc.Seq))
	if loc.Terminal {
		n.SetAttr("terminal", "1")
	}
	return root.EncodeDocument()
}

package cluster

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"pdagent/internal/transport"
)

// fwdHeader carries the comma-separated chain of members a request has
// already visited; Forward refuses to send a request back into its own
// chain, so mis-routed traffic can never cycle between members with
// disagreeing views.
const fwdHeader = "x-cluster-fwd"

// tokenHeader carries the shared cluster secret. The /cluster/
// endpoints sit on the same listener as device traffic and the HTTP
// adapter copies client headers verbatim, so the hop chain alone must
// never be treated as proof that a request came from a peer — only
// the token is.
const tokenHeader = "x-cluster-token"

// originHeader names the member a request claims to come from, and
// epochHeader the fencing epoch that instance of the member holds.
// Neither is proof of identity on its own (headers are
// client-settable) — they are meaningful only AFTER the token check,
// as the fencing discriminator between a live member and a fenced
// zombie of the same address (DESIGN.md §10).
const (
	originHeader = "x-cluster-origin"
	epochHeader  = "x-cluster-epoch"
	// fencedEpochHeader rides a Forbidden reply to tell a zombie the
	// epoch it was fenced at.
	fencedEpochHeader = "x-cluster-fenced-epoch"
)

// maxForwardHops bounds a forwarding chain even across disjoint views.
const maxForwardHops = 4

// ErrForwardLoop is returned when a forward would revisit a member
// already in the request's chain (or the chain is too long).
var ErrForwardLoop = fmt.Errorf("cluster: forwarding loop")

// Forwarder proxies requests between cluster members over the shared
// transport, tagging each hop for loop protection and stamping the
// shared cluster secret.
type Forwarder struct {
	self    string
	rt      transport.RoundTripper
	secret  string
	epochFn func() uint64 // nil: epoch 0
}

// NewForwarder builds a forwarder identifying itself as self.
func NewForwarder(self string, rt transport.RoundTripper, secret string) *Forwarder {
	return &Forwarder{self: self, rt: rt, secret: secret}
}

// SetEpochFn installs the fencing-epoch reporter stamped on every
// forwarded request (Node wiring).
func (f *Forwarder) SetEpochFn(fn func() uint64) { f.epochFn = fn }

// Chain returns the members a request has already visited.
func Chain(req *transport.Request) []string {
	h := req.GetHeader(fwdHeader)
	if h == "" {
		return nil
	}
	return strings.Split(h, ",")
}

// Origin returns the member address a request claims to come from (""
// if unstamped). Like the hop chain it is client-settable, so it is
// meaningful only AFTER Node.Authorized accepted the request.
func Origin(req *transport.Request) string { return req.GetHeader(originHeader) }

// Forwarded reports whether req already crossed at least one member —
// gateway endpoints use it to trust intra-cluster requests and to
// refuse re-forwarding.
func Forwarded(req *transport.Request) bool { return req.GetHeader(fwdHeader) != "" }

// Forward sends req to addr with this member appended to the hop
// chain. It refuses loops (addr already in the chain, or chain at the
// hop bound) with ErrForwardLoop rather than putting the request back
// on the wire.
func (f *Forwarder) Forward(ctx context.Context, addr string, req *transport.Request) (*transport.Response, error) {
	chain := Chain(req)
	if len(chain) >= maxForwardHops {
		return nil, fmt.Errorf("%w: chain %v at bound %d", ErrForwardLoop, chain, maxForwardHops)
	}
	for _, h := range chain {
		if h == addr || h == f.self {
			return nil, fmt.Errorf("%w: %s already in chain %v", ErrForwardLoop, addr, chain)
		}
	}
	fwd := &transport.Request{Path: req.Path, Body: req.Body}
	for k, v := range req.Header {
		fwd.SetHeader(k, v)
	}
	if len(chain) == 0 {
		fwd.SetHeader(fwdHeader, f.self)
	} else {
		fwd.SetHeader(fwdHeader, strings.Join(chain, ",")+","+f.self)
	}
	fwd.SetHeader(tokenHeader, f.secret)
	fwd.SetHeader(originHeader, f.self)
	epoch := uint64(0)
	if f.epochFn != nil {
		epoch = f.epochFn()
	}
	fwd.SetHeader(epochHeader, strconv.FormatUint(epoch, 10))
	return f.rt.RoundTrip(ctx, addr, fwd)
}

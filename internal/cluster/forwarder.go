package cluster

import (
	"context"
	"fmt"
	"strings"

	"pdagent/internal/transport"
)

// fwdHeader carries the comma-separated chain of members a request has
// already visited; Forward refuses to send a request back into its own
// chain, so mis-routed traffic can never cycle between members with
// disagreeing views.
const fwdHeader = "x-cluster-fwd"

// tokenHeader carries the shared cluster secret. The /cluster/
// endpoints sit on the same listener as device traffic and the HTTP
// adapter copies client headers verbatim, so the hop chain alone must
// never be treated as proof that a request came from a peer — only
// the token is.
const tokenHeader = "x-cluster-token"

// maxForwardHops bounds a forwarding chain even across disjoint views.
const maxForwardHops = 4

// ErrForwardLoop is returned when a forward would revisit a member
// already in the request's chain (or the chain is too long).
var ErrForwardLoop = fmt.Errorf("cluster: forwarding loop")

// Forwarder proxies requests between cluster members over the shared
// transport, tagging each hop for loop protection and stamping the
// shared cluster secret.
type Forwarder struct {
	self   string
	rt     transport.RoundTripper
	secret string
}

// NewForwarder builds a forwarder identifying itself as self.
func NewForwarder(self string, rt transport.RoundTripper, secret string) *Forwarder {
	return &Forwarder{self: self, rt: rt, secret: secret}
}

// Chain returns the members a request has already visited.
func Chain(req *transport.Request) []string {
	h := req.GetHeader(fwdHeader)
	if h == "" {
		return nil
	}
	return strings.Split(h, ",")
}

// Forwarded reports whether req already crossed at least one member —
// gateway endpoints use it to trust intra-cluster requests and to
// refuse re-forwarding.
func Forwarded(req *transport.Request) bool { return req.GetHeader(fwdHeader) != "" }

// Forward sends req to addr with this member appended to the hop
// chain. It refuses loops (addr already in the chain, or chain at the
// hop bound) with ErrForwardLoop rather than putting the request back
// on the wire.
func (f *Forwarder) Forward(ctx context.Context, addr string, req *transport.Request) (*transport.Response, error) {
	chain := Chain(req)
	if len(chain) >= maxForwardHops {
		return nil, fmt.Errorf("%w: chain %v at bound %d", ErrForwardLoop, chain, maxForwardHops)
	}
	for _, h := range chain {
		if h == addr || h == f.self {
			return nil, fmt.Errorf("%w: %s already in chain %v", ErrForwardLoop, addr, chain)
		}
	}
	fwd := &transport.Request{Path: req.Path, Body: req.Body}
	for k, v := range req.Header {
		fwd.SetHeader(k, v)
	}
	if len(chain) == 0 {
		fwd.SetHeader(fwdHeader, f.self)
	} else {
		fwd.SetHeader(fwdHeader, strings.Join(chain, ",")+","+f.self)
	}
	fwd.SetHeader(tokenHeader, f.secret)
	return f.rt.RoundTrip(ctx, addr, fwd)
}

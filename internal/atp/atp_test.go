package atp

import (
	"strings"
	"testing"
	"testing/quick"

	"pdagent/internal/mascript"
	"pdagent/internal/mavm"
)

// realImage builds an Image from an actual compiled agent so payloads
// are representative.
func realImage(t *testing.T) *Image {
	t.Helper()
	prog, err := mascript.Compile(`
		let x = [1, 2, 3];
		migrate("host-b");
		deliver("x", x);
	`)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := mavm.New(prog, "ag-test-1", map[string]mavm.Value{"p": mavm.Str("v")})
	if err != nil {
		t.Fatal(err)
	}
	pbytes, err := mavm.MarshalProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	sbytes, err := mavm.MarshalState(vm)
	if err != nil {
		t.Fatal(err)
	}
	return &Image{
		AgentID: "ag-test-1",
		Home:    "gw-0",
		CodeID:  "code-7",
		Owner:   "device-42",
		Program: pbytes,
		State:   sbytes,
	}
}

func codecs() []Codec { return []Codec{AgletsCodec{}, VoyagerCodec{}} }

func TestCodecRoundTrip(t *testing.T) {
	im := realImage(t)
	for _, c := range codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Encode(im)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			back, err := c.Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if back.AgentID != im.AgentID || back.Home != im.Home ||
				back.CodeID != im.CodeID || back.Owner != im.Owner {
				t.Fatalf("identity fields changed: %+v", back)
			}
			if string(back.Program) != string(im.Program) || string(back.State) != string(im.State) {
				t.Fatal("payload bytes changed")
			}
			// The decoded image must reconstruct a runnable VM.
			prog, err := mavm.UnmarshalProgram(back.Program)
			if err != nil {
				t.Fatalf("program from decoded image: %v", err)
			}
			if _, err := mavm.UnmarshalState(prog, back.State); err != nil {
				t.Fatalf("state from decoded image: %v", err)
			}
		})
	}
}

func TestCrossCodecIsolation(t *testing.T) {
	// One flavour must not silently accept the other's envelopes.
	im := realImage(t)
	a, _ := AgletsCodec{}.Encode(im)
	v, _ := VoyagerCodec{}.Encode(im)
	if _, err := (VoyagerCodec{}).Decode(a); err == nil {
		t.Error("voyager decoded an aglets envelope")
	}
	if _, err := (AgletsCodec{}).Decode(v); err == nil {
		t.Error("aglets decoded a voyager envelope")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Flavours() {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("jade"); err == nil {
		t.Error("unknown flavour accepted")
	}
}

func TestValidation(t *testing.T) {
	base := realImage(t)
	mutations := map[string]func(*Image){
		"no id":      func(im *Image) { im.AgentID = "" },
		"no home":    func(im *Image) { im.Home = "" },
		"no program": func(im *Image) { im.Program = nil },
		"no state":   func(im *Image) { im.State = nil },
	}
	for name, mutate := range mutations {
		im := *base
		mutate(&im)
		if err := im.Validate(); err == nil {
			t.Errorf("%s: Validate passed", name)
		}
		for _, c := range codecs() {
			if _, err := c.Encode(&im); err == nil {
				t.Errorf("%s: %s Encode accepted invalid image", name, c.Name())
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	im := realImage(t)
	for _, c := range codecs() {
		good, _ := c.Encode(im)
		cases := map[string][]byte{
			"empty":     {},
			"garbage":   []byte("garbage input that is not an envelope"),
			"truncated": good[:len(good)/3],
		}
		for name, data := range cases {
			if _, err := c.Decode(data); err == nil {
				t.Errorf("%s/%s: Decode succeeded", c.Name(), name)
			}
		}
	}
	// Oversized input.
	big := make([]byte, MaxImageSize+1)
	for _, c := range codecs() {
		if _, err := c.Decode(big); err == nil {
			t.Errorf("%s: oversized input accepted", c.Name())
		}
	}
}

func TestAgletsTruncationSweep(t *testing.T) {
	im := realImage(t)
	data, _ := AgletsCodec{}.Encode(im)
	step := len(data)/50 + 1
	for cut := 0; cut < len(data); cut += step {
		if _, err := (AgletsCodec{}).Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestQuickIdentityFieldsRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		c := c
		f := func(id, home, codeID, owner string, prog, state []byte) bool {
			if id == "" || home == "" || len(prog) == 0 || len(state) == 0 {
				return true // invalid images are rejected; covered elsewhere
			}
			im := &Image{AgentID: id, Home: home, CodeID: codeID, Owner: owner, Program: prog, State: state}
			data, err := c.Encode(im)
			if err != nil {
				return false
			}
			back, err := c.Decode(data)
			if err != nil {
				return false
			}
			return back.AgentID == id && back.Home == home && back.CodeID == codeID &&
				back.Owner == owner && string(back.Program) == string(prog) && string(back.State) == string(state)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestVoyagerEnvelopeIsXML(t *testing.T) {
	data, _ := VoyagerCodec{}.Encode(realImage(t))
	if !strings.Contains(string(data), "<voyager-agent") {
		t.Fatalf("voyager envelope not XML: %q", data[:40])
	}
}

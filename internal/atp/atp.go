// Package atp implements the Agent Transfer Protocol: the wire format
// a mobile agent travels in between mobile-agent servers (and between
// the gateway and MAS hosts).
//
// The paper's claim (i) is that PDAgent "supports the adoption of any
// kind of mobile agent system at network hosts" — the gateway wraps the
// user's MA code "into a mobile agent in a form supported by the
// network sites". To exercise that adapter machinery this package
// provides two interchangeable codec flavours:
//
//   - "aglets": a compact binary envelope in the spirit of IBM Aglets'
//     ATP (the MAS brand the paper's prototype used);
//   - "voyager": an XML envelope in the spirit of ObjectSpace Voyager's
//     text-first formats.
//
// A host speaks exactly one flavour; senders discover it via the
// /atp/hello handshake and encode accordingly, which is the same
// adaptation the paper's Agent Creator performs.
package atp

import (
	"bytes"
	"encoding/base64"
	"fmt"

	"pdagent/internal/kxml"
)

// Image is a complete mobile agent in transit: its identity plus the
// serialised program and VM state.
type Image struct {
	// AgentID is the globally unique agent identifier. It doubles as
	// the journey's trace id (DESIGN.md §11): minted once at dispatch,
	// it already rides every transfer image, result document and
	// mailbox event on the itinerary, so tracing adds no identifier to
	// the wire protocol.
	AgentID string
	// Home is the gateway address the agent returns results to.
	Home string
	// CodeID is the subscription code-package id the agent was built
	// from (paper §3.1).
	CodeID string
	// Owner identifies the dispatching device/user.
	Owner string
	// Program is the mavm.MarshalProgram encoding of the agent's code.
	Program []byte
	// State is the mavm.MarshalState encoding of the agent's execution
	// state.
	State []byte
}

// Validate checks the identity fields and payload presence.
func (im *Image) Validate() error {
	if im.AgentID == "" {
		return fmt.Errorf("atp: image missing agent id")
	}
	if im.Home == "" {
		return fmt.Errorf("atp: image %s missing home", im.AgentID)
	}
	if len(im.Program) == 0 {
		return fmt.Errorf("atp: image %s missing program", im.AgentID)
	}
	if len(im.State) == 0 {
		return fmt.Errorf("atp: image %s missing state", im.AgentID)
	}
	return nil
}

// Codec converts agent images to and from one MAS flavour's wire form.
type Codec interface {
	// Name is the flavour identifier used in the /atp/hello handshake.
	Name() string
	// Encode serialises an image.
	Encode(im *Image) ([]byte, error)
	// Decode parses an image and validates it.
	Decode(data []byte) (*Image, error)
}

// ByName returns the codec for a flavour name.
func ByName(name string) (Codec, error) {
	switch name {
	case "aglets":
		return AgletsCodec{}, nil
	case "voyager":
		return VoyagerCodec{}, nil
	default:
		return nil, fmt.Errorf("atp: unknown MAS flavour %q", name)
	}
}

// Flavours lists the supported codec names.
func Flavours() []string { return []string{"aglets", "voyager"} }

// MaxImageSize bounds decode input.
const MaxImageSize = 16 << 20

// --- aglets flavour: binary --------------------------------------------

// AgletsCodec is the binary flavour.
type AgletsCodec struct{}

var agletsMagic = []byte("ATPA1")

// Name implements Codec.
func (AgletsCodec) Name() string { return "aglets" }

// Encode implements Codec.
func (AgletsCodec) Encode(im *Image) ([]byte, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	b.Write(agletsMagic)
	for _, s := range []string{im.AgentID, im.Home, im.CodeID, im.Owner} {
		writeLenPrefixed(&b, []byte(s))
	}
	writeLenPrefixed(&b, im.Program)
	writeLenPrefixed(&b, im.State)
	return b.Bytes(), nil
}

// Decode implements Codec.
func (AgletsCodec) Decode(data []byte) (*Image, error) {
	if len(data) > MaxImageSize {
		return nil, fmt.Errorf("atp: image of %d bytes exceeds limit", len(data))
	}
	if len(data) < len(agletsMagic) || !bytes.Equal(data[:len(agletsMagic)], agletsMagic) {
		return nil, fmt.Errorf("atp: bad aglets envelope magic")
	}
	rest := data[len(agletsMagic):]
	fields := make([][]byte, 6)
	for i := range fields {
		var f []byte
		var err error
		f, rest, err = readLenPrefixed(rest)
		if err != nil {
			return nil, fmt.Errorf("atp: aglets envelope field %d: %w", i, err)
		}
		fields[i] = f
	}
	im := &Image{
		AgentID: string(fields[0]),
		Home:    string(fields[1]),
		CodeID:  string(fields[2]),
		Owner:   string(fields[3]),
		Program: fields[4],
		State:   fields[5],
	}
	if err := im.Validate(); err != nil {
		return nil, err
	}
	return im, nil
}

func writeLenPrefixed(b *bytes.Buffer, data []byte) {
	var hdr [4]byte
	hdr[0] = byte(len(data) >> 24)
	hdr[1] = byte(len(data) >> 16)
	hdr[2] = byte(len(data) >> 8)
	hdr[3] = byte(len(data))
	b.Write(hdr[:])
	b.Write(data)
}

func readLenPrefixed(data []byte) (field, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("truncated length")
	}
	n := int(data[0])<<24 | int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	if n < 0 || n > len(data)-4 {
		return nil, nil, fmt.Errorf("field length %d out of range", n)
	}
	out := make([]byte, n)
	copy(out, data[4:4+n])
	return out, data[4+n:], nil
}

// --- voyager flavour: XML ----------------------------------------------

// VoyagerCodec is the XML flavour.
type VoyagerCodec struct{}

// Name implements Codec.
func (VoyagerCodec) Name() string { return "voyager" }

// Encode implements Codec.
func (VoyagerCodec) Encode(im *Image) ([]byte, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	root := kxml.NewElement("voyager-agent")
	root.SetAttr("id", im.AgentID)
	root.SetAttr("home", im.Home)
	root.SetAttr("code-id", im.CodeID)
	root.SetAttr("owner", im.Owner)
	root.AddElement("program").AddText(base64.StdEncoding.EncodeToString(im.Program))
	root.AddElement("state").AddText(base64.StdEncoding.EncodeToString(im.State))
	return root.EncodeDocument(), nil
}

// Decode implements Codec.
func (VoyagerCodec) Decode(data []byte) (*Image, error) {
	if len(data) > MaxImageSize {
		return nil, fmt.Errorf("atp: image of %d bytes exceeds limit", len(data))
	}
	root, err := kxml.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("atp: voyager envelope: %w", err)
	}
	if root.Name != "voyager-agent" {
		return nil, fmt.Errorf("atp: voyager envelope has root <%s>", root.Name)
	}
	im := &Image{
		AgentID: root.AttrDefault("id", ""),
		Home:    root.AttrDefault("home", ""),
		CodeID:  root.AttrDefault("code-id", ""),
		Owner:   root.AttrDefault("owner", ""),
	}
	if im.Program, err = base64.StdEncoding.DecodeString(root.ChildText("program")); err != nil {
		return nil, fmt.Errorf("atp: voyager program payload: %w", err)
	}
	if im.State, err = base64.StdEncoding.DecodeString(root.ChildText("state")); err != nil {
		return nil, fmt.Errorf("atp: voyager state payload: %w", err)
	}
	if err := im.Validate(); err != nil {
		return nil, err
	}
	return im, nil
}

package device

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdagent/internal/compress"
	"pdagent/internal/gateway"
	"pdagent/internal/mavm"
	"pdagent/internal/netsim"
	"pdagent/internal/pisec"
	"pdagent/internal/push"
	"pdagent/internal/rms"
	"pdagent/internal/transport"
	"pdagent/internal/wire"
)

// newSessionFixture is newFixture with the gateway's mailbox subsystem
// enabled (device sessions need somewhere to deliver from).
func newSessionFixture(t *testing.T, cfgMut func(*Config)) *fixture {
	t.Helper()
	f := &fixture{
		net:   netsim.New(2),
		queue: &netsim.Queue{},
		store: rms.NewMemStore("dev-db", 0),
	}
	f.net.SetLinkBoth(netsim.ZoneWireless, netsim.ZoneWired, netsim.Link{Latency: 50 * time.Millisecond})
	f.net.SetLinkBoth(netsim.ZoneWired, netsim.ZoneWired, netsim.Link{Latency: time.Millisecond})
	kpOnce.Do(func() {
		k, err := pisec.GenerateKeyPair(1024)
		if err != nil {
			t.Fatal(err)
		}
		kp = k
	})
	gw, err := gateway.New(gateway.Config{
		Addr:      "gw-d",
		KeyPair:   kp,
		Transport: f.net.Transport(netsim.ZoneWired),
		Spawn:     f.queue.Go,
		Mailbox:   &gateway.MailboxConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.AddCodePackage(&wire.CodePackage{
		CodeID: "echo", Name: "Echo", Version: "1",
		Source: `deliver("echo", params()); deliver("id", agentid());`,
	}); err != nil {
		t.Fatal(err)
	}
	f.gw = gw
	f.net.AddHost("gw-d", netsim.ZoneWired, gw.Handler())

	cfg := Config{
		Owner:     "test-dev",
		Transport: f.net.Transport(netsim.ZoneWireless),
		Store:     f.store,
		Codec:     compress.LZSS,
		Secure:    true,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	plat, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.SetGateways([]string{"gw-d"}); err != nil {
		t.Fatal(err)
	}
	f.plat = plat
	return f
}

// TestSessionDeliversResultViaMailbox: the device never calls Collect —
// the result arrives through the session mailbox, exactly once.
func TestSessionDeliversResultViaMailbox(t *testing.T) {
	f := newSessionFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	id, err := f.plat.Dispatch(ctx, "echo", map[string]mavm.Value{"k": mavm.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	f.queue.Drain()

	s, err := f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gateway != "gw-d" || len(s.Deliveries) != 1 {
		t.Fatalf("session = %+v", s)
	}
	d := s.Deliveries[0]
	if d.Kind != push.KindResult || d.AgentID != id || d.Result == nil || !d.Result.OK() {
		t.Fatalf("delivery = %+v", d)
	}
	echo, _ := d.Result.Get("echo")
	if echo.MapEntries()["k"].AsInt() != 7 {
		t.Fatalf("echo = %v", echo)
	}
	// The delivered journey is closed like a Collect.
	if got := f.plat.Pending(); len(got) != 0 {
		t.Fatalf("pending after delivery = %v", got)
	}
	// Exactly once: a second session delivers nothing.
	s2, err := f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Deliveries) != 0 {
		t.Fatalf("second session redelivered: %+v", s2.Deliveries)
	}
}

// TestQueueDispatchDrainsOnReconnect: executions queued while the
// uplink is down are uploaded by the next session, and their results
// come back through the mailbox.
func TestQueueDispatchDrainsOnReconnect(t *testing.T) {
	f := newSessionFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}

	// Uplink down: a live dispatch fails, queueing does not (offline).
	if err := f.net.SetDown("gw-d", true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.plat.Dispatch(ctx, "echo", nil); err == nil {
		t.Fatal("dispatch succeeded with the gateway down")
	}
	qid, err := f.plat.QueueDispatch("echo", map[string]mavm.Value{"k": mavm.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if q := f.plat.QueuedDispatches(); len(q) != 1 || q[0] != qid {
		t.Fatalf("queued = %v", q)
	}
	// A session with the uplink still down keeps the queue intact.
	if s, err := f.plat.OpenSession(ctx); err == nil {
		t.Fatalf("session succeeded offline: %+v", s)
	}
	if q := f.plat.QueuedDispatches(); len(q) != 1 {
		t.Fatalf("offline session lost the queue: %v", q)
	}

	// Reconnect: the session drains the queue...
	if err := f.net.SetDown("gw-d", false); err != nil {
		t.Fatal(err)
	}
	s, err := f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dispatched) != 1 || s.QueuedLeft != 0 || len(f.plat.QueuedDispatches()) != 0 {
		t.Fatalf("drain = %+v", s)
	}
	// ...and the next session delivers the result.
	f.queue.Drain()
	s2, err := f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Deliveries) != 1 || s2.Deliveries[0].AgentID != s.Dispatched[0] {
		t.Fatalf("deliveries = %+v", s2.Deliveries)
	}
}

// TestSessionStateSurvivesPlatformRestart: cursor, session gateway and
// the offline queue live in the RMS database; a fresh platform instance
// over the same store resumes exactly where the old one stopped.
func TestSessionStateSurvivesPlatformRestart(t *testing.T) {
	f := newSessionFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.plat.Dispatch(ctx, "echo", nil); err != nil {
		t.Fatal(err)
	}
	f.queue.Drain()
	if s, err := f.plat.OpenSession(ctx); err != nil || len(s.Deliveries) != 1 {
		t.Fatalf("first session: %+v, %v", s, err)
	}
	if _, err := f.plat.QueueDispatch("echo", nil); err != nil {
		t.Fatal(err)
	}
	cursor := f.plat.Cursor("gw-d")
	if cursor == 0 {
		t.Fatal("cursor not advanced")
	}

	// "Restart" the device: new platform, same database.
	plat2, err := NewPlatform(Config{
		Owner:     "test-dev",
		Transport: f.net.Transport(netsim.ZoneWireless),
		Store:     f.store,
		Codec:     compress.LZSS,
		Secure:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plat2.SessionGateway() != "gw-d" || plat2.Cursor("gw-d") != cursor {
		t.Fatalf("restart lost session state: gw %q cursor %d", plat2.SessionGateway(), plat2.Cursor("gw-d"))
	}
	if q := plat2.QueuedDispatches(); len(q) != 1 {
		t.Fatalf("restart lost the offline queue: %v", q)
	}
	s, err := plat2.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The queued dispatch went out; no duplicate delivery of the old
	// result (the cursor survived).
	if len(s.Dispatched) != 1 || len(s.Deliveries) != 0 {
		t.Fatalf("restarted session = %+v", s)
	}
}

// TestBackoffChargesJourneyClock: retries behind a lossy uplink charge
// the virtual clock (latency + jittered exponential backoff) instead of
// hot-looping.
func TestBackoffChargesJourneyClock(t *testing.T) {
	f := newSessionFixture(t, func(c *Config) {
		c.RetryBase = 200 * time.Millisecond
		c.RetryMax = time.Second
	})
	f.net.SetLinkBoth(netsim.ZoneWireless, netsim.ZoneWired,
		netsim.Link{Latency: 50 * time.Millisecond, Loss: 1.0})

	clock := netsim.NewClock()
	ctx := netsim.WithClock(context.Background(), clock)
	_, err := f.plat.roundTrip(ctx, "gw-d", &transport.Request{Path: "/pdagent/ping"})
	if err == nil || !errors.Is(err, netsim.ErrLost) {
		t.Fatalf("err = %v, want ErrLost", err)
	}
	// 3 attempts charge 3 uplink latencies plus two backoffs: the
	// first in [100ms,200ms], the second in [200ms,400ms].
	min := 3*50*time.Millisecond + 100*time.Millisecond + 200*time.Millisecond
	max := 3*(50+300)*time.Millisecond + 200*time.Millisecond + 400*time.Millisecond
	if got := clock.Now(); got < min || got > max {
		t.Fatalf("clock charged %v, want within [%v, %v]", got, min, max)
	}
}

// TestBackoffHonoursCancellation: without a virtual clock the backoff
// waits real time, and a context cancellation cuts it short instead of
// finishing the full exponential schedule.
func TestBackoffHonoursCancellation(t *testing.T) {
	f := newSessionFixture(t, func(c *Config) {
		c.RetryBase = 30 * time.Second // would block ~45s without cancellation
		c.Retries = 5
	})
	if err := f.net.SetDown("gw-d", true); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := f.plat.roundTrip(ctx, "gw-d", &transport.Request{Path: "/pdagent/ping"})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, backoff not interruptible", elapsed)
	}
}

// lossyDispatch wraps a transport and swallows the response of the
// first successful /pdagent/dispatch: the gateway processed the upload
// but the device never heard back — the classic wireless failure the
// offline queue must survive.
type lossyDispatch struct {
	inner   transport.RoundTripper
	tripped bool
}

func (l *lossyDispatch) RoundTrip(ctx context.Context, addr string, req *transport.Request) (*transport.Response, error) {
	resp, err := l.inner.RoundTrip(ctx, addr, req)
	if err == nil && req.Path == "/pdagent/dispatch" && !l.tripped {
		l.tripped = true
		return nil, errors.New("simulated lost dispatch response")
	}
	return resp, err
}

// TestQueueDrainSurvivesLostDispatchResponse is the queue-wedge
// regression: the upload reaches the gateway but the response is lost.
// The retry re-sends the same nonce and must receive the ORIGINAL
// agent id back (idempotent dispatch), draining the queue with exactly
// one agent created — not a permanent replay refusal, not a second
// agent.
func TestQueueDrainSurvivesLostDispatchResponse(t *testing.T) {
	f := newSessionFixture(t, func(c *Config) {
		c.Transport = &lossyDispatch{inner: c.Transport}
	})
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.plat.QueueDispatch("echo", map[string]mavm.Value{"k": mavm.Int(9)}); err != nil {
		t.Fatal(err)
	}
	s, err := f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatalf("session wedged on lost response: %v", err)
	}
	if len(s.Dispatched) != 1 || s.QueuedLeft != 0 {
		t.Fatalf("drain = %+v, want 1 dispatched / 0 left", s)
	}
	if n := f.gw.Registry().NumAgents(); n != 1 {
		t.Fatalf("gateway has %d agents, want exactly 1 (retry must not double-admit)", n)
	}
	// The journey completes and delivers once.
	f.queue.Drain()
	s2, err := f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Deliveries) != 1 || s2.Deliveries[0].AgentID != s.Dispatched[0] {
		t.Fatalf("deliveries = %+v", s2.Deliveries)
	}
}

// TestResultWithoutPendingRecordStillDelivered is the lost-clone
// regression: a result arrives for a journey the device has no pending
// record of (e.g. the clone response was lost on the wireless leg).
// It must be DELIVERED — only results the device already collected
// directly are duplicates to drop.
func TestResultWithoutPendingRecordStillDelivered(t *testing.T) {
	f := newSessionFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	// Make the device known to the mailbox, then file a result for an
	// agent it never recorded (the lost-clone shape).
	id, err := f.plat.Dispatch(ctx, "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	f.queue.Drain()
	orphan := &wire.ResultDocument{AgentID: "ag-lost-clone", CodeID: "echo", Owner: "test-dev", Status: "done"}
	doc, err := orphan.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.gw.Mailbox().Enqueue("test-dev", push.KindResult, orphan.AgentID, "result:"+orphan.AgentID, doc); err != nil {
		t.Fatal(err)
	}

	s, err := f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	agents := map[string]bool{}
	for _, d := range s.Deliveries {
		if d.Kind == push.KindResult && d.Result != nil {
			agents[d.AgentID] = true
		}
	}
	if !agents[id] || !agents["ag-lost-clone"] || len(agents) != 2 {
		t.Fatalf("deliveries = %+v, want both the dispatched result and the orphan clone result", s.Deliveries)
	}

	// The duplicate path still works: a directly collected result's
	// mailbox copy is dropped. Dispatch, complete, Collect directly,
	// then open a session — the mailbox entry for it must not deliver.
	id2, err := f.plat.Dispatch(ctx, "echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	f.queue.Drain()
	if _, err := f.plat.Collect(ctx, id2); err != nil {
		t.Fatal(err)
	}
	s2, err := f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Deliveries) != 0 {
		t.Fatalf("directly collected result redelivered: %+v", s2.Deliveries)
	}
}

// TestPoisonQueuedDispatchDoesNotBlockQueue: a queued dispatch that is
// permanently rejected (its subscription secret was rotated while it
// sat in the queue) is dropped with a visible note — the dispatches
// queued behind it still go out.
func TestPoisonQueuedDispatchDoesNotBlockQueue(t *testing.T) {
	f := newSessionFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	// Queue with the current secret, then rotate it (re-subscribe):
	// the queued PI's dispatch key is now permanently invalid.
	if _, err := f.plat.QueueDispatch("echo", nil); err != nil {
		t.Fatal(err)
	}
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.plat.QueueDispatch("echo", mavmParams(3)); err != nil {
		t.Fatal(err)
	}

	s, err := f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatalf("session halted on the poison entry: %v", err)
	}
	if len(s.Dispatched) != 1 || s.QueuedLeft != 0 || len(f.plat.QueuedDispatches()) != 0 {
		t.Fatalf("drain = %+v: the healthy dispatch behind the poison entry never went out", s)
	}
	var notes int
	for _, d := range s.Deliveries {
		if d.Kind == push.KindStatus && d.Result == nil {
			notes++
		}
	}
	if notes != 1 {
		t.Fatalf("rejection not surfaced: %+v", s.Deliveries)
	}
}

func mavmParams(k int64) map[string]mavm.Value {
	return map[string]mavm.Value{"k": mavm.Int(k)}
}

// TestRateLimited429KeepsQueue: a 429 (tenant over rate/quota,
// DESIGN.md §12) is a back-off signal, not a poison verdict — the
// queued dispatch must survive for the next session instead of being
// dropped like the other 4xx rejections.
func TestRateLimited429KeepsQueue(t *testing.T) {
	f := newSessionFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.plat.QueueDispatch("echo", mavmParams(9)); err != nil {
		t.Fatal(err)
	}

	// Interpose on the gateway: refuse dispatches with 429 until the
	// operator (the test) lifts the limit.
	limited := true
	inner := f.gw.Handler()
	f.net.AddHost("gw-d", netsim.ZoneWired, transport.HandlerFunc(
		func(ctx context.Context, req *transport.Request) *transport.Response {
			if limited && req.Path == "/pdagent/dispatch" {
				resp := transport.Errorf(transport.StatusTooManyRequests, "tenant over quota")
				resp.SetHeader("retry-after", "1")
				return resp
			}
			return inner.Serve(ctx, req)
		}))

	s, err := f.plat.OpenSession(ctx)
	if err == nil {
		t.Fatalf("session drained through a 429: %+v", s)
	}
	if got := f.plat.QueuedDispatches(); len(got) != 1 {
		t.Fatalf("429 dropped the queued dispatch: %v", got)
	}

	// Once the account is back under its limits the same entry drains.
	limited = false
	s, err = f.plat.OpenSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dispatched) != 1 || len(f.plat.QueuedDispatches()) != 0 {
		t.Fatalf("post-backoff drain = %+v", s)
	}
	f.queue.Drain()
}

package device

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pdagent/internal/compress"
	"pdagent/internal/gateway"
	"pdagent/internal/mavm"
	"pdagent/internal/netsim"
	"pdagent/internal/pisec"
	"pdagent/internal/rms"
	"pdagent/internal/wire"
)

// fixture wires a device against a real gateway over netsim.
type fixture struct {
	net   *netsim.Network
	queue *netsim.Queue
	gw    *gateway.Gateway
	plat  *Platform
	store rms.Store
}

var (
	kpOnce sync.Once
	kp     *pisec.KeyPair
)

func newFixture(t *testing.T, cfgMut func(*Config)) *fixture {
	t.Helper()
	kpOnce.Do(func() {
		k, err := pisec.GenerateKeyPair(1024)
		if err != nil {
			t.Fatal(err)
		}
		kp = k
	})
	f := &fixture{
		net:   netsim.New(2),
		queue: &netsim.Queue{},
		store: rms.NewMemStore("dev-db", 0),
	}
	f.net.SetLinkBoth(netsim.ZoneWireless, netsim.ZoneWired, netsim.Link{Latency: 50 * time.Millisecond})
	f.net.SetLinkBoth(netsim.ZoneWired, netsim.ZoneWired, netsim.Link{Latency: time.Millisecond})
	gw, err := gateway.New(gateway.Config{
		Addr:      "gw-d",
		KeyPair:   kp,
		Transport: f.net.Transport(netsim.ZoneWired),
		Spawn:     f.queue.Go,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.AddCodePackage(&wire.CodePackage{
		CodeID: "echo", Name: "Echo", Version: "1",
		Source: `deliver("echo", params()); deliver("id", agentid());`,
	}); err != nil {
		t.Fatal(err)
	}
	f.gw = gw
	f.net.AddHost("gw-d", netsim.ZoneWired, gw.Handler())

	cfg := Config{
		Owner:     "test-dev",
		Transport: f.net.Transport(netsim.ZoneWireless),
		Store:     f.store,
		Codec:     compress.LZSS,
		Secure:    true,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	plat, err := NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plat.SetGateways([]string{"gw-d"}); err != nil {
		t.Fatal(err)
	}
	f.plat = plat
	return f
}

func TestSubscribeDispatchCollect(t *testing.T) {
	f := newFixture(t, nil)
	ctx := context.Background()

	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	id, err := f.plat.Dispatch(ctx, "echo", map[string]mavm.Value{"k": mavm.Int(7)})
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if _, err := f.plat.Collect(ctx, id); !errors.Is(err, ErrNotReady) {
		t.Fatalf("early collect: %v", err)
	}
	f.queue.Drain()
	rd, err := f.plat.Collect(ctx, id)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	echo, _ := rd.Get("echo")
	if echo.MapEntries()["k"].AsInt() != 7 {
		t.Fatalf("echo = %v", echo)
	}
	// Collecting again fails: the journey is forgotten.
	if _, err := f.plat.Collect(ctx, id); err == nil {
		t.Fatal("double collect succeeded")
	}
}

func TestDispatchRequiresSubscription(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.plat.Dispatch(context.Background(), "echo", nil); !errors.Is(err, ErrNotSubscribed) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnsubscribe(t *testing.T) {
	f := newFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	if err := f.plat.Unsubscribe("echo"); err != nil {
		t.Fatal(err)
	}
	if len(f.plat.Subscriptions()) != 0 {
		t.Fatalf("subscriptions = %v", f.plat.Subscriptions())
	}
	if _, err := f.plat.Dispatch(ctx, "echo", nil); !errors.Is(err, ErrNotSubscribed) {
		t.Fatalf("dispatch after unsubscribe: %v", err)
	}
	if err := f.plat.Unsubscribe("echo"); !errors.Is(err, ErrNotSubscribed) {
		t.Fatalf("double unsubscribe: %v", err)
	}
}

func TestResubscribeReplaces(t *testing.T) {
	f := newFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	n1, _ := f.store.NumRecords()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	n2, _ := f.store.NumRecords()
	if n1 != n2 {
		t.Fatalf("resubscribe grew the store: %d -> %d", n1, n2)
	}
	// The refreshed secret still dispatches.
	if _, err := f.plat.Dispatch(ctx, "echo", nil); err != nil {
		t.Fatalf("dispatch after resubscribe: %v", err)
	}
}

func TestRetriesOnLoss(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.Retries = 5 })
	// 40% loss on the wireless uplink: with 5 retries the calls still
	// eventually succeed.
	f.net.SetLink(netsim.ZoneWireless, netsim.ZoneWired, netsim.Link{
		Latency: 10 * time.Millisecond,
		Loss:    0.4,
	})
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatalf("Subscribe under loss: %v", err)
	}
	if _, err := f.plat.Dispatch(ctx, "echo", nil); err != nil {
		t.Fatalf("Dispatch under loss: %v", err)
	}
}

func TestGatewayDownSurfacesError(t *testing.T) {
	f := newFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	if err := f.net.SetDown("gw-d", true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.plat.Dispatch(ctx, "echo", nil); err == nil {
		t.Fatal("dispatch to downed gateway succeeded")
	}
	// Recovery.
	f.net.SetDown("gw-d", false) //nolint:errcheck
	if _, err := f.plat.Dispatch(ctx, "echo", nil); err != nil {
		t.Fatalf("dispatch after recovery: %v", err)
	}
}

func TestProbeAndSelect(t *testing.T) {
	f := newFixture(t, nil)
	ctx := netsim.WithClock(context.Background(), netsim.NewClock())
	probes, err := f.plat.ProbeGateways(ctx)
	if err != nil || len(probes) != 1 {
		t.Fatalf("probes = %v (%v)", probes, err)
	}
	if probes[0].RTT != 100*time.Millisecond {
		t.Fatalf("rtt = %v, want 100ms", probes[0].RTT)
	}
	addr, rtt, err := f.plat.SelectGateway(ctx)
	if err != nil || addr != "gw-d" || rtt <= 0 {
		t.Fatalf("select = %q %v %v", addr, rtt, err)
	}
}

func TestSelectAllFarWithoutCentral(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.RTTThreshold = time.Millisecond })
	ctx := netsim.WithClock(context.Background(), netsim.NewClock())
	if _, _, err := f.plat.SelectGateway(ctx); !errors.Is(err, ErrAllGatewaysFar) {
		t.Fatalf("err = %v, want ErrAllGatewaysFar", err)
	}
}

func TestEmptyGatewayList(t *testing.T) {
	f := newFixture(t, nil)
	plat, err := NewPlatform(Config{
		Owner:     "fresh",
		Transport: f.net.Transport(netsim.ZoneWireless),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plat.ProbeGateways(context.Background()); !errors.Is(err, ErrNoGateways) {
		t.Fatalf("err = %v", err)
	}
}

func TestRefreshGateways(t *testing.T) {
	f := newFixture(t, nil)
	dir := gateway.NewDirectory("gw-d", "gw-x")
	f.net.AddHost("central-t", netsim.ZoneWired, dir.Handler())
	if err := f.plat.RefreshGateways(context.Background(), "central-t"); err != nil {
		t.Fatal(err)
	}
	if got := f.plat.Gateways(); len(got) != 2 {
		t.Fatalf("gateways = %v", got)
	}
	if err := f.plat.RefreshGateways(context.Background(), "nowhere"); err == nil {
		t.Fatal("refresh from unreachable central succeeded")
	}
}

func TestFootprintGrowsWithSubscriptions(t *testing.T) {
	f := newFixture(t, nil)
	before, err := f.plat.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.plat.Subscribe(context.Background(), "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	after, _ := f.plat.Footprint()
	if after <= before {
		t.Fatalf("footprint %d -> %d", before, after)
	}
}

func TestLoadSkipsCorruptRecords(t *testing.T) {
	f := newFixture(t, nil)
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	// Poison the store with garbage and an unknown record type.
	f.store.Add([]byte("not a compressed frame"))                        //nolint:errcheck
	junk, _ := compress.Encode(compress.LZSS, []byte(`<mystery-type/>`)) //nolint:errcheck
	f.store.Add(junk)                                                    //nolint:errcheck

	plat2, err := NewPlatform(Config{
		Owner:     "test-dev",
		Transport: f.net.Transport(netsim.ZoneWireless),
		Store:     f.store,
		Secure:    true,
	})
	if err != nil {
		t.Fatalf("NewPlatform over dirty store: %v", err)
	}
	if subs := plat2.Subscriptions(); len(subs) != 1 || subs[0] != "echo" {
		t.Fatalf("subscriptions = %v", subs)
	}
}

func TestAgentStatusUnknown(t *testing.T) {
	f := newFixture(t, nil)
	if _, _, err := f.plat.AgentStatus(context.Background(), "ghost"); err == nil ||
		!strings.Contains(err.Error(), "unknown agent") {
		t.Fatalf("err = %v", err)
	}
}

func TestInsecureDispatch(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.Secure = false })
	ctx := context.Background()
	if err := f.plat.Subscribe(ctx, "gw-d", "echo"); err != nil {
		t.Fatal(err)
	}
	id, err := f.plat.Dispatch(ctx, "echo", nil)
	if err != nil {
		t.Fatalf("insecure dispatch: %v", err)
	}
	f.queue.Drain()
	if _, err := f.plat.Collect(ctx, id); err != nil {
		t.Fatalf("collect: %v", err)
	}
}

func TestNewPlatformValidation(t *testing.T) {
	tr := netsim.New(1).Transport(netsim.ZoneWireless)
	if _, err := NewPlatform(Config{Transport: tr}); err == nil {
		t.Error("missing owner accepted")
	}
	if _, err := NewPlatform(Config{Owner: "x"}); err == nil {
		t.Error("missing transport accepted")
	}
}

package device

import (
	"context"
	"errors"
	"fmt"

	"pdagent/internal/kxml"
	"pdagent/internal/mavm"
	"pdagent/internal/pisec"
	"pdagent/internal/rms"
	"pdagent/internal/transport"
	"pdagent/internal/wire"
)

// Dispatch performs §3.2 service execution: it builds the Packed
// Information from the stored code package and the user's parameters
// (collected offline), derives the dispatch key, packs (compress +
// seal) and uploads it to the subscription's gateway. It returns the
// agent id assigned by the gateway. This is the only online step of a
// service invocation besides result collection.
func (p *Platform) Dispatch(ctx context.Context, codeID string, params map[string]mavm.Value) (string, error) {
	pi, err := p.buildPI(codeID, params)
	if err != nil {
		return "", err
	}
	return p.uploadPI(ctx, pi)
}

// buildPI assembles the Packed Information for a service execution:
// code, parameters, a fresh nonce and the derived dispatch key. The
// offline part of §3.2 — no network involved, so it also backs the
// offline dispatch queue.
func (p *Platform) buildPI(codeID string, params map[string]mavm.Value) (*wire.PackedInformation, error) {
	p.mu.Lock()
	entry, ok := p.subs[codeID]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotSubscribed, codeID)
	}
	nonce, err := wire.NewNonce()
	if err != nil {
		return nil, err
	}
	return &wire.PackedInformation{
		CodeID:      codeID,
		DispatchKey: pisec.DispatchKey(codeID, entry.sub.Secret),
		Owner:       p.cfg.Owner,
		Nonce:       nonce,
		Source:      entry.sub.Package.Source,
		Params:      params,
	}, nil
}

// uploadPI performs the online part of a dispatch: pack (compress +
// seal), upload, record the pending journey and remember the gateway as
// this device's session home (its mailbox collects our notifications).
// The PI's nonce makes a retried upload idempotent at the gateway.
func (p *Platform) uploadPI(ctx context.Context, pi *wire.PackedInformation) (string, error) {
	p.mu.Lock()
	entry, ok := p.subs[pi.CodeID]
	p.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotSubscribed, pi.CodeID)
	}
	var key *pisec.PublicKey
	if p.cfg.Secure {
		if entry.key == nil {
			return "", fmt.Errorf("device: subscription %q has no gateway key for sealing", pi.CodeID)
		}
		key = entry.key
	}
	body, err := wire.Pack(pi, p.cfg.Codec, key)
	if err != nil {
		return "", err
	}
	gw := entry.sub.Gateway
	resp, err := p.roundTrip(ctx, gw, &transport.Request{Path: "/pdagent/dispatch", Body: body})
	if err != nil {
		return "", err
	}
	if !resp.IsOK() {
		return "", fmt.Errorf("device: dispatching %q: %w", pi.CodeID, resp.Err())
	}
	agentID := resp.Text()
	if agentID == "" {
		return "", fmt.Errorf("device: gateway returned empty agent id")
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.pending[agentID]; !exists {
		// A retried upload (lost response, crash before this record)
		// answers idempotently with the same agent id — don't write a
		// second pending record for it.
		rec := kxml.NewElement("pending")
		rec.SetAttr("agent", agentID)
		rec.SetAttr("gateway", gw)
		rec.SetAttr("code-id", pi.CodeID)
		recID, err := p.putRecord(rec.EncodeDocument())
		if err != nil {
			return "", fmt.Errorf("device: recording dispatch: %w", err)
		}
		p.pending[agentID] = pendingInfo{Gateway: gw, CodeID: pi.CodeID}
		p.pendIDs[agentID] = recID
	}
	tok := resp.GetHeader("mailbox-token")
	if p.sessionGW != gw || (tok != "" && p.tokens[gw] != tok) {
		p.sessionGW = gw
		if tok != "" {
			p.tokens[gw] = tok
		}
		if err := p.storeMailboxStateLocked(); err != nil {
			p.logf("device %s: persisting session gateway: %v", p.cfg.Owner, err)
		}
	}
	p.logf("device %s: dispatched %q as agent %s via %s", p.cfg.Owner, pi.CodeID, agentID, gw)
	return agentID, nil
}

// Pending lists agent ids dispatched but not yet collected.
func (p *Platform) Pending() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.pending))
	for id := range p.pending {
		out = append(out, id)
	}
	return out
}

func (p *Platform) pendingGateway(agentID string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	info, ok := p.pending[agentID]
	if !ok {
		return "", fmt.Errorf("device: unknown agent %q", agentID)
	}
	return info.Gateway, nil
}

// Collect performs §3.3 result collection: it downloads the XML result
// document from the gateway. ErrNotReady is returned while the agent
// is still travelling; on success the pending record is removed.
func (p *Platform) Collect(ctx context.Context, agentID string) (*wire.ResultDocument, error) {
	gw, err := p.pendingGateway(agentID)
	if err != nil {
		return nil, err
	}
	req := &transport.Request{Path: "/pdagent/result"}
	req.SetHeader("agent", agentID)
	resp, err := p.roundTrip(ctx, gw, req)
	if err != nil {
		return nil, err
	}
	if resp.Status == transport.StatusConflict {
		return nil, fmt.Errorf("%w: agent %s", ErrNotReady, agentID)
	}
	if !resp.IsOK() {
		return nil, fmt.Errorf("device: collecting %s: %w", agentID, resp.Err())
	}
	rd, err := wire.ParseResultDocument(resp.Body)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if recID, ok := p.pendIDs[agentID]; ok {
		if err := p.cfg.Store.Delete(recID); err != nil && !errors.Is(err, rms.ErrNotFound) {
			p.logf("device %s: dropping pending record for %s: %v", p.cfg.Owner, agentID, err)
		}
		delete(p.pendIDs, agentID)
	}
	delete(p.pending, agentID)
	p.mu.Unlock()
	// Remember the direct collection so a mailbox copy of this result
	// (enqueued before the gateway saw the collect) is recognisable as
	// a duplicate by the next session.
	p.markCollected(agentID)
	return rd, nil
}

// AgentStatus asks the gateway where the agent is and how it is doing
// (§3.6 "view agent status"). The first return is "complete",
// "travelling" or "disposed" (terminal, no result coming); the second
// carries the MAS status document when travelling.
func (p *Platform) AgentStatus(ctx context.Context, agentID string) (string, []byte, error) {
	gw, err := p.pendingGateway(agentID)
	if err != nil {
		return "", nil, err
	}
	req := &transport.Request{Path: "/pdagent/status"}
	req.SetHeader("agent", agentID)
	resp, err := p.roundTrip(ctx, gw, req)
	if err != nil {
		return "", nil, err
	}
	if !resp.IsOK() {
		return "", nil, resp.Err()
	}
	return resp.GetHeader("agent-state"), resp.Body, nil
}

// manage invokes a §3.6 management verb through the gateway.
func (p *Platform) manage(ctx context.Context, agentID, verb string) (*transport.Response, error) {
	gw, err := p.pendingGateway(agentID)
	if err != nil {
		return nil, err
	}
	req := &transport.Request{Path: "/pdagent/manage/" + verb}
	req.SetHeader("agent", agentID)
	resp, err := p.roundTrip(ctx, gw, req)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Retract asks the platform to pull the agent back to its gateway; the
// partial results become collectable once it arrives (status
// "retracted").
func (p *Platform) Retract(ctx context.Context, agentID string) error {
	resp, err := p.manage(ctx, agentID, "retract")
	if err != nil {
		return err
	}
	if !resp.IsOK() {
		return fmt.Errorf("device: retracting %s: %w", agentID, resp.Err())
	}
	return nil
}

// Dispose terminates the agent wherever it is; no result will arrive.
func (p *Platform) Dispose(ctx context.Context, agentID string) error {
	resp, err := p.manage(ctx, agentID, "dispose")
	if err != nil {
		return err
	}
	if !resp.IsOK() {
		return fmt.Errorf("device: disposing %s: %w", agentID, resp.Err())
	}
	// The journey will never produce a result; forget it locally.
	p.mu.Lock()
	defer p.mu.Unlock()
	if recID, ok := p.pendIDs[agentID]; ok {
		_ = p.cfg.Store.Delete(recID)
		delete(p.pendIDs, agentID)
	}
	delete(p.pending, agentID)
	return nil
}

// Clone duplicates a travelling agent and returns the clone's id; the
// clone's results are collectable like any dispatch.
func (p *Platform) Clone(ctx context.Context, agentID string) (string, error) {
	resp, err := p.manage(ctx, agentID, "clone")
	if err != nil {
		return "", err
	}
	if !resp.IsOK() {
		return "", fmt.Errorf("device: cloning %s: %w", agentID, resp.Err())
	}
	cloneID := resp.Text()
	gw, err := p.pendingGateway(agentID)
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rec := kxml.NewElement("pending")
	rec.SetAttr("agent", cloneID)
	rec.SetAttr("gateway", gw)
	rec.SetAttr("code-id", p.pending[agentID].CodeID)
	recID, err := p.putRecord(rec.EncodeDocument())
	if err != nil {
		return "", err
	}
	p.pending[cloneID] = pendingInfo{Gateway: gw, CodeID: p.pending[agentID].CodeID}
	p.pendIDs[cloneID] = recID
	return cloneID, nil
}

package device

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"pdagent/internal/compress"
	"pdagent/internal/kxml"
	"pdagent/internal/mavm"
	"pdagent/internal/push"
	"pdagent/internal/rms"
	"pdagent/internal/transport"
	"pdagent/internal/wire"
)

// Device sessions (DESIGN.md §7): the disconnection-tolerant side of
// the platform. While the uplink is down the application keeps working
// offline — service executions are queued in the RMS database — and on
// reconnection OpenSession drains the queue and then pulls the device's
// gateway mailbox: result documents, status changes and management
// notifications that accumulated while the device was away. Delivery is
// cursor-based: the device persists the acknowledged watermark per
// gateway, so a crash on either side never loses or duplicates a
// notification.

// ErrNoSessionGateway means OpenSession found no gateway to talk to
// (never dispatched, and the gateway list is empty).
var ErrNoSessionGateway = errors.New("device: no session gateway")

// errNoMailboxAccess marks a mailbox poll refused for lack of a valid
// token; sessions degrade to the pull-repair path instead of failing.
var errNoMailboxAccess = errors.New("device: no mailbox access token")

// Delivery is one mailbox item handed to the application.
type Delivery struct {
	// Seq is the gateway-assigned mailbox sequence number.
	Seq uint64
	// Kind is push.KindResult, push.KindStatus or push.KindManage.
	Kind string
	// AgentID names the journey the item is about.
	AgentID string
	// Result is the parsed result document (Kind == push.KindResult).
	Result *wire.ResultDocument
	// Note carries the text payload of status/management items.
	Note string
}

// Session summarises one reconnection round.
type Session struct {
	// Gateway is the member that served this session.
	Gateway string
	// Dispatched lists agent ids created by draining the offline queue.
	Dispatched []string
	// QueuedLeft counts offline dispatches still queued (the drain
	// stopped on a network error).
	QueuedLeft int
	// Deliveries are the mailbox items received, in sequence order.
	Deliveries []Delivery
	// Evicted is the gateway's lifetime count of this device's entries
	// dropped to quota/TTL — a growing number means notifications were
	// lost while the device was away.
	Evicted uint64
}

// --- offline dispatch queue ----------------------------------------------

// QueueDispatch records a §3.2 service execution for later upload: the
// Packed Information (parameters, fresh nonce, derived dispatch key) is
// built now, entirely offline, and stored in the device database. The
// queue drains on the next OpenSession. The returned id names the
// queued item; the nonce inside makes the eventual upload idempotent
// even if a drain is retried across a crash.
func (p *Platform) QueueDispatch(codeID string, params map[string]mavm.Value) (string, error) {
	pi, err := p.buildPI(codeID, params)
	if err != nil {
		return "", err
	}
	doc, err := pi.EncodeXML()
	if err != nil {
		return "", err
	}
	rec := kxml.NewElement("queued-dispatch")
	rec.SetAttr("id", pi.Nonce)
	rec.AddText(string(doc))

	p.mu.Lock()
	defer p.mu.Unlock()
	recID, err := p.putRecord(rec.EncodeDocument())
	if err != nil {
		return "", fmt.Errorf("device: queueing dispatch: %w", err)
	}
	p.queued[pi.Nonce] = &queuedDispatch{recID: recID, pi: pi}
	p.queueIDs = append(p.queueIDs, pi.Nonce)
	p.logf("device %s: queued %q for the next session (%d queued)", p.cfg.Owner, codeID, len(p.queued))
	return pi.Nonce, nil
}

// QueuedDispatches lists queued dispatch ids in drain (FIFO) order.
func (p *Platform) QueuedDispatches() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.queueIDs...)
}

// drainQueued uploads queued dispatches in FIFO order. A transient
// failure (transport error, 5xx) halts the drain — the uplink is
// probably still flaky and the rest stay queued for the next session.
// A permanent rejection (4xx: bad code, rotated subscription, refused
// key) DROPS the entry and reports it, so one poison dispatch can
// never block the queue behind it forever. 429 is the one 4xx that is
// NOT permanent — the gateway is telling this tenant to back off
// (DESIGN.md §12), not that the dispatch is poison — so it halts the
// drain like a 5xx and the queue retries next session.
func (p *Platform) drainQueued(ctx context.Context) (dispatched []string, rejected []Delivery, err error) {
	for {
		p.mu.Lock()
		if len(p.queueIDs) == 0 {
			p.mu.Unlock()
			return dispatched, rejected, nil
		}
		qid := p.queueIDs[0]
		q := p.queued[qid]
		p.mu.Unlock()

		agentID, uerr := p.uploadPI(ctx, q.pi)
		if uerr != nil {
			var se *transport.StatusError
			if errors.As(uerr, &se) && se.Status >= 400 && se.Status < 500 &&
				se.Status != transport.StatusTooManyRequests {
				p.logf("device %s: queued dispatch %s permanently rejected: %v", p.cfg.Owner, qid, uerr)
				rejected = append(rejected, Delivery{
					Kind: push.KindStatus,
					Note: fmt.Sprintf("queued dispatch %s (%s) rejected: %s", qid, q.pi.CodeID, se.Body),
				})
			} else {
				return dispatched, rejected, uerr
			}
		} else {
			dispatched = append(dispatched, agentID)
		}
		p.mu.Lock()
		if err := p.cfg.Store.Delete(q.recID); err != nil && !errors.Is(err, rms.ErrNotFound) {
			p.logf("device %s: dropping queued record %d: %v", p.cfg.Owner, q.recID, err)
		}
		delete(p.queued, qid)
		p.queueIDs = p.queueIDs[1:]
		p.mu.Unlock()
	}
}

// --- mailbox delivery ----------------------------------------------------

// collectedWindow bounds the remembered directly-collected journeys.
// It mirrors the hub's dedup window (which scales to 2× the mailbox
// quota, default 256): a still-pending mailbox copy of a collected
// result must not outlive the device's memory of having collected it.
// ~20 bytes per id, so the worst-case record stays far below the
// paper's 120 KB on-device budget. Deployments raising the gateway
// quota past ~½ this window trade a sliver of duplicate protection
// for the space.
const collectedWindow = 2048

// markCollected remembers that a journey's result was obtained outside
// mailbox delivery, so a mailbox copy arriving later is recognisable
// as a duplicate. Bounded FIFO, persisted in one record.
func (p *Platform) markCollected(agentID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.collected[agentID] {
		return
	}
	p.collected[agentID] = true
	p.collectedOrder = append(p.collectedOrder, agentID)
	for len(p.collectedOrder) > collectedWindow {
		delete(p.collected, p.collectedOrder[0])
		p.collectedOrder = p.collectedOrder[1:]
	}
	rec := kxml.NewElement("collected")
	for _, id := range p.collectedOrder {
		rec.AddElement("a").AddText(id)
	}
	framed, err := compress.Encode(p.cfg.Codec, rec.EncodeDocument())
	if err != nil {
		p.logf("device %s: persisting collected set: %v", p.cfg.Owner, err)
		return
	}
	if p.collectedRec != 0 {
		if err := p.cfg.Store.Set(p.collectedRec, framed); err != nil {
			p.logf("device %s: persisting collected set: %v", p.cfg.Owner, err)
		}
		return
	}
	id, err := p.cfg.Store.Add(framed)
	if err != nil {
		p.logf("device %s: persisting collected set: %v", p.cfg.Owner, err)
		return
	}
	p.collectedRec = id
}

// storeMailboxStateLocked persists the session gateway and the
// per-gateway cursors. Caller holds p.mu.
func (p *Platform) storeMailboxStateLocked() error {
	rec := kxml.NewElement("mbox-state")
	rec.SetAttr("gateway", p.sessionGW)
	gws := make([]string, 0, len(p.cursors))
	for gw := range p.cursors {
		gws = append(gws, gw)
	}
	sort.Strings(gws)
	for _, gw := range gws {
		c := rec.AddElement("cursor")
		c.SetAttr("gw", gw)
		c.SetAttr("seq", strconv.FormatUint(p.cursors[gw], 10))
	}
	tgws := make([]string, 0, len(p.tokens))
	for gw := range p.tokens {
		tgws = append(tgws, gw)
	}
	sort.Strings(tgws)
	for _, gw := range tgws {
		c := rec.AddElement("token")
		c.SetAttr("gw", gw)
		c.SetAttr("v", p.tokens[gw])
	}
	doc := rec.EncodeDocument()
	framed, err := compress.Encode(p.cfg.Codec, doc)
	if err != nil {
		return err
	}
	if p.mboxRec != 0 {
		return p.cfg.Store.Set(p.mboxRec, framed)
	}
	id, err := p.cfg.Store.Add(framed)
	if err != nil {
		return err
	}
	p.mboxRec = id
	return nil
}

// SessionGateway returns the gateway whose mailbox holds this device's
// notifications ("" before the first dispatch).
func (p *Platform) SessionGateway() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sessionGW
}

// Cursor returns the device's acknowledged mailbox watermark at gw.
func (p *Platform) Cursor(gw string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cursors[gw]
}

// fetchMailbox runs one fetch+ack round trip against gw: acknowledge
// cursor, receive the next batch. prevEdge (first call after switching
// gateways) asks gw to pull our mailbox from the member we previously
// talked to. wait > 0 long-polls.
func (p *Platform) fetchMailbox(ctx context.Context, gw, prevEdge string, cursor uint64, wait time.Duration) ([]*push.Entry, uint64, uint64, error) {
	path := "/pdagent/mailbox"
	if wait > 0 {
		path = "/pdagent/mailbox/poll"
	}
	req := &transport.Request{Path: path}
	req.SetHeader("device", p.cfg.Owner)
	req.SetHeader("ack", strconv.FormatUint(cursor, 10))
	// The mailbox token proves we are the device this mail belongs to.
	// At a new edge we present the token our previous edge minted; the
	// migration carries it over, so it keeps working.
	p.mu.Lock()
	tok := p.tokens[gw]
	if tok == "" && prevEdge != "" {
		tok = p.tokens[prevEdge]
	}
	p.mu.Unlock()
	if tok != "" {
		req.SetHeader("mailbox-token", tok)
	}
	if prevEdge != "" && prevEdge != gw {
		req.SetHeader("prev-edge", prevEdge)
	}
	if wait > 0 {
		req.SetHeader("wait", wait.String())
	}
	resp, err := p.roundTrip(ctx, gw, req)
	if err != nil {
		return nil, 0, 0, err
	}
	if resp.Status == transport.StatusUnauthorized {
		// We hold no valid token for this gateway (e.g. the dispatch
		// response that carried it was lost, and the idempotent retry
		// deliberately does not re-send it). Not fatal: the session's
		// pull-repair collects pending results directly, and the next
		// fresh dispatch re-delivers the token.
		return nil, cursor, 0, errNoMailboxAccess
	}
	if !resp.IsOK() {
		return nil, 0, 0, fmt.Errorf("device: mailbox at %s: %w", gw, resp.Err())
	}
	_, entries, watermark, evicted, _, _, err := push.ParseEntries(resp.Body)
	return entries, watermark, evicted, err
}

// processEntries turns mailbox entries into Deliveries, applying their
// side effects (a delivered result closes the pending journey exactly
// like Collect). Caller then persists the advanced cursor.
func (p *Platform) processEntries(entries []*push.Entry) []Delivery {
	out := make([]Delivery, 0, len(entries))
	for _, e := range entries {
		d := Delivery{Seq: e.Seq, Kind: e.Kind, AgentID: e.AgentID}
		if e.Kind == push.KindResult {
			rd, err := wire.ParseResultDocument(e.Body)
			if err != nil {
				p.logf("device %s: unparseable result in mailbox (agent %s): %v", p.cfg.Owner, e.AgentID, err)
				d.Kind = push.KindStatus
				d.Note = "undeliverable result: " + err.Error()
				out = append(out, d)
				continue
			}
			p.mu.Lock()
			_, stillPending := p.pending[rd.AgentID]
			if recID, ok := p.pendIDs[rd.AgentID]; ok {
				if err := p.cfg.Store.Delete(recID); err != nil && !errors.Is(err, rms.ErrNotFound) {
					p.logf("device %s: dropping pending record for %s: %v", p.cfg.Owner, rd.AgentID, err)
				}
				delete(p.pendIDs, rd.AgentID)
			}
			delete(p.pending, rd.AgentID)
			alreadyCollected := p.collected[rd.AgentID]
			p.mu.Unlock()
			if !stillPending && alreadyCollected {
				// The result was already obtained through a direct (or
				// repair) Collect: advancing the cursor retires the
				// entry, the application never sees a second copy.
				p.logf("device %s: dropping duplicate result for %s", p.cfg.Owner, rd.AgentID)
				continue
			}
			// A result with no pending record that was never collected
			// (a clone whose clone response was lost, or a pending
			// record lost to a device crash) is still real mail:
			// deliver it. Mark it collected either way — if the cursor
			// ack at this edge is lost (or a migration left a copy at a
			// previous edge), the stray redelivery must read as a
			// duplicate, not fresh mail.
			d.Result = rd
			p.markCollected(rd.AgentID)
		} else {
			d.Note = string(e.Body)
			if e.Kind == push.KindStatus {
				// Status notes mark result-less terminal transitions
				// (disposed by another session, result expired at the
				// gateway): close the journey so future sessions stop
				// burning repair probes — and RMS records — on it.
				p.forgetPending(e.AgentID)
			}
		}
		out = append(out, d)
	}
	return out
}

// forgetPending drops a journey's pending record (no result is
// coming).
func (p *Platform) forgetPending(agentID string) {
	if agentID == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if recID, ok := p.pendIDs[agentID]; ok {
		if err := p.cfg.Store.Delete(recID); err != nil && !errors.Is(err, rms.ErrNotFound) {
			p.logf("device %s: dropping pending record for %s: %v", p.cfg.Owner, agentID, err)
		}
		delete(p.pendIDs, agentID)
	}
	delete(p.pending, agentID)
}

// PollMailbox performs fetch+ack rounds against gw until the mailbox is
// drained (or, with wait > 0 and an empty mailbox, long-polls once).
// The device-side cursor is persisted after each processed batch, so a
// crash between rounds resumes without loss or duplication.
func (p *Platform) PollMailbox(ctx context.Context, gw string, wait time.Duration) ([]Delivery, uint64, error) {
	p.mu.Lock()
	prevEdge := p.sessionGW
	cursor := p.cursors[gw]
	p.mu.Unlock()

	var all []Delivery
	var evicted uint64
	for round := 0; ; round++ {
		w := time.Duration(0)
		if wait > 0 && round == 0 {
			w = wait
		}
		pe := ""
		if round == 0 {
			pe = prevEdge
		}
		entries, watermark, ev, err := p.fetchMailbox(ctx, gw, pe, cursor, w)
		if errors.Is(err, errNoMailboxAccess) {
			p.logf("device %s: no mailbox access at %s yet; relying on direct collection", p.cfg.Owner, gw)
			return all, evicted, nil
		}
		if err != nil {
			return all, evicted, err
		}
		evicted = ev
		if len(entries) == 0 && watermark <= cursor {
			break
		}
		all = append(all, p.processEntries(entries)...)
		cursor = watermark

		p.mu.Lock()
		p.cursors[gw] = cursor
		p.sessionGW = gw
		if p.tokens[gw] == "" && prevEdge != "" && p.tokens[prevEdge] != "" {
			// The poll succeeded with the previous edge's token: this
			// gateway adopted it during the migration, so it is now
			// valid here too.
			p.tokens[gw] = p.tokens[prevEdge]
		}
		if err := p.storeMailboxStateLocked(); err != nil {
			p.logf("device %s: persisting mailbox cursor: %v", p.cfg.Owner, err)
		}
		p.mu.Unlock()
		if len(entries) == 0 {
			break
		}
		// The next round's fetch carries ack=cursor, retiring this
		// batch at the gateway; when it comes back empty the drain is
		// complete and fully acknowledged. A crash before that ack only
		// costs a redelivery that the cursor filters out.
	}
	return all, evicted, nil
}

// OpenSession is the reconnection ritual of a disconnection-tolerant
// device: drain the offline dispatch queue, then pull everything the
// gateway mailbox accumulated while we were away. It talks to the
// device's session gateway (the one the last dispatch went through);
// use OpenSessionAt to reconnect through a different member — the
// mailbox follows.
func (p *Platform) OpenSession(ctx context.Context) (*Session, error) {
	return p.OpenSessionAt(ctx, "")
}

// OpenSessionAt opens a session through a specific gateway. If the
// device previously talked to a different member, that member is named
// as prev-edge and the new gateway pulls the mailbox over — the device
// keeps one cursor per gateway, so the switch cannot lose or duplicate
// notifications.
func (p *Platform) OpenSessionAt(ctx context.Context, gw string) (*Session, error) {
	p.mu.Lock()
	if gw == "" {
		gw = p.sessionGW
	}
	if gw == "" && len(p.queueIDs) > 0 {
		// Never dispatched online yet, but the offline queue knows
		// where its subscription came from.
		if entry, ok := p.subs[p.queued[p.queueIDs[0]].pi.CodeID]; ok {
			gw = entry.sub.Gateway
		}
	}
	if gw == "" {
		// Any stored subscription names a gateway (sorted for
		// determinism).
		ids := make([]string, 0, len(p.subs))
		for id := range p.subs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		if len(ids) > 0 {
			gw = p.subs[ids[0]].sub.Gateway
		}
	}
	if gw == "" && len(p.gateways) > 0 {
		gw = p.gateways[0]
	}
	p.mu.Unlock()
	if gw == "" {
		return nil, ErrNoSessionGateway
	}

	s := &Session{Gateway: gw}
	dispatched, rejected, drainErr := p.drainQueued(ctx)
	s.Dispatched = dispatched
	s.Deliveries = append(s.Deliveries, rejected...)
	if drainErr != nil {
		p.logf("device %s: offline queue drain stopped: %v", p.cfg.Owner, drainErr)
	}

	deliveries, evicted, err := p.PollMailbox(ctx, gw, 0)
	s.Deliveries = append(s.Deliveries, deliveries...)
	s.Evicted = evicted
	p.mu.Lock()
	s.QueuedLeft = len(p.queueIDs)
	p.mu.Unlock()
	if err != nil {
		return s, err
	}

	// On-demand pull as repair: the mailbox push can be lost to a
	// gateway crash between the agent's arrival and the relay (the
	// journal recovers the journey, but the edge mailbox may never hear
	// of it). Journeys still open after the mailbox drain are probed
	// with a direct §3.3 collection; a later mailbox copy of the same
	// result is dropped as a duplicate by processEntries.
	for _, agentID := range p.Pending() {
		rd, cerr := p.Collect(ctx, agentID)
		if cerr != nil {
			var se *transport.StatusError
			if errors.As(cerr, &se) && se.Status == transport.StatusGone {
				// Terminal without a result (disposed, or the result
				// expired past its retention TTL): close the journey
				// instead of re-probing it every session forever.
				p.forgetPending(agentID)
				s.Deliveries = append(s.Deliveries, Delivery{
					Kind: push.KindStatus, AgentID: agentID, Note: se.Body,
				})
				continue
			}
			if !errors.Is(cerr, ErrNotReady) {
				p.logf("device %s: repair collect for %s: %v", p.cfg.Owner, agentID, cerr)
			}
			continue
		}
		s.Deliveries = append(s.Deliveries, Delivery{
			Kind: push.KindResult, AgentID: agentID, Result: rd,
		})
	}
	if drainErr != nil {
		return s, fmt.Errorf("device: session opened but %d dispatch(es) still queued: %w", s.QueuedLeft, drainErr)
	}
	p.logf("device %s: session at %s: %d dispatched, %d delivered, %d evicted",
		p.cfg.Owner, gw, len(s.Dispatched), len(s.Deliveries), s.Evicted)
	return s, nil
}

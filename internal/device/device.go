// Package device implements the PDAgent Platform that runs on the
// wireless handheld (Figure 4, left side): the System API beneath the
// UI. It provides the paper's §3.1–3.6 functions:
//
//   - service subscription: download MA code from a trusted gateway and
//     store it (compressed) in the on-device RMS database;
//   - service execution: collect parameters offline, derive the
//     dispatch key, build the Packed Information (XML → compress →
//     encrypt), and upload it through the Network Manager;
//   - service result collection: download and parse the XML result
//     document on reconnection;
//   - high-performance service management: download the gateway address
//     list and pick the nearest gateway by RTT probing (Figure 8),
//     refreshing the list when the best RTT exceeds the threshold;
//   - mobile agent management: status, clone, retract, dispose (§3.6).
//
// The platform is UI-less; cmd/pdagent layers a CLI on top and the
// examples drive it programmatically.
package device

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"pdagent/internal/compress"
	"pdagent/internal/kxml"
	"pdagent/internal/netsim"
	"pdagent/internal/pisec"
	"pdagent/internal/rms"
	"pdagent/internal/transport"
	"pdagent/internal/wire"
)

// Errors reported by platform operations.
var (
	// ErrNotSubscribed means Dispatch was called for a code id with no
	// stored subscription.
	ErrNotSubscribed = errors.New("device: not subscribed to this code package")
	// ErrNotReady means the agent has not returned to the gateway yet.
	ErrNotReady = errors.New("device: result not ready")
	// ErrNoGateways means no gateway list is available.
	ErrNoGateways = errors.New("device: gateway list empty")
	// ErrAllGatewaysFar means every probed gateway exceeded the RTT
	// threshold and no central server was configured to refresh from.
	ErrAllGatewaysFar = errors.New("device: all gateways beyond RTT threshold")
)

// Config configures a Platform.
type Config struct {
	// Owner identifies this device/user to gateways.
	Owner string
	// Transport is the wireless-side round-tripper.
	Transport transport.RoundTripper
	// Store is the on-device RMS database (default: in-memory).
	Store rms.Store
	// Codec compresses stored code and outgoing PIs (default LZSS, the
	// paper's "simple text compression").
	Codec compress.Codec
	// Secure seals PIs to the gateway key per Figure 7 (default true;
	// the ablation benches switch it off).
	Secure bool
	// RTTThreshold triggers a gateway-list refresh when the best probe
	// exceeds it (default 2 s, in journey-clock time for simulations).
	RTTThreshold time.Duration
	// Central is the central server address for gateway-list refreshes
	// (optional).
	Central string
	// Retries bounds network attempts per operation (default 3).
	Retries int
	// RetryBase is the first retry's backoff; later attempts double it
	// (jittered to 50–100% of the nominal value) up to RetryMax, so a
	// flapping uplink never hot-loops. In simulations the backoff is
	// charged to the journey clock instead of sleeping. Default 200ms.
	RetryBase time.Duration
	// RetryMax caps the exponential backoff (default 5s).
	RetryMax time.Duration
	// Logf, when set, receives diagnostics.
	Logf func(format string, args ...any)
}

// subscription is the in-memory form of a stored subscription.
type subscription struct {
	sub   *wire.Subscription
	key   *pisec.PublicKey
	recID int // backing record
}

// Platform is the PDAgent platform instance on one device.
type Platform struct {
	cfg Config

	mu       sync.Mutex
	gateways []string
	subs     map[string]*subscription // code id -> subscription
	pending  map[string]pendingInfo   // agent id -> info
	pendIDs  map[string]int           // agent id -> record id
	listRec  int                      // record id of the gateway list, 0 = none

	// Device-session state (§7): the gateway whose mailbox holds this
	// device's notifications, per-gateway delivery cursors, and the
	// offline dispatch queue that drains on reconnect.
	sessionGW string
	cursors   map[string]uint64 // gateway -> acked mailbox watermark
	tokens    map[string]string // gateway -> mailbox access token
	mboxRec   int               // record id of the mailbox-state record
	queued    map[string]*queuedDispatch
	queueIDs  []string // queue order (dispatch ids, FIFO)
	// collected remembers journeys whose results were obtained OUTSIDE
	// mailbox delivery (direct or repair Collect), so a mailbox copy of
	// the same result arriving later is recognisable as a duplicate —
	// and a result for a journey in neither pending nor collected
	// (e.g. a clone whose clone response was lost) is still delivered.
	collected      map[string]bool
	collectedOrder []string // FIFO for the bounded window
	collectedRec   int      // record id of the collected record

	// rng drives retry jitter; seeded from the owner so simulations
	// stay reproducible across runs.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// queuedDispatch is one offline-queued service execution.
type queuedDispatch struct {
	recID int
	pi    *wire.PackedInformation
}

type pendingInfo struct {
	Gateway string
	CodeID  string
}

// NewPlatform creates a platform, replaying any state already in the
// store (the device database survives restarts).
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.Owner == "" {
		return nil, errors.New("device: config missing Owner")
	}
	if cfg.Transport == nil {
		return nil, errors.New("device: config missing Transport")
	}
	if cfg.Store == nil {
		cfg.Store = rms.NewMemStore("pdagent-db", 0)
	}
	if cfg.RTTThreshold == 0 {
		cfg.RTTThreshold = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = 200 * time.Millisecond
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 5 * time.Second
	}
	p := &Platform{
		cfg:       cfg,
		subs:      map[string]*subscription{},
		pending:   map[string]pendingInfo{},
		pendIDs:   map[string]int{},
		cursors:   map[string]uint64{},
		tokens:    map[string]string{},
		queued:    map[string]*queuedDispatch{},
		collected: map[string]bool{},
		rng:       rand.New(rand.NewSource(int64(hashOwner(cfg.Owner)))),
	}
	if err := p.load(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Platform) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// --- persistence ---------------------------------------------------------

// Records are XML documents compressed with the platform codec; the
// root element name identifies the record type (subscription, pending,
// gateway-list). The paper stores agent code compressed in the RMS
// database; we compress every record the same way.

func (p *Platform) putRecord(doc []byte) (int, error) {
	framed, err := compress.Encode(p.cfg.Codec, doc)
	if err != nil {
		return 0, err
	}
	return p.cfg.Store.Add(framed)
}

func (p *Platform) load() error {
	ids, err := p.cfg.Store.IDs()
	if err != nil {
		return fmt.Errorf("device: reading store: %w", err)
	}
	for _, id := range ids {
		framed, err := p.cfg.Store.Get(id)
		if err != nil {
			return fmt.Errorf("device: record %d: %w", id, err)
		}
		doc, err := compress.Decode(framed)
		if err != nil {
			p.logf("device %s: dropping corrupt record %d: %v", p.cfg.Owner, id, err)
			continue
		}
		root, err := kxml.ParseBytes(doc)
		if err != nil {
			p.logf("device %s: dropping unparseable record %d: %v", p.cfg.Owner, id, err)
			continue
		}
		switch root.Name {
		case "subscription":
			sub, err := wire.ParseSubscription(doc)
			if err != nil {
				p.logf("device %s: bad subscription record %d: %v", p.cfg.Owner, id, err)
				continue
			}
			entry := &subscription{sub: sub, recID: id}
			if sub.GatewayKey != "" {
				if key, err := pisec.ParsePublicKey(sub.GatewayKey); err == nil {
					entry.key = key
				}
			}
			p.subs[sub.Package.CodeID] = entry
		case "pending":
			agent := root.AttrDefault("agent", "")
			if agent == "" {
				continue
			}
			p.pending[agent] = pendingInfo{
				Gateway: root.AttrDefault("gateway", ""),
				CodeID:  root.AttrDefault("code-id", ""),
			}
			p.pendIDs[agent] = id
		case "gateway-list":
			if gl, err := wire.ParseGatewayList(doc); err == nil {
				p.gateways = gl.Addresses
				p.listRec = id
			}
		case "mbox-state":
			p.sessionGW = root.AttrDefault("gateway", "")
			for _, c := range root.FindAll("cursor") {
				if gw := c.AttrDefault("gw", ""); gw != "" {
					seq, _ := strconv.ParseUint(c.AttrDefault("seq", "0"), 10, 64)
					p.cursors[gw] = seq
				}
			}
			for _, c := range root.FindAll("token") {
				if gw := c.AttrDefault("gw", ""); gw != "" {
					p.tokens[gw] = c.AttrDefault("v", "")
				}
			}
			p.mboxRec = id
		case "collected":
			for _, c := range root.FindAll("a") {
				if agent := c.TextContent(); agent != "" && !p.collected[agent] {
					p.collected[agent] = true
					p.collectedOrder = append(p.collectedOrder, agent)
				}
			}
			p.collectedRec = id
		case "queued-dispatch":
			qid := root.AttrDefault("id", "")
			pi, err := wire.ParsePackedInformation([]byte(root.TextContent()))
			if qid == "" || err != nil {
				p.logf("device %s: dropping bad queued dispatch record %d: %v", p.cfg.Owner, id, err)
				continue
			}
			p.queued[qid] = &queuedDispatch{recID: id, pi: pi}
			p.queueIDs = append(p.queueIDs, qid)
		default:
			p.logf("device %s: unknown record type %q", p.cfg.Owner, root.Name)
		}
	}
	return nil
}

// Footprint returns the on-device database size in bytes (compressed
// records), the quantity behind the paper's 120 KB claim.
func (p *Platform) Footprint() (int, error) { return p.cfg.Store.Size() }

// --- network manager ------------------------------------------------------

// hashOwner seeds the per-device jitter source. Runs once per
// Platform, so the stdlib hash is fine (no need for a fourth inlined
// FNV in this repo).
func hashOwner(owner string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(owner))
	return h.Sum32()
}

// backoff returns the jittered exponential delay before retry attempt
// (attempt >= 1): nominal RetryBase<<(attempt-1) capped at RetryMax,
// drawn uniformly from 50–100% of nominal so a fleet of devices on the
// same flapping uplink never retries in lockstep.
func (p *Platform) backoff(attempt int) time.Duration {
	d := p.cfg.RetryBase
	for i := 1; i < attempt && d < p.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > p.cfg.RetryMax {
		d = p.cfg.RetryMax
	}
	p.rngMu.Lock()
	j := p.rng.Float64()
	p.rngMu.Unlock()
	return d/2 + time.Duration(j*float64(d/2))
}

// roundTrip sends with bounded retries: lost messages (netsim.ErrLost),
// partition timeouts and transient transport failures are retried
// behind a jittered exponential backoff, honouring context
// cancellation between attempts. Each attempt and each backoff costs
// journey-clock time, so a flapping uplink in a simulation never
// hot-loops the virtual schedule either.
func (p *Platform) roundTrip(ctx context.Context, addr string, req *transport.Request) (*transport.Response, error) {
	var lastErr error
	for attempt := 0; attempt < p.cfg.Retries; attempt++ {
		if attempt > 0 {
			if err := netsim.Sleep(ctx, p.backoff(attempt)); err != nil {
				return nil, fmt.Errorf("device: %s%s cancelled during retry backoff: %w", addr, req.Path, err)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("device: %s%s: %w", addr, req.Path, err)
		}
		resp, err := p.cfg.Transport.RoundTrip(ctx, addr, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("device: %s%s after %d attempt(s): %w", addr, req.Path, p.cfg.Retries, lastErr)
}

// --- gateway list and RTT selection (Figure 8) ----------------------------

// SetGateways installs a gateway list directly (tests, manual config).
func (p *Platform) SetGateways(addrs []string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.storeGatewaysLocked(addrs)
}

func (p *Platform) storeGatewaysLocked(addrs []string) error {
	p.gateways = append([]string(nil), addrs...)
	doc := (&wire.GatewayList{Addresses: p.gateways}).EncodeXML()
	framed, err := compress.Encode(p.cfg.Codec, doc)
	if err != nil {
		return err
	}
	if p.listRec != 0 {
		return p.cfg.Store.Set(p.listRec, framed)
	}
	id, err := p.cfg.Store.Add(framed)
	if err != nil {
		return err
	}
	p.listRec = id
	return nil
}

// Gateways returns the current gateway list.
func (p *Platform) Gateways() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.gateways...)
}

// RefreshGateways downloads the address list from the central server
// (or any gateway serving /pdagent/gateways).
func (p *Platform) RefreshGateways(ctx context.Context, from string) error {
	resp, err := p.roundTrip(ctx, from, &transport.Request{Path: "/pdagent/gateways"})
	if err != nil {
		return err
	}
	if !resp.IsOK() {
		return fmt.Errorf("device: gateway list from %s: %w", from, resp.Err())
	}
	gl, err := wire.ParseGatewayList(resp.Body)
	if err != nil {
		return err
	}
	if len(gl.Addresses) == 0 {
		return ErrNoGateways
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.storeGatewaysLocked(gl.Addresses)
}

// ProbeResult is one gateway's measured round-trip time.
type ProbeResult struct {
	Addr string
	RTT  time.Duration
	Err  error
}

// ProbeGateways sends the Figure 8 one-byte probe to every gateway on
// the list and reports each RTT (journey-clock time in simulations).
func (p *Platform) ProbeGateways(ctx context.Context) ([]ProbeResult, error) {
	addrs := p.Gateways()
	if len(addrs) == 0 {
		return nil, ErrNoGateways
	}
	results := make([]ProbeResult, 0, len(addrs))
	for _, addr := range addrs {
		rtt, err := p.probeOne(ctx, addr)
		results = append(results, ProbeResult{Addr: addr, RTT: rtt, Err: err})
	}
	return results, nil
}

func (p *Platform) probeOne(ctx context.Context, addr string) (time.Duration, error) {
	clock := netsim.ClockFrom(ctx)
	var start time.Duration
	var wallStart time.Time
	if clock != nil {
		start = clock.Now()
	} else {
		wallStart = time.Now()
	}
	_, err := p.cfg.Transport.RoundTrip(ctx, addr, &transport.Request{Path: "/pdagent/ping"})
	if err != nil {
		return 0, err
	}
	if clock != nil {
		return clock.Now() - start, nil
	}
	return time.Since(wallStart), nil
}

// SelectGateway probes all gateways and returns the nearest one. If
// the best RTT exceeds the threshold it refreshes the list from the
// central server (when configured) and probes once more — the §3.5
// policy.
func (p *Platform) SelectGateway(ctx context.Context) (string, time.Duration, error) {
	best, rtt, err := p.selectOnce(ctx)
	if err != nil {
		return "", 0, err
	}
	if rtt <= p.cfg.RTTThreshold {
		return best, rtt, nil
	}
	if p.cfg.Central == "" {
		return "", 0, fmt.Errorf("%w (best %v from %s)", ErrAllGatewaysFar, rtt, best)
	}
	p.logf("device %s: best RTT %v over threshold %v, refreshing list", p.cfg.Owner, rtt, p.cfg.RTTThreshold)
	if err := p.RefreshGateways(ctx, p.cfg.Central); err != nil {
		return "", 0, err
	}
	return p.selectOnce(ctx)
}

func (p *Platform) selectOnce(ctx context.Context) (string, time.Duration, error) {
	probes, err := p.ProbeGateways(ctx)
	if err != nil {
		return "", 0, err
	}
	best := ""
	bestRTT := time.Duration(0)
	for _, pr := range probes {
		if pr.Err != nil {
			continue
		}
		if best == "" || pr.RTT < bestRTT {
			best, bestRTT = pr.Addr, pr.RTT
		}
	}
	if best == "" {
		return "", 0, fmt.Errorf("device: every gateway probe failed")
	}
	return best, bestRTT, nil
}

// --- service subscription (§3.1) -------------------------------------------

// Catalogue downloads a gateway's application catalogue.
func (p *Platform) Catalogue(ctx context.Context, gw string) ([]wire.CatalogueEntry, error) {
	resp, err := p.roundTrip(ctx, gw, &transport.Request{Path: "/pdagent/catalog"})
	if err != nil {
		return nil, err
	}
	if !resp.IsOK() {
		return nil, resp.Err()
	}
	_, entries, err := wire.ParseCatalogue(resp.Body)
	return entries, err
}

// Subscribe downloads a code package from a gateway and stores it in
// the device database. Resubscribing replaces the stored entry.
func (p *Platform) Subscribe(ctx context.Context, gw, codeID string) error {
	req := &transport.Request{Path: "/pdagent/subscribe"}
	req.SetHeader("code-id", codeID)
	req.SetHeader("owner", p.cfg.Owner)
	resp, err := p.roundTrip(ctx, gw, req)
	if err != nil {
		return err
	}
	if !resp.IsOK() {
		return fmt.Errorf("device: subscribing to %q at %s: %w", codeID, gw, resp.Err())
	}
	sub, err := wire.ParseSubscription(resp.Body)
	if err != nil {
		return err
	}
	var key *pisec.PublicKey
	if sub.GatewayKey != "" {
		if key, err = pisec.ParsePublicKey(sub.GatewayKey); err != nil {
			return fmt.Errorf("device: gateway key in subscription: %w", err)
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	doc, err := sub.EncodeXML()
	if err != nil {
		return err
	}
	if old, exists := p.subs[codeID]; exists {
		framed, err := compress.Encode(p.cfg.Codec, doc)
		if err != nil {
			return err
		}
		if err := p.cfg.Store.Set(old.recID, framed); err != nil {
			return err
		}
		p.subs[codeID] = &subscription{sub: sub, key: key, recID: old.recID}
		return nil
	}
	recID, err := p.putRecord(doc)
	if err != nil {
		return err
	}
	p.subs[codeID] = &subscription{sub: sub, key: key, recID: recID}
	p.logf("device %s: subscribed to %q at %s", p.cfg.Owner, codeID, gw)
	return nil
}

// Subscriptions lists stored code ids, sorted.
func (p *Platform) Subscriptions() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.subs))
	for id := range p.subs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Unsubscribe removes a stored code package.
func (p *Platform) Unsubscribe(codeID string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	entry, ok := p.subs[codeID]
	if !ok {
		return ErrNotSubscribed
	}
	if err := p.cfg.Store.Delete(entry.recID); err != nil {
		return err
	}
	delete(p.subs, codeID)
	return nil
}

package progcache

import (
	"fmt"
	"sync"
	"testing"

	"pdagent/internal/mascript"
	"pdagent/internal/mavm"
)

const src = `deliver("n", 1);`

func TestCompileStringHitAndMiss(t *testing.T) {
	c := New(0)
	p1, hit, err := c.CompileString(src)
	if err != nil || hit {
		t.Fatalf("first compile: hit=%v err=%v", hit, err)
	}
	p2, hit, err := c.CompileString(src)
	if err != nil || !hit {
		t.Fatalf("second compile: hit=%v err=%v", hit, err)
	}
	if p1 != p2 {
		t.Fatal("cache returned a different program for identical source")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
	if _, _, err := c.CompileString(`let = broken`); err == nil {
		t.Fatal("compile error not surfaced")
	}
}

// TestCachedMatchesDirect proves a cached compile and a direct
// mascript.Compile of every standard application source produce
// byte-identical programs (same code digest). The sources live in
// internal/core, but importing core here would cycle; the gateway test
// suite covers the full catalogue — this covers representative shapes.
func TestCachedMatchesDirect(t *testing.T) {
	sources := []string{
		src,
		`let total = 0;
func add(n) { total = total + n; return total; }
add(2); add(3); deliver("total", total);`,
		`migrate("a"); deliver("x", params());`,
	}
	c := New(0)
	for i, s := range sources {
		direct, err := mascript.Compile(s)
		if err != nil {
			t.Fatalf("source %d: direct compile: %v", i, err)
		}
		cached, _, err := c.CompileString(s)
		if err != nil {
			t.Fatalf("source %d: cached compile: %v", i, err)
		}
		if direct.Digest() != cached.Digest() {
			t.Fatalf("source %d: cached program digest differs from direct compile", i)
		}
	}
}

func TestUnmarshalBytes(t *testing.T) {
	prog, err := mascript.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := mavm.MarshalProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	c := New(0)
	p1, hit, err := c.UnmarshalBytes(bin)
	if err != nil || hit {
		t.Fatalf("first unmarshal: hit=%v err=%v", hit, err)
	}
	p2, hit, err := c.UnmarshalBytes(bin)
	if err != nil || !hit {
		t.Fatalf("second unmarshal: hit=%v err=%v", hit, err)
	}
	if p1 != p2 {
		t.Fatal("cache returned a different program for identical bytes")
	}
	if p1.Digest() != prog.Digest() {
		t.Fatal("unmarshalled program digest differs from original")
	}
	if _, _, err := c.UnmarshalBytes([]byte("not a program")); err == nil {
		t.Fatal("unmarshal error not surfaced")
	}
}

func TestLRUEvictionBound(t *testing.T) {
	c := New(8)
	pinnedProg, _, err := c.CompileString(src)
	if err != nil {
		t.Fatal(err)
	}
	c.Pin("app", src, pinnedProg)
	for i := 0; i < 100; i++ {
		if _, _, err := c.CompileString(fmt.Sprintf(`deliver("n", %d);`, i)); err != nil {
			t.Fatal(err)
		}
	}
	pinned, adhoc := c.Len()
	if adhoc > 8 {
		t.Fatalf("adhoc population %d exceeds bound 8", adhoc)
	}
	if pinned != 1 {
		t.Fatalf("pinned = %d, want 1 (pins must survive eviction pressure)", pinned)
	}
	// The pinned entry still hits.
	if _, hit, _ := c.CompileString(src); !hit {
		t.Fatal("pinned entry evicted")
	}
	// Oldest ad-hoc entries must be gone, newest still resident.
	if _, hit, _ := c.CompileString(`deliver("n", 0);`); hit {
		t.Fatal("oldest ad-hoc entry not evicted")
	}
	if _, hit, _ := c.CompileString(`deliver("n", 99);`); !hit {
		t.Fatal("newest ad-hoc entry was evicted")
	}
}

func TestPinReplacementDemotesOld(t *testing.T) {
	c := New(4)
	v1, v2 := `deliver("v", 1);`, `deliver("v", 2);`
	p1, _, err := c.CompileString(v1)
	if err != nil {
		t.Fatal(err)
	}
	c.Pin("app", v1, p1)
	p2, _, err := c.CompileString(v2)
	if err != nil {
		t.Fatal(err)
	}
	c.Pin("app", v2, p2)
	pinned, _ := c.Len()
	if pinned != 1 {
		t.Fatalf("pinned = %d after re-pin, want 1", pinned)
	}
	// New source is pinned; old source is merely cached and must age
	// out under pressure while the pin survives.
	for i := 0; i < 10; i++ {
		if _, _, err := c.CompileString(fmt.Sprintf(`deliver("x", %d);`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, hit, _ := c.CompileString(v1); hit {
		t.Fatal("old pinned source still resident after demotion + pressure")
	}
	if _, hit, _ := c.CompileString(v2); !hit {
		t.Fatal("new pinned source missing")
	}
}

func TestSharedPinRefCount(t *testing.T) {
	c := New(2)
	prog, _, err := c.CompileString(src)
	if err != nil {
		t.Fatal(err)
	}
	c.Pin("a", src, prog)
	c.Pin("b", src, prog)
	// Re-pin "a" to different content: the shared entry keeps b's pin.
	other := `deliver("n", 2);`
	p2, _, err := c.CompileString(other)
	if err != nil {
		t.Fatal(err)
	}
	c.Pin("a", other, p2)
	for i := 0; i < 5; i++ {
		c.CompileString(fmt.Sprintf(`deliver("z", %d);`, i))
	}
	if _, hit, _ := c.CompileString(src); !hit {
		t.Fatal("entry still pinned by b was evicted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := fmt.Sprintf(`deliver("n", %d);`, i%20)
				p, _, err := c.CompileString(s)
				if err != nil || p == nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if i%50 == 0 {
					c.Pin(fmt.Sprintf("app-%d", g), s, p)
				}
			}
		}(g)
	}
	wg.Wait()
}

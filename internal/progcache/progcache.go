// Package progcache caches compiled agent programs by content hash.
//
// Every /pdagent/dispatch used to re-lex, re-parse and re-compile the
// shipped MAScript source even though the same source was compiled and
// validated when its code package was registered; every /atp/transfer
// re-unmarshalled and re-validated the agent's bytecode even when the
// same program had just passed through. This cache removes both taxes:
// programs are keyed by an FNV-1a hash of their content (source text
// for MAScript, serialised bytecode for transfer images), entries
// populated at AddCodePackage time are pinned for the lifetime of the
// registration, and ad-hoc entries (unregistered sources, transferred
// images) live in a bounded LRU.
//
// A hash hit is confirmed by comparing the stored content with the
// probe before the cached program is returned, so an FNV collision can
// cost a recompile but never run the wrong program. Cached programs are
// shared across agents; that is safe because a mavm.Program is
// immutable after compilation (the VM only reads it).
package progcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"pdagent/internal/mascript"
	"pdagent/internal/mavm"
)

// key identifies program content: a 64-bit FNV-1a hash plus the length,
// so colliding contents must also collide in size before the (cheap,
// allocation-free) content comparison runs. kind separates the MAScript
// source namespace from the serialised-bytecode namespace: a dispatch
// source that is byte-identical to some cached transfer image (or vice
// versa) must never be answered with the other derivation's program —
// that would bypass the compiler (or the unmarshal validation) for
// content that only ever passed the other path.
type key struct {
	hash uint64
	size int
	kind contentKind
}

type contentKind byte

const (
	kindSource  contentKind = 1 // MAScript text, compiled
	kindProgram contentKind = 2 // mavm.MarshalProgram bytes, unmarshalled
)

func fnv64a[T ~string | ~[]byte](content T) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(content); i++ {
		h ^= uint64(content[i])
		h *= prime64
	}
	return h
}

func keyOf(src string) key {
	return key{hash: fnv64a(src), size: len(src), kind: kindSource}
}

func keyOfBytes(b []byte) key {
	return key{hash: fnv64a(b), size: len(b), kind: kindProgram}
}

// entry is one cached program. pins counts registrations holding it
// resident; elem is its LRU position while unpinned.
type entry struct {
	content string
	prog    *mavm.Program
	pins    int
	elem    *list.Element
}

// DefaultAdhocEntries bounds the unpinned LRU when New is given no
// bound. At the paper's 1–8 KB per source, the default costs at most a
// few megabytes.
const DefaultAdhocEntries = 256

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Cache is a concurrency-safe compiled-program cache. One instance is
// shared between a gateway's dispatch path and its embedded MAS; a
// standalone MAS owns its own.
type Cache struct {
	mu      sync.Mutex
	entries map[key]*entry
	names   map[string]key // pin name (code id) -> pinned content key
	lru     *list.List     // of key; front = most recently used, unpinned only
	max     int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// New returns a cache whose unpinned (ad-hoc) population is bounded to
// maxAdhoc entries; non-positive means DefaultAdhocEntries.
func New(maxAdhoc int) *Cache {
	if maxAdhoc <= 0 {
		maxAdhoc = DefaultAdhocEntries
	}
	return &Cache{
		entries: map[key]*entry{},
		names:   map[string]key{},
		lru:     list.New(),
		max:     maxAdhoc,
	}
}

// CompileString returns the compiled program for src, consulting the
// cache first; hit reports whether compilation was skipped. Concurrent
// misses on the same new source may compile it more than once (the
// compiler runs outside the lock); exactly one result is kept.
func (c *Cache) CompileString(src string) (prog *mavm.Program, hit bool, err error) {
	k := keyOf(src)
	if p := c.get(k, src); p != nil {
		return p, true, nil
	}
	prog, err = mascript.CompileEntry(src)
	if err != nil {
		return nil, false, err
	}
	c.putAdhoc(k, src, prog)
	return prog, false, nil
}

// UnmarshalBytes returns the program deserialised from a transfer
// image's bytecode, consulting the cache first. The probe never copies
// b unless the entry is actually inserted.
func (c *Cache) UnmarshalBytes(b []byte) (prog *mavm.Program, hit bool, err error) {
	k := keyOfBytes(b)
	if p := c.getBytes(k, b); p != nil {
		return p, true, nil
	}
	prog, err = mavm.UnmarshalProgram(b)
	if err != nil {
		return nil, false, err
	}
	c.putAdhoc(k, string(b), prog)
	return prog, false, nil
}

// Pin makes prog resident under name (a code id) for as long as the
// registration stands. Re-pinning a name whose content changed — a code
// package re-registered with new source — releases the old pin: the old
// program is demoted to the ad-hoc LRU (in-flight dispatches of the old
// source still hit while it ages out) and the new one is pinned.
func (c *Cache) Pin(name, src string, prog *mavm.Program) {
	k := keyOf(src)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, pinned := c.names[name]; pinned {
		if old == k {
			if e := c.entries[old]; e != nil && e.content == src {
				return // same content re-registered; nothing to do
			}
		}
		c.unpinLocked(old)
	}
	c.names[name] = k
	if e, ok := c.entries[k]; ok && e.content == src {
		e.pins++
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		return
	}
	// Absent (or an FNV collision, which the new pin wins): install.
	if e, ok := c.entries[k]; ok && e.elem != nil {
		c.lru.Remove(e.elem)
	}
	c.entries[k] = &entry{content: src, prog: prog, pins: 1}
}

// get returns the cached program for (k, src), or nil.
func (c *Cache) get(k key, src string) *mavm.Program {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok && e.content == src {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		p := e.prog
		c.mu.Unlock()
		c.hits.Add(1)
		return p
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil
}

// getBytes is get with a []byte probe; the conversion in the comparison
// below does not allocate.
func (c *Cache) getBytes(k key, b []byte) *mavm.Program {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok && e.content == string(b) {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		p := e.prog
		c.mu.Unlock()
		c.hits.Add(1)
		return p
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil
}

// putAdhoc inserts an unpinned entry, evicting from the LRU tail past
// the bound. A racing insert of the same key keeps the first result.
func (c *Cache) putAdhoc(k key, content string, prog *mavm.Program) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[k]; exists {
		return
	}
	e := &entry{content: content, prog: prog}
	e.elem = c.lru.PushFront(k)
	c.entries[k] = e
	c.evictLocked()
}

func (c *Cache) evictLocked() {
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		bk := back.Value.(key)
		c.lru.Remove(back)
		delete(c.entries, bk)
	}
}

// unpinLocked drops one pin from the entry under k; the last unpin
// demotes the entry to the ad-hoc LRU.
func (c *Cache) unpinLocked(k key) {
	e, ok := c.entries[k]
	if !ok || e.pins == 0 {
		return
	}
	e.pins--
	if e.pins == 0 {
		e.elem = c.lru.PushFront(k)
		c.evictLocked()
	}
}

// Len reports the pinned and ad-hoc entry counts.
func (c *Cache) Len() (pinned, adhoc int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	adhoc = c.lru.Len()
	return len(c.entries) - adhoc, adhoc
}

// Stats returns the hit/miss counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Food Search Engine: the paper's second example application.
//
// Three directory sites host restaurant guides behind different MAS
// brands. The user's agent sweeps all three, queries each resident
// guide, merges the matches, sorts them by price on the way home and
// delivers one consolidated list — all while the handheld is offline.
//
// Run with: go run ./examples/foodsearch
package main

import (
	"fmt"
	"log"

	"pdagent/internal/core"
	"pdagent/internal/mavm"
	"pdagent/internal/services"
)

func guide(site string, rs ...services.Restaurant) core.HostSpec {
	flavours := map[string]string{"food-hk": "aglets", "food-kln": "voyager", "food-nt": "aglets"}
	return core.HostSpec{
		Flavour: flavours[site],
		Install: func(reg *services.Registry) {
			reg.Register(services.NewFoodGuide(site, rs).Services()...)
		},
	}
}

func main() {
	world, err := core.NewSimWorld(core.SimConfig{
		Seed: 33,
		Hosts: map[string]core.HostSpec{
			"food-hk": guide("food-hk",
				services.Restaurant{Name: "Dim Sum Palace", Cuisine: "cantonese", District: "central", Price: 80, Rating: 4},
				services.Restaurant{Name: "Harbour Grill", Cuisine: "western", District: "wanchai", Price: 220, Rating: 5},
			),
			"food-kln": guide("food-kln",
				services.Restaurant{Name: "Noodle Bar", Cuisine: "cantonese", District: "mongkok", Price: 40, Rating: 3},
				services.Restaurant{Name: "Curry House", Cuisine: "indian", District: "tsimshatsui", Price: 60, Rating: 5},
			),
			"food-nt": guide("food-nt",
				services.Restaurant{Name: "Seafood Pier", Cuisine: "cantonese", District: "saikung", Price: 150, Rating: 4},
				services.Restaurant{Name: "Tea Garden", Cuisine: "cantonese", District: "shatin", Price: 35, Rating: 3},
			),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := world.NewDevice("foodie-pda")
	if err != nil {
		log.Fatal(err)
	}
	ctx, _ := world.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", core.AppFoodSearch); err != nil {
		log.Fatal(err)
	}

	params := map[string]mavm.Value{
		"sites":    mavm.NewList(mavm.Str("food-hk"), mavm.Str("food-kln"), mavm.Str("food-nt")),
		"query":    mavm.Str("cantonese"),
		"maxprice": mavm.Int(160),
	}
	agentID, err := dev.Dispatch(ctx, core.AppFoodSearch, params)
	if err != nil {
		log.Fatal(err)
	}
	world.Run()

	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		log.Fatal(err)
	}
	if !rd.OK() {
		log.Fatalf("journey failed: %s", rd.Error)
	}
	count, _ := rd.Get("count")
	fmt.Printf("cantonese places under 160/head across 3 sites: %s\n", count)
	matches, _ := rd.Get("matches")
	fmt.Printf("%-16s %-10s %-12s %5s  %s\n", "name", "site", "district", "price", "rating")
	for _, m := range matches.ListItems() {
		e := m.MapEntries()
		fmt.Printf("%-16s %-10s %-12s %5s  %s\n",
			e["name"], e["site"], e["district"], e["price"], e["rating"])
	}
}

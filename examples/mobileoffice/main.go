// Mobile Office: the paper's §1 motivating scenario, plus the §3.6
// agent-management operations.
//
// Two office sites hold document repositories. The user dispatches a
// collection agent for the quarterly reports, and separately
// demonstrates management: a second journey is disposed before it
// starts (plans changed), and a status query locates the first agent.
//
// Run with: go run ./examples/mobileoffice
package main

import (
	"fmt"
	"log"

	"pdagent/internal/core"
	"pdagent/internal/mavm"
	"pdagent/internal/services"
)

func office(site, flavour string, docs map[string]string) core.HostSpec {
	return core.HostSpec{
		Flavour: flavour,
		Install: func(reg *services.Registry) {
			reg.Register(services.NewDocStore(site, docs).Services()...)
		},
	}
}

func main() {
	world, err := core.NewSimWorld(core.SimConfig{
		Seed: 44,
		Hosts: map[string]core.HostSpec{
			"office-hq": office("office-hq", "aglets", map[string]string{
				"q1-report.txt":  "HQ Q1: revenue up 4%",
				"q2-report.txt":  "HQ Q2: revenue up 6%",
				"lunch-menu.txt": "Tuesday: noodles",
			}),
			"office-lab": office("office-lab", "voyager", map[string]string{
				"q2-report.txt": "Lab Q2: three prototypes shipped",
				"roadmap.txt":   "Lab roadmap draft",
			}),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := world.NewDevice("office-pda")
	if err != nil {
		log.Fatal(err)
	}
	ctx, _ := world.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", core.AppMobileOffice); err != nil {
		log.Fatal(err)
	}

	params := map[string]mavm.Value{
		"offices": mavm.NewList(mavm.Str("office-hq"), mavm.Str("office-lab")),
		"filter":  mavm.Str("report"),
		"note":    mavm.Str("collected while travelling"),
	}
	collector, err := dev.Dispatch(ctx, core.AppMobileOffice, params)
	if err != nil {
		log.Fatal(err)
	}

	// A second journey, immediately regretted: dispose it before it
	// leaves the gateway (§3.6 "disposing a mobile agent").
	regretted, err := dev.Dispatch(ctx, core.AppMobileOffice, params)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.Dispose(ctx, regretted); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disposed second journey %s before it started\n", regretted)

	// Locate the first agent (§3.6 "view agent status").
	state, _, err := dev.AgentStatus(ctx, collector)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector %s is %s\n", collector, state)

	world.Run()

	rd, err := dev.Collect(ctx, collector)
	if err != nil {
		log.Fatal(err)
	}
	if !rd.OK() {
		log.Fatalf("journey failed: %s", rd.Error)
	}
	docs, _ := rd.Get("documents")
	fmt.Printf("\ncollected %d report(s):\n", len(docs.ListItems()))
	for _, d := range docs.ListItems() {
		e := d.MapEntries()
		fmt.Printf("  [%s] %s: %s\n", e["site"], e["name"], e["body"])
	}
	// The status notes the agent left behind are visible at the sites.
	fmt.Println("\npending journeys after collection:", len(dev.Pending()))
}

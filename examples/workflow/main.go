// Mobile Workflow: the paper's §5 future work ("mobile workflow
// management"), implemented as an extension.
//
// A purchase request is routed by a mobile agent through a chain of
// approval authorities — team lead, department head, CFO — each at its
// own site. A rejection short-circuits the chain. The user submits the
// request offline and later collects the full approval trail; two
// requests demonstrate both outcomes.
//
// Run with: go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"pdagent/internal/core"
	"pdagent/internal/mavm"
	"pdagent/internal/services"
)

func approver(site, name string, limit int64) core.HostSpec {
	return core.HostSpec{
		Flavour: "aglets",
		Install: func(reg *services.Registry) {
			reg.Register(services.NewApprover(site, name, limit, "purchase").Services()...)
		},
	}
}

func main() {
	world, err := core.NewSimWorld(core.SimConfig{
		Seed: 66,
		Hosts: map[string]core.HostSpec{
			"approve-team": approver("approve-team", "team-lead", 500),
			"approve-dept": approver("approve-dept", "dept-head", 5000),
			"approve-cfo":  approver("approve-cfo", "cfo", 50000),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := world.NewDevice("workflow-pda")
	if err != nil {
		log.Fatal(err)
	}
	ctx, _ := world.NewJourney()
	if err := dev.Subscribe(ctx, "gw-0", core.AppWorkflow); err != nil {
		log.Fatal(err)
	}

	submit := func(subject string, amount int64) {
		params := map[string]mavm.Value{
			"chain":   mavm.NewList(mavm.Str("approve-team"), mavm.Str("approve-dept"), mavm.Str("approve-cfo")),
			"kind":    mavm.Str("purchase"),
			"subject": mavm.Str(subject),
			"amount":  mavm.Int(amount),
		}
		id, err := dev.Dispatch(ctx, core.AppWorkflow, params)
		if err != nil {
			log.Fatal(err)
		}
		world.Run()
		rd, err := dev.Collect(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		if !rd.OK() {
			log.Fatalf("journey failed: %s", rd.Error)
		}
		outcome, _ := rd.Get("outcome")
		fmt.Printf("\n%q for %d: %s\n", subject, amount, outcome)
		approvals, _ := rd.Get("approvals")
		for _, a := range approvals.ListItems() {
			e := a.MapEntries()
			fmt.Printf("  %-12s %-10s %s — %s\n", e["site"], e["approver"], e["decision"], e["comment"])
		}
		if stopped, ok := rd.Get("stoppedAt"); ok {
			fmt.Printf("  chain stopped at %s; later approvers never contacted\n", stopped)
		}
	}

	submit("ergonomic keyboard", 450)   // approved by all three
	submit("quantum workstation", 9000) // rejected at the team lead
}

// E-Banking: the paper's §4 evaluation application in full.
//
// A mobile user submits a batch of transactions offline (Figure 11b),
// the platform uploads one Packed Information to the nearest gateway,
// the agent executes every transaction at each bank site by talking to
// the resident Service Agent (Figure 10), and the user later downloads
// the transaction details (Figure 11d). The example also prints the
// paper's metric: how long the device was actually online.
//
// Run with: go run ./examples/ebanking
package main

import (
	"fmt"
	"log"

	"pdagent/internal/core"
	"pdagent/internal/mavm"
)

func main() {
	world, err := core.NewSimWorld(core.SimConfig{Seed: 20})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := world.NewDevice("ebanking-pda")
	if err != nil {
		log.Fatal(err)
	}
	ctx, clock := world.NewJourney()

	// Pick the nearest gateway by RTT probing (Figure 8).
	gw, rtt, err := dev.SelectGateway(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest gateway: %s (RTT %v)\n", gw, rtt)
	if err := dev.Subscribe(ctx, gw, core.AppEBanking); err != nil {
		log.Fatal(err)
	}

	// The user fills in five transactions on the handheld — offline.
	var txns []mavm.Value
	for i := 0; i < 5; i++ {
		m := mavm.NewMap()
		m.MapEntries()["from"] = mavm.Str("alice")
		m.MapEntries()["to"] = mavm.Str("bob")
		m.MapEntries()["amount"] = mavm.Int(int64(100 + 10*i))
		txns = append(txns, m)
	}
	params := map[string]mavm.Value{
		"banks":        mavm.NewList(mavm.Str("bank-a"), mavm.Str("bank-b")),
		"transactions": mavm.NewList(txns...),
	}

	t0 := clock.Now()
	agentID, err := dev.Dispatch(ctx, core.AppEBanking, params)
	if err != nil {
		log.Fatal(err)
	}
	uploadOnline := clock.Now() - t0
	fmt.Printf("dispatched %s — device can now disconnect\n", agentID)

	// While "offline", ask the gateway where the agent is.
	state, _, err := dev.AgentStatus(ctx, agentID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("status before journey:", state)

	world.Run() // the agent's journey across both banks

	t1 := clock.Now()
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		log.Fatal(err)
	}
	downloadOnline := clock.Now() - t1

	fmt.Printf("\njourney %s: %d hops, %d VM steps\n", rd.Status, rd.Hops, rd.Steps)
	receipts, _ := rd.Get("receipts")
	fmt.Printf("%d transaction receipts:\n", len(receipts.ListItems()))
	for _, r := range receipts.ListItems() {
		e := r.MapEntries()
		fmt.Printf("  %-10s %-16s amount %s\n", e["bank"], e["txid"], e["amount"])
	}
	failures, _ := rd.Get("failures")
	if len(failures.ListItems()) > 0 {
		fmt.Println("failures:")
		for _, f := range failures.ListItems() {
			fmt.Println("  ", f)
		}
	}
	fmt.Printf("\nInternet connection time (the paper's metric):\n")
	fmt.Printf("  PI upload:        %v\n", uploadOnline)
	fmt.Printf("  result download:  %v\n", downloadOnline)
	fmt.Printf("  total online:     %v — independent of the %d transactions\n",
		uploadOnline+downloadOnline, len(txns))
}

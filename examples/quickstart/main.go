// Quickstart: the smallest end-to-end PDAgent session.
//
// Act one assembles the default simulated world (one gateway, two bank
// sites on different MAS brands), subscribes a handheld to the
// e-banking application, dispatches an agent while "connected",
// disconnects, lets the journey run, reconnects and collects the
// result — the paper's §3.1–3.3 workflow.
//
// Act two is the disconnection-tolerant version (DESIGN.md §7): the
// device queues an execution while its uplink is down, truly
// disconnects mid-itinerary, and on reconnection OpenSession drains
// the queue and receives the finished result from its durable gateway
// mailbox — no polling, exactly once.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pdagent/internal/core"
	"pdagent/internal/mavm"
)

func ebankingParams(amount int64) map[string]mavm.Value {
	txn := mavm.NewMap()
	txn.MapEntries()["from"] = mavm.Str("alice")
	txn.MapEntries()["to"] = mavm.Str("bob")
	txn.MapEntries()["amount"] = mavm.Int(amount)
	return map[string]mavm.Value{
		"banks":        mavm.NewList(mavm.Str("bank-a"), mavm.Str("bank-b")),
		"transactions": mavm.NewList(txn),
	}
}

func main() {
	world, err := core.NewSimWorld(core.SimConfig{Seed: 7, Mailbox: true})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := world.NewDevice("quickstart-pda")
	if err != nil {
		log.Fatal(err)
	}
	ctx, clock := world.NewJourney()

	// 1. Subscribe (download the MA code from the gateway).
	if err := dev.Subscribe(ctx, "gw-0", core.AppEBanking); err != nil {
		log.Fatal(err)
	}
	fmt.Println("subscribed:", dev.Subscriptions())

	// 2. Enter parameters offline, then go online just long enough to
	//    upload the Packed Information.
	before := clock.Now()
	agentID, err := dev.Dispatch(ctx, core.AppEBanking, ebankingParams(250))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatched agent %s (upload took %v online)\n", agentID, clock.Now()-before)

	// 3. Disconnect. The agent travels the wired network on its own.
	world.Run()

	// 4. Reconnect and collect the XML result document.
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("journey %s after %d hops\n", rd.Status, rd.Hops)
	if receipts, ok := rd.Get("receipts"); ok {
		for _, r := range receipts.ListItems() {
			fmt.Println("  receipt:", r)
		}
	}
	for addr, bank := range world.Banks {
		bal, _ := bank.Balance("alice")
		fmt.Printf("  %s alice balance: %d\n", addr, bal)
	}

	// --- Act two: the disconnected device (DESIGN.md §7) -------------

	// 5. The uplink is down: queue the execution offline. The Packed
	//    Information (parameters, nonce, dispatch key) is built now and
	//    stored in the device database.
	if err := world.DisconnectDevice("quickstart-pda"); err != nil {
		log.Fatal(err)
	}
	if _, err := dev.QueueDispatch(core.AppEBanking, ebankingParams(100)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuplink down; queued %d dispatch(es) offline\n", len(dev.QueuedDispatches()))

	// 6. Reconnect: OpenSession drains the queue (the agent departs)...
	if err := world.ReconnectDevice("quickstart-pda"); err != nil {
		log.Fatal(err)
	}
	s, err := dev.OpenSession(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: drained %d queued dispatch(es): %v\n", len(s.Dispatched), s.Dispatched)

	// 7. ...and the device drops off the air again while the journey
	//    runs. The result lands in its durable gateway mailbox.
	if err := world.DisconnectDevice("quickstart-pda"); err != nil {
		log.Fatal(err)
	}
	world.Run()

	// 8. Next reconnection: the session delivers the result from the
	//    mailbox — no polling, exactly once.
	if err := world.ReconnectDevice("quickstart-pda"); err != nil {
		log.Fatal(err)
	}
	s2, err := dev.OpenSession(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range s2.Deliveries {
		fmt.Printf("mailbox delivered %s for agent %s (status %s)\n", d.Kind, d.AgentID, d.Result.Status)
	}
	for addr, bank := range world.Banks {
		bal, _ := bank.Balance("alice")
		fmt.Printf("  %s alice balance: %d\n", addr, bal)
	}
}

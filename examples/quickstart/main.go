// Quickstart: the smallest end-to-end PDAgent session.
//
// It assembles the default simulated world (one gateway, two bank
// sites on different MAS brands), subscribes a handheld to the
// e-banking application, dispatches an agent while "connected",
// disconnects, lets the journey run, reconnects and collects the
// result — the paper's §3.1–3.3 workflow.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pdagent/internal/core"
	"pdagent/internal/mavm"
)

func main() {
	world, err := core.NewSimWorld(core.SimConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := world.NewDevice("quickstart-pda")
	if err != nil {
		log.Fatal(err)
	}
	ctx, clock := world.NewJourney()

	// 1. Subscribe (download the MA code from the gateway).
	if err := dev.Subscribe(ctx, "gw-0", core.AppEBanking); err != nil {
		log.Fatal(err)
	}
	fmt.Println("subscribed:", dev.Subscriptions())

	// 2. Enter parameters offline, then go online just long enough to
	//    upload the Packed Information.
	txn := mavm.NewMap()
	txn.MapEntries()["from"] = mavm.Str("alice")
	txn.MapEntries()["to"] = mavm.Str("bob")
	txn.MapEntries()["amount"] = mavm.Int(250)
	params := map[string]mavm.Value{
		"banks":        mavm.NewList(mavm.Str("bank-a"), mavm.Str("bank-b")),
		"transactions": mavm.NewList(txn),
	}
	before := clock.Now()
	agentID, err := dev.Dispatch(ctx, core.AppEBanking, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatched agent %s (upload took %v online)\n", agentID, clock.Now()-before)

	// 3. Disconnect. The agent travels the wired network on its own.
	world.Run()

	// 4. Reconnect and collect the XML result document.
	rd, err := dev.Collect(ctx, agentID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("journey %s after %d hops\n", rd.Status, rd.Hops)
	if receipts, ok := rd.Get("receipts"); ok {
		for _, r := range receipts.ListItems() {
			fmt.Println("  receipt:", r)
		}
	}
	for addr, bank := range world.Banks {
		bal, _ := bank.Balance("alice")
		fmt.Printf("  %s alice balance: %d\n", addr, bal)
	}
}

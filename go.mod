module pdagent

go 1.22
